//! Property tests for the profile layer's conservation invariants.
//!
//! Every smoothing in §4 rearranges or rescales the adversary's boxes; none
//! may create or destroy work behind the analysis' back. These properties
//! pin that down for the three perturbation families:
//!
//! * permutation shuffle ([`PermutationSource`]) — a without-replacement
//!   reshuffle must emit exactly the original multiset, every cycle;
//! * cyclic start shift ([`random_cyclic_shift`]) — a rotation must
//!   preserve the multiset, the total time, and the box order up to
//!   rotation;
//! * size perturbation ([`SizePerturbedSource`]) — a multiplier in [0, t]
//!   must keep every box within [1, round(base · t)] and stay aligned
//!   one-to-one with the inner source.
//!
//! Plus the memoized profile store's contract: a cached handle is
//! bit-identical to fresh construction for every key it can hold.

// Test-only code: casts cover toy-sized inputs.
#![allow(clippy::cast_possible_truncation)]

use cadapt_core::{BoxSource, Io, SquareProfile};
use cadapt_profiles::contention::sawtooth;
use cadapt_profiles::dist::PermutationSource;
use cadapt_profiles::perturb::{random_cyclic_shift, SizePerturbedSource, UniformMultiplier};
use cadapt_profiles::{sawtooth_squares, worst_case_squares, WorstCase};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn sorted(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v
}

fn take<S: BoxSource>(source: &mut S, count: usize) -> Vec<u64> {
    (0..count).map(|_| source.next_box()).collect()
}

proptest! {
    #[test]
    fn permutation_shuffle_conserves_the_multiset(
        boxes in proptest::collection::vec(1u64..512, 1..24),
        seed in 0u64..1_000_000,
    ) {
        let profile = SquareProfile::new(boxes.clone()).unwrap();
        let mut source = PermutationSource::new(&profile, ChaCha8Rng::seed_from_u64(seed));
        // Two full cycles: the source reshuffles when exhausted, and each
        // cycle must again be exactly the original multiset.
        let first = take(&mut source, boxes.len());
        let second = take(&mut source, boxes.len());
        prop_assert_eq!(sorted(first), sorted(boxes.clone()));
        prop_assert_eq!(sorted(second), sorted(boxes));
    }

    #[test]
    fn cyclic_shift_is_a_rotation(
        boxes in proptest::collection::vec(1u64..512, 1..24),
        seed in 0u64..1_000_000,
    ) {
        let profile = SquareProfile::new(boxes.clone()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let shifted = random_cyclic_shift(&profile, &mut rng);
        prop_assert_eq!(shifted.total_time(), profile.total_time());
        prop_assert_eq!(
            sorted(shifted.boxes().to_vec()),
            sorted(boxes.clone())
        );
        // Stronger than multiset equality: the result is literally some
        // rotation of the original sequence.
        let is_rotation = (0..boxes.len()).any(|k| {
            boxes[k..]
                .iter()
                .chain(&boxes[..k])
                .copied()
                .eq(shifted.boxes().iter().copied())
        });
        prop_assert!(is_rotation, "shift produced a non-rotation: {:?}", shifted.boxes());
    }

    #[test]
    fn size_perturbation_conserves_count_and_bounds(
        boxes in proptest::collection::vec(1u64..512, 1..24),
        t in 1.0f64..8.0,
        seed in 0u64..1_000_000,
    ) {
        let profile = SquareProfile::new(boxes.clone()).unwrap();
        let mut source = SizePerturbedSource::new(
            profile.cycle(),
            UniformMultiplier { t },
            ChaCha8Rng::seed_from_u64(seed),
        );
        // One perturbed box per inner box, each clamped to ≥ 1 and bounded
        // by its own base size times the multiplier's upper end.
        for (i, &base) in boxes.iter().enumerate() {
            let perturbed = source.next_box();
            prop_assert!(perturbed >= 1, "box {i} collapsed to zero");
            let hi = (base as f64 * t).round().max(1.0) as u64;
            prop_assert!(
                perturbed <= hi,
                "box {i}: {perturbed} exceeds base {base} x t {t}"
            );
        }
    }

    #[test]
    fn worst_case_multiset_matches_its_materialisation(
        a in 2u64..5,
        b in 2u64..4,
        min_size in 1u64..4,
        depth in 1u32..5,
    ) {
        let wc = WorstCase::new(a, b, min_size, depth).unwrap();
        let materialised = wc.materialize();
        prop_assert_eq!(wc.num_boxes() as usize, materialised.len());
        // The closed-form multiset and the emitted profile agree box for
        // box — the construction neither invents nor drops work.
        let mut expanded: Vec<u64> = Vec::new();
        for (size, count) in wc.box_multiset() {
            for _ in 0..count {
                expanded.push(size);
            }
        }
        prop_assert_eq!(sorted(expanded), sorted(materialised.into_boxes()));
    }

    #[test]
    fn cached_worst_case_matches_fresh_construction(
        a in 2u64..5,
        b in 2u64..4,
        min_size in 1u64..4,
        depth in 1u32..5,
    ) {
        let wc = WorstCase::new(a, b, min_size, depth).unwrap();
        let cached = worst_case_squares(&wc);
        let fresh = wc.materialize();
        // A cache hit must be indistinguishable from building the profile
        // here and now — the store may only save wall time, never change
        // a box.
        prop_assert_eq!(cached.boxes(), fresh.boxes());
        prop_assert_eq!(cached.total_time(), fresh.total_time());
    }

    #[test]
    fn cached_sawtooth_matches_fresh_construction(
        m_min in 1u64..4,
        m_max_mult in 2u64..6,
        plateau in 1u64..64,
        duration_mult in 2u64..8,
    ) {
        // Derive well-formed parameters: m_max > m_min, duration spans
        // several plateaus.
        let m_max = m_min * m_max_mult * 8;
        let plateau = Io::from(plateau);
        let duration = plateau * Io::from(duration_mult * 16);
        let cached = sawtooth_squares(m_min, m_max, plateau, duration);
        let fresh = sawtooth(m_min, m_max, plateau, duration).inner_squares();
        prop_assert_eq!(cached.boxes(), fresh.boxes());
        prop_assert_eq!(cached.total_time(), fresh.total_time());
    }
}
