//! Property tests for the run-decomposition law (cursor law 1).
//!
//! Every [`BoxSource`]'s `next_run` stream, expanded run by run, must
//! concatenate to *exactly* the per-box stream an identically-seeded twin
//! produces via `next_box` — for every source family in the workspace and
//! through every cursor combinator. This is the contract the run-length
//! fast path, the streaming cursor drivers, and the closed-form batch
//! advancement all assume; a single off-by-one here silently corrupts
//! adaptivity ratios.
//!
//! The expansion helper also re-checks run positivity (`repeat ≥ 1`,
//! `size ≥ 1`) on every yielded run — the invariant `SourceCursor`
//! `debug_assert!`s at the pipeline mouth.

// Test-only code: casts cover toy-sized inputs.
#![allow(clippy::cast_possible_truncation)]

use cadapt_core::cursor::{RunCursor, RunCursorExt};
use cadapt_core::profile::ConstantSource;
use cadapt_core::{Blocks, BoxSource, SquareProfile};
use cadapt_profiles::dist::{
    DistSource, LogUniform, PermutationSource, PointMass, PowerOfB, UniformBoxes,
};
use cadapt_profiles::perturb::{SizePerturbedSource, UniformMultiplier};
use cadapt_profiles::scenario::RoundRobin;
use cadapt_profiles::{MatchedWorstCase, WorstCase};
use cadapt_recursion::AbcParams;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Expand `count` boxes out of the source's run stream, checking run
/// positivity along the way.
fn expand_runs<S: BoxSource>(source: &mut S, count: usize) -> Vec<Blocks> {
    let mut out = Vec::new();
    while out.len() < count {
        let run = source.next_run();
        assert!(run.repeat >= 1, "source yielded an empty run");
        assert!(run.size >= 1, "source yielded a zero-sized box");
        let take = (count - out.len()).min(usize::try_from(run.repeat).unwrap_or(count));
        out.extend(std::iter::repeat_n(run.size, take));
    }
    out
}

/// Expand `count` boxes out of a cursor pipeline.
fn expand_cursor<C: RunCursor>(cursor: &mut C, count: usize) -> Vec<Blocks> {
    let mut out = Vec::new();
    while out.len() < count {
        match cursor.next_run().expect("no token in these pipelines") {
            Some(run) => {
                assert!(run.repeat >= 1 && run.size >= 1, "bad run {run:?}");
                let take = (count - out.len()).min(usize::try_from(run.repeat).unwrap_or(count));
                out.extend(std::iter::repeat_n(run.size, take));
            }
            None => break,
        }
    }
    out
}

/// Per-box reference stream.
fn expand_boxes<S: BoxSource>(source: &mut S, count: usize) -> Vec<Blocks> {
    (0..count).map(|_| source.next_box()).collect()
}

proptest! {
    #[test]
    fn cycle_source_decomposes(
        boxes in proptest::collection::vec(1u64..64, 1..20),
        count in 1usize..200,
    ) {
        let p = SquareProfile::new(boxes).unwrap();
        let by_run = expand_runs(&mut p.cycle(), count);
        let by_box = expand_boxes(&mut p.cycle(), count);
        prop_assert_eq!(by_run, by_box);
    }

    #[test]
    fn extended_source_decomposes(
        boxes in proptest::collection::vec(1u64..64, 1..20),
        filler in 1u64..64,
        count in 1usize..200,
    ) {
        let p = SquareProfile::new(boxes).unwrap();
        let by_run = expand_runs(&mut p.extended(filler), count);
        let by_box = expand_boxes(&mut p.extended(filler), count);
        prop_assert_eq!(by_run, by_box);
    }

    #[test]
    fn worst_case_source_decomposes(
        a in 2u64..5,
        b in 2u64..4,
        min_size in 1u64..4,
        depth in 0u32..5,
        count in 1usize..300,
    ) {
        let wc = WorstCase::new(a, b, min_size, depth).unwrap();
        let by_run = expand_runs(&mut wc.source(), count);
        let by_box = expand_boxes(&mut wc.source(), count);
        prop_assert_eq!(by_run, by_box);
    }

    #[test]
    fn matched_worst_case_decomposes(count in 1usize..200) {
        let mut by_run = MatchedWorstCase::new(AbcParams::mm_scan(), 256).unwrap();
        let mut by_box = MatchedWorstCase::new(AbcParams::mm_scan(), 256).unwrap();
        let runs = expand_runs(&mut by_run, count);
        prop_assert_eq!(runs, expand_boxes(&mut by_box, count));
    }

    #[test]
    fn dist_sources_decompose(
        seed in 0u64..1_000_000,
        which in 0usize..4,
        count in 1usize..300,
    ) {
        // The i.i.d. run lookahead must consume RNG draws in exactly
        // per-box order, so seeded twins agree draw for draw.
        let run_rng = ChaCha8Rng::seed_from_u64(seed);
        let box_rng = ChaCha8Rng::seed_from_u64(seed);
        let (by_run, by_box) = match which {
            0 => (
                expand_runs(&mut DistSource::new(PointMass { size: 7 }, run_rng), count),
                expand_boxes(&mut DistSource::new(PointMass { size: 7 }, box_rng), count),
            ),
            1 => (
                expand_runs(&mut DistSource::new(PowerOfB::new(2, 0, 3), run_rng), count),
                expand_boxes(&mut DistSource::new(PowerOfB::new(2, 0, 3), box_rng), count),
            ),
            2 => (
                expand_runs(&mut DistSource::new(UniformBoxes::new(1, 4), run_rng), count),
                expand_boxes(&mut DistSource::new(UniformBoxes::new(1, 4), box_rng), count),
            ),
            _ => (
                expand_runs(&mut DistSource::new(LogUniform::new(1, 16), run_rng), count),
                expand_boxes(&mut DistSource::new(LogUniform::new(1, 16), box_rng), count),
            ),
        };
        prop_assert_eq!(by_run, by_box);
    }

    #[test]
    fn permutation_source_decomposes(
        boxes in proptest::collection::vec(1u64..64, 1..16),
        seed in 0u64..1_000_000,
        count in 1usize..100,
    ) {
        let p = SquareProfile::new(boxes).unwrap();
        let by_run = expand_runs(
            &mut PermutationSource::new(&p, ChaCha8Rng::seed_from_u64(seed)),
            count,
        );
        let by_box = expand_boxes(
            &mut PermutationSource::new(&p, ChaCha8Rng::seed_from_u64(seed)),
            count,
        );
        prop_assert_eq!(by_run, by_box);
    }

    #[test]
    fn size_perturbed_source_decomposes(
        boxes in proptest::collection::vec(1u64..64, 1..16),
        t in 1.0f64..4.0,
        seed in 0u64..1_000_000,
        count in 1usize..100,
    ) {
        let p = SquareProfile::new(boxes).unwrap();
        let by_run = expand_runs(
            &mut SizePerturbedSource::new(
                p.cycle(),
                UniformMultiplier { t },
                ChaCha8Rng::seed_from_u64(seed),
            ),
            count,
        );
        let by_box = expand_boxes(
            &mut SizePerturbedSource::new(
                p.cycle(),
                UniformMultiplier { t },
                ChaCha8Rng::seed_from_u64(seed),
            ),
            count,
        );
        prop_assert_eq!(by_run, by_box);
    }

    #[test]
    fn combinator_pipelines_decompose(
        boxes in proptest::collection::vec(1u64..64, 1..12),
        cap in 1u64..32,
        chunk in 1u64..8,
        taken in 1u64..120,
    ) {
        // A full pipeline (throttle → interleave → take) must agree with
        // the straightforward per-box simulation of the same semantics.
        let p = SquareProfile::new(boxes.clone()).unwrap();
        let a = p.cycle().into_cursor().throttle(cap);
        let b = ConstantSource::new(cap).into_cursor();
        let mut pipeline = a.interleave(b, chunk).take_boxes(taken);
        let got = expand_cursor(&mut pipeline, usize::MAX >> 1);
        // Reference: expand per box by simulating slices by hand.
        let mut reference = Vec::new();
        let mut inner = p.cycle();
        let mut on_a = true;
        'outer: loop {
            for _ in 0..chunk {
                if reference.len() as u64 == taken {
                    break 'outer;
                }
                let size = if on_a { inner.next_box().min(cap) } else { cap };
                reference.push(size);
            }
            on_a = !on_a;
        }
        prop_assert_eq!(got, reference);
    }

    #[test]
    fn round_robin_decomposes(
        sizes in proptest::collection::vec(1u64..64, 2..5),
        lens in proptest::collection::vec(1u64..40, 2..5),
        chunk in 1u64..6,
    ) {
        // N constant tenants with arbitrary lengths: the round-robin
        // stream must equal the hand-simulated slicing.
        let n = sizes.len().min(lens.len());
        let tenants: Vec<Box<dyn RunCursor>> = (0..n)
            .map(|i| {
                Box::new(ConstantSource::new(sizes[i]).into_cursor().take_boxes(lens[i]))
                    as Box<dyn RunCursor>
            })
            .collect();
        let mut rr = RoundRobin::new(tenants, chunk);
        let got = expand_cursor(&mut rr, usize::MAX >> 1);
        let mut left: Vec<u64> = lens[..n].to_vec();
        let mut reference = Vec::new();
        let mut i = 0usize;
        while left.iter().any(|&l| l > 0) {
            let take = chunk.min(left[i]);
            for _ in 0..take {
                reference.push(sizes[i]);
            }
            left[i] -= take;
            i = (i + 1) % n;
        }
        prop_assert_eq!(got, reference);
    }
}
