//! Box-size distributions Σ for the smoothing theorem (Theorem 1/3).
//!
//! The paper's main positive result: for *any* distribution Σ over
//! (sufficiently large) box sizes, a sequence of boxes drawn i.i.d. from Σ
//! makes every (a, b, 1)-regular algorithm with a > b cache-adaptive in
//! expectation. The experiments therefore sweep a deliberately diverse
//! family — point masses, uniform, power-of-b uniform, heavy-tailed Pareto,
//! log-uniform, and (the headline case) the *empirical multiset of the
//! adversarial worst-case profile itself*, reshuffled.
//!
//! Two sampling modes matter:
//! * [`DistSource`] — i.i.d. draws (the theorem's hypothesis);
//! * [`PermutationSource`] — a without-replacement random permutation of a
//!   finite profile's boxes ("random reshuffle"); the ablation comparing
//!   the two is described in DESIGN.md.

use cadapt_core::{Blocks, BoxRun, BoxSource, SquareProfile};
use rand::distributions::{Distribution, Uniform};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

/// Upper bound on how far ahead an i.i.d. source samples when detecting a
/// run of equal boxes. Bounds the latency of one `next_run` call and keeps
/// degenerate distributions (a point mass samples equal forever) from
/// looping; the consumer just sees the run split into cap-sized pieces.
const RUN_LOOKAHEAD_CAP: u64 = 65_536;

/// Shared i.i.d. run detection: take the buffered draw (or make one), then
/// keep sampling while the draws stay equal, buffering the first mismatch
/// into `pending`. The RNG consumes draws in exactly the order per-box
/// sampling would, so the concatenation of runs reproduces the per-box
/// stream draw for draw.
fn run_from_dist(
    dist: &dyn BoxDist,
    rng: &mut dyn RngCore,
    pending: &mut Option<Blocks>,
) -> BoxRun {
    let size = pending.take().unwrap_or_else(|| dist.sample(rng));
    let mut repeat = 1u64;
    while repeat < RUN_LOOKAHEAD_CAP {
        let next = dist.sample(rng);
        if next != size {
            *pending = Some(next);
            break;
        }
        repeat += 1;
    }
    BoxRun { size, repeat }
}

/// A distribution over box sizes.
///
/// Object-safe so experiment configs can hold heterogeneous lists of
/// distributions (`Box<dyn BoxDist>`).
pub trait BoxDist: Send + Sync {
    /// Draw one box size (always ≥ 1).
    fn sample(&self, rng: &mut dyn RngCore) -> Blocks;

    /// Human-readable label for tables.
    fn label(&self) -> String;

    /// The discrete support as (size, probability) pairs, if this
    /// distribution is exactly discrete with small support. Used by the
    /// Lemma-3 recurrence engine to compute expectations in closed form.
    fn discrete_support(&self) -> Option<Vec<(Blocks, f64)>> {
        None
    }
}

/// Every box has the same size.
#[derive(Debug, Clone, Copy)]
pub struct PointMass {
    /// The constant box size.
    pub size: Blocks,
}

impl BoxDist for PointMass {
    fn sample(&self, _rng: &mut dyn RngCore) -> Blocks {
        self.size
    }

    fn label(&self) -> String {
        format!("point({})", self.size)
    }

    fn discrete_support(&self) -> Option<Vec<(Blocks, f64)>> {
        Some(vec![(self.size, 1.0)])
    }
}

/// Uniform over the integer range [lo, hi].
#[derive(Debug, Clone, Copy)]
pub struct UniformBoxes {
    /// Smallest box size (≥ 1).
    pub lo: Blocks,
    /// Largest box size (≥ lo).
    pub hi: Blocks,
}

impl UniformBoxes {
    /// Uniform over [lo, hi].
    ///
    /// # Panics
    ///
    /// Panics unless 1 ≤ lo ≤ hi.
    #[must_use]
    pub fn new(lo: Blocks, hi: Blocks) -> Self {
        assert!(lo >= 1 && lo <= hi, "need 1 <= lo <= hi");
        UniformBoxes { lo, hi }
    }
}

impl BoxDist for UniformBoxes {
    fn sample(&self, rng: &mut dyn RngCore) -> Blocks {
        Uniform::new_inclusive(self.lo, self.hi).sample(rng)
    }

    fn label(&self) -> String {
        format!("uniform[{}, {}]", self.lo, self.hi)
    }
}

/// Uniform over powers of b: {b^k_lo, …, b^k_hi} (each exponent equally
/// likely). The natural "canonical sizes" distribution of §4.
#[derive(Debug, Clone, Copy)]
pub struct PowerOfB {
    /// The base b (≥ 2).
    pub b: u64,
    /// Smallest exponent.
    pub k_lo: u32,
    /// Largest exponent.
    pub k_hi: u32,
}

impl PowerOfB {
    /// Uniform over {b^k : k_lo ≤ k ≤ k_hi}.
    ///
    /// # Panics
    ///
    /// Panics unless b ≥ 2 and k_lo ≤ k_hi.
    #[must_use]
    pub fn new(b: u64, k_lo: u32, k_hi: u32) -> Self {
        assert!(b >= 2 && k_lo <= k_hi, "need b >= 2 and k_lo <= k_hi");
        PowerOfB { b, k_lo, k_hi }
    }
}

impl BoxDist for PowerOfB {
    fn sample(&self, rng: &mut dyn RngCore) -> Blocks {
        let k = Uniform::new_inclusive(self.k_lo, self.k_hi).sample(rng);
        self.b.pow(k)
    }

    fn label(&self) -> String {
        format!("pow{}[{}..{}]", self.b, self.k_lo, self.k_hi)
    }

    fn discrete_support(&self) -> Option<Vec<(Blocks, f64)>> {
        let count = (self.k_hi - self.k_lo + 1) as usize;
        let p = 1.0 / count as f64;
        Some(
            (self.k_lo..=self.k_hi)
                .map(|k| (self.b.pow(k), p))
                .collect(),
        )
    }
}

/// Discretised Pareto (heavy tail): P(X ≥ x) = (x_min/x)^α, capped at
/// `cap`. Small α gives occasional enormous boxes — the regime where the
/// smoothing theorem's "any distribution" claim is most surprising.
#[derive(Debug, Clone, Copy)]
pub struct ParetoBoxes {
    /// Tail exponent α > 0.
    pub alpha: f64,
    /// Scale (smallest value).
    pub x_min: Blocks,
    /// Upper cap to keep sizes finite.
    pub cap: Blocks,
}

impl ParetoBoxes {
    /// Pareto(α, x_min) capped at `cap`.
    ///
    /// # Panics
    ///
    /// Panics unless α > 0 and 1 ≤ x_min ≤ cap.
    #[must_use]
    pub fn new(alpha: f64, x_min: Blocks, cap: Blocks) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(x_min >= 1 && x_min <= cap, "need 1 <= x_min <= cap");
        ParetoBoxes { alpha, x_min, cap }
    }
}

impl BoxDist for ParetoBoxes {
    // The f64→u64 cast saturates by design; the clamp below is the contract.
    #[allow(clippy::cast_possible_truncation)]
    fn sample(&self, rng: &mut dyn RngCore) -> Blocks {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let x = self.x_min as f64 / u.powf(1.0 / self.alpha);
        (x.round() as u64).clamp(self.x_min, self.cap)
    }

    fn label(&self) -> String {
        format!(
            "pareto(α={}, min={}, cap={})",
            self.alpha, self.x_min, self.cap
        )
    }
}

/// Log-uniform over [lo, hi]: exp(U[ln lo, ln hi]), rounded. Equal mass per
/// size *scale*.
#[derive(Debug, Clone, Copy)]
pub struct LogUniform {
    /// Smallest box size (≥ 1).
    pub lo: Blocks,
    /// Largest box size (≥ lo).
    pub hi: Blocks,
}

impl LogUniform {
    /// Log-uniform over [lo, hi].
    ///
    /// # Panics
    ///
    /// Panics unless 1 ≤ lo ≤ hi.
    #[must_use]
    pub fn new(lo: Blocks, hi: Blocks) -> Self {
        assert!(lo >= 1 && lo <= hi, "need 1 <= lo <= hi");
        LogUniform { lo, hi }
    }
}

impl BoxDist for LogUniform {
    // The f64→u64 cast saturates by design; the clamp below is the contract.
    #[allow(clippy::cast_possible_truncation)]
    fn sample(&self, rng: &mut dyn RngCore) -> Blocks {
        let (llo, lhi) = ((self.lo as f64).ln(), (self.hi as f64).ln());
        let v = if llo < lhi {
            rng.gen_range(llo..lhi)
        } else {
            llo
        };
        (v.exp().round() as u64).clamp(self.lo, self.hi)
    }

    fn label(&self) -> String {
        format!("loguniform[{}, {}]", self.lo, self.hi)
    }
}

/// Discrete power law over powers of b: Pr[|□| = b^k] ∝ b^{−α·k} for
/// k ∈ [k_lo, k_hi]. A heavy-tailed distribution with an exact discrete
/// support, so the Lemma-3 recurrence engine can consume it directly —
/// the recurrence-friendly sibling of [`ParetoBoxes`].
#[derive(Debug, Clone)]
pub struct PowerLawBoxes {
    b: u64,
    k_lo: u32,
    k_hi: u32,
    alpha: f64,
    /// Cumulative probabilities per exponent offset.
    cumulative: Vec<f64>,
}

impl PowerLawBoxes {
    /// Power law with tail exponent α > 0 over {b^k_lo, …, b^k_hi}.
    ///
    /// # Panics
    ///
    /// Panics unless b ≥ 2, k_lo ≤ k_hi, and α > 0.
    #[must_use]
    pub fn new(b: u64, k_lo: u32, k_hi: u32, alpha: f64) -> Self {
        assert!(b >= 2 && k_lo <= k_hi, "need b >= 2 and k_lo <= k_hi");
        assert!(alpha > 0.0, "alpha must be positive");
        let weights: Vec<f64> = (k_lo..=k_hi)
            .map(|k| (b as f64).powf(-alpha * f64::from(k - k_lo)))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        PowerLawBoxes {
            b,
            k_lo,
            k_hi,
            alpha,
            cumulative,
        }
    }
}

impl BoxDist for PowerLawBoxes {
    fn sample(&self, rng: &mut dyn RngCore) -> Blocks {
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = self.cumulative.partition_point(|&c| c <= u);
        let k = self.k_lo + cadapt_core::cast::u32_from_usize(idx.min(self.cumulative.len() - 1));
        self.b.pow(k)
    }

    fn label(&self) -> String {
        format!("powerlaw(b={}, α={}, k≤{})", self.b, self.alpha, self.k_hi)
    }

    fn discrete_support(&self) -> Option<Vec<(Blocks, f64)>> {
        let mut prev = 0.0;
        Some(
            (self.k_lo..=self.k_hi)
                .zip(&self.cumulative)
                .map(|(k, &c)| {
                    let p = c - prev;
                    prev = c;
                    (self.b.pow(k), p)
                })
                .collect(),
        )
    }
}

/// The empirical distribution of a (possibly astronomically large) box
/// multiset, given as (size, count) pairs — i.i.d. draws proportional to
/// counts. Built from
/// [`WorstCase::box_multiset`](crate::WorstCase::box_multiset), this is the
/// "reshuffle the adversary's own profile" smoothing of the paper's title
/// result, in its i.i.d. form.
#[derive(Debug, Clone)]
pub struct EmpiricalMultiset {
    sizes: Vec<Blocks>,
    /// Cumulative counts, for weighted sampling.
    cumulative: Vec<u128>,
    total: u128,
    label: String,
}

impl EmpiricalMultiset {
    /// Build from (size, count) pairs.
    ///
    /// # Panics
    ///
    /// Panics if the multiset is empty or any count is zero.
    #[must_use]
    pub fn from_counts(counts: &[(Blocks, u128)], label: impl Into<String>) -> Self {
        assert!(!counts.is_empty(), "multiset must be non-empty");
        let mut sizes = Vec::with_capacity(counts.len());
        let mut cumulative = Vec::with_capacity(counts.len());
        let mut total: u128 = 0;
        for &(size, count) in counts {
            assert!(count > 0, "counts must be positive");
            assert!(size > 0, "boxes must be positive");
            total += count;
            sizes.push(size);
            cumulative.push(total);
        }
        EmpiricalMultiset {
            sizes,
            cumulative,
            total,
            label: label.into(),
        }
    }

    /// Build from an explicit profile (each box weight 1).
    #[must_use]
    pub fn from_profile(profile: &SquareProfile, label: impl Into<String>) -> Self {
        let mut counts: std::collections::BTreeMap<Blocks, u128> =
            std::collections::BTreeMap::new();
        for &b in profile.boxes() {
            *counts.entry(b).or_insert(0) += 1;
        }
        let pairs: Vec<_> = counts.into_iter().collect();
        EmpiricalMultiset::from_counts(&pairs, label)
    }
}

impl BoxDist for EmpiricalMultiset {
    fn sample(&self, rng: &mut dyn RngCore) -> Blocks {
        // Uniform u128 in [0, total) via rejection-free modulo of a wide
        // draw (the bias for totals << 2^128 is negligible and the
        // experiments only need faithful proportions).
        let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        let target = wide % self.total;
        let idx = self.cumulative.partition_point(|&c| c <= target);
        self.sizes[idx]
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn discrete_support(&self) -> Option<Vec<(Blocks, f64)>> {
        let mut prev = 0u128;
        Some(
            self.sizes
                .iter()
                .zip(&self.cumulative)
                .map(|(&s, &c)| {
                    let p = (c - prev) as f64 / self.total as f64;
                    prev = c;
                    (s, p)
                })
                .collect(),
        )
    }
}

/// An infinite [`BoxSource`] drawing i.i.d. from a [`BoxDist`].
#[derive(Debug)]
pub struct DistSource<D, R> {
    dist: D,
    rng: R,
    /// One-draw lookahead buffer for run detection (see [`run_from_dist`]).
    pending: Option<Blocks>,
}

impl<D: BoxDist, R: RngCore> DistSource<D, R> {
    /// i.i.d. boxes from `dist` using `rng`.
    pub fn new(dist: D, rng: R) -> Self {
        DistSource {
            dist,
            rng,
            pending: None,
        }
    }
}

impl<D: BoxDist, R: RngCore> BoxSource for DistSource<D, R> {
    fn next_box(&mut self) -> Blocks {
        self.pending
            .take()
            .unwrap_or_else(|| self.dist.sample(&mut self.rng))
    }

    fn next_run(&mut self) -> BoxRun {
        run_from_dist(&self.dist, &mut self.rng, &mut self.pending)
    }
}

/// A source replaying a dyn-boxed distribution (for heterogeneous
/// experiment configs).
pub struct DynDistSource<'a, R> {
    dist: &'a dyn BoxDist,
    rng: R,
    /// One-draw lookahead buffer for run detection (see [`run_from_dist`]).
    pending: Option<Blocks>,
}

impl<R> std::fmt::Debug for DynDistSource<'_, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynDistSource")
            .field("pending", &self.pending)
            .finish_non_exhaustive()
    }
}

impl<'a, R: RngCore> DynDistSource<'a, R> {
    /// i.i.d. boxes from `dist` using `rng`.
    pub fn new(dist: &'a dyn BoxDist, rng: R) -> Self {
        DynDistSource {
            dist,
            rng,
            pending: None,
        }
    }
}

impl<R: RngCore> BoxSource for DynDistSource<'_, R> {
    fn next_box(&mut self) -> Blocks {
        self.pending
            .take()
            .unwrap_or_else(|| self.dist.sample(&mut self.rng))
    }

    fn next_run(&mut self) -> BoxRun {
        run_from_dist(self.dist, &mut self.rng, &mut self.pending)
    }
}

/// Without-replacement random reshuffle of a finite profile: one random
/// permutation per period, a fresh permutation each time the boxes run out.
#[derive(Debug)]
pub struct PermutationSource<R> {
    boxes: Vec<Blocks>,
    pos: usize,
    rng: R,
}

impl<R: Rng> PermutationSource<R> {
    /// Shuffled replay of `profile`'s boxes.
    ///
    /// # Panics
    ///
    /// Panics if the profile is empty.
    pub fn new(profile: &SquareProfile, mut rng: R) -> Self {
        assert!(!profile.is_empty(), "cannot shuffle an empty profile");
        let mut boxes = profile.boxes().to_vec();
        boxes.shuffle(&mut rng);
        PermutationSource { boxes, pos: 0, rng }
    }
}

impl<R: Rng> BoxSource for PermutationSource<R> {
    fn next_box(&mut self) -> Blocks {
        if self.pos == self.boxes.len() {
            self.boxes.shuffle(&mut self.rng);
            self.pos = 0;
        }
        let b = self.boxes[self.pos];
        self.pos += 1;
        b
    }

    fn next_run(&mut self) -> BoxRun {
        // Equal boxes that land adjacent in the shuffle survive as a run
        // (common when the profile is dominated by one size, e.g. the
        // worst-case multiset, which is mostly min-size leaves). Never
        // reads past the current permutation: the reshuffle happens lazily
        // on the next call, exactly as in `next_box`.
        if self.pos == self.boxes.len() {
            self.boxes.shuffle(&mut self.rng);
            self.pos = 0;
        }
        let size = self.boxes[self.pos];
        let run = self.boxes[self.pos..]
            .iter()
            .take_while(|&&x| x == size)
            .count() as u64;
        self.pos += cadapt_core::cast::usize_from_u64(run);
        BoxRun { size, repeat: run }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(12345)
    }

    #[test]
    fn point_mass_is_constant() {
        let d = PointMass { size: 42 };
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 42);
        }
        assert_eq!(d.discrete_support(), Some(vec![(42, 1.0)]));
    }

    #[test]
    fn uniform_stays_in_range_and_covers_it() {
        let d = UniformBoxes::new(3, 6);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((3..=6).contains(&x));
            seen.insert(x);
        }
        assert_eq!(seen.len(), 4, "all four values should appear in 1000 draws");
    }

    #[test]
    fn power_of_b_support() {
        let d = PowerOfB::new(4, 1, 3);
        let mut r = rng();
        for _ in 0..200 {
            let x = d.sample(&mut r);
            assert!([4, 16, 64].contains(&x));
        }
        let support = d.discrete_support().unwrap();
        assert_eq!(support.len(), 3);
        let total: f64 = support.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pareto_respects_bounds_and_has_tail() {
        let d = ParetoBoxes::new(1.2, 4, 1 << 20);
        let mut r = rng();
        let draws: Vec<_> = (0..5000).map(|_| d.sample(&mut r)).collect();
        assert!(draws.iter().all(|&x| (4..=(1 << 20)).contains(&x)));
        // Heavy tail: some draw should exceed 16x the minimum.
        assert!(draws.iter().any(|&x| x > 64));
        // But the median stays near the minimum.
        let mut sorted = draws.clone();
        sorted.sort_unstable();
        assert!(sorted[sorted.len() / 2] < 16);
    }

    #[test]
    fn log_uniform_bounds() {
        let d = LogUniform::new(2, 2048);
        let mut r = rng();
        for _ in 0..2000 {
            let x = d.sample(&mut r);
            assert!((2..=2048).contains(&x));
        }
        // Degenerate range.
        let d = LogUniform::new(5, 5);
        assert_eq!(d.sample(&mut r), 5);
    }

    #[test]
    fn power_law_support_and_proportions() {
        let d = PowerLawBoxes::new(4, 0, 3, 1.0);
        let support = d.discrete_support().unwrap();
        assert_eq!(support.len(), 4);
        let total: f64 = support.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // α = 1, b = 4: weights 1, 1/4, 1/16, 1/64 — Pr[1] = 64/85.
        assert!((support[0].1 - 64.0 / 85.0).abs() < 1e-12);
        assert_eq!(support[3].0, 64);
        // Sampling matches proportions roughly.
        let mut r = rng();
        let draws = 20_000;
        let small = (0..draws).filter(|_| d.sample(&mut r) == 1).count();
        let frac = small as f64 / draws as f64;
        assert!((frac - 64.0 / 85.0).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn power_law_samples_stay_in_support() {
        let d = PowerLawBoxes::new(2, 2, 6, 0.5);
        let mut r = rng();
        for _ in 0..500 {
            let x = d.sample(&mut r);
            assert!([4u64, 8, 16, 32, 64].contains(&x));
        }
    }

    #[test]
    fn empirical_multiset_proportions() {
        // 3/4 of the mass on size 1, 1/4 on size 8.
        let d = EmpiricalMultiset::from_counts(&[(1, 3), (8, 1)], "test");
        let mut r = rng();
        let draws = 40_000;
        let ones = (0..draws).filter(|_| d.sample(&mut r) == 1).count();
        let frac = ones as f64 / draws as f64;
        assert!((frac - 0.75).abs() < 0.02, "got {frac}");
        let support = d.discrete_support().unwrap();
        assert_eq!(support[0], (1, 0.75));
        assert_eq!(support[1], (8, 0.25));
    }

    #[test]
    fn empirical_from_profile() {
        let p = SquareProfile::new(vec![2, 2, 4, 2]).unwrap();
        let d = EmpiricalMultiset::from_profile(&p, "p");
        let support = d.discrete_support().unwrap();
        assert_eq!(support, vec![(2, 0.75), (4, 0.25)]);
    }

    #[test]
    fn huge_counts_do_not_overflow() {
        // Counts near u128 scale (the worst-case multiset for deep trees).
        let d = EmpiricalMultiset::from_counts(&[(1, u128::from(u64::MAX)), (1 << 30, 1)], "huge");
        let mut r = rng();
        for _ in 0..100 {
            let x = d.sample(&mut r);
            assert!(x == 1 || x == 1 << 30);
        }
    }

    #[test]
    fn permutation_source_preserves_multiset_per_period() {
        let p = SquareProfile::new(vec![1, 2, 3, 4, 5]).unwrap();
        let mut s = PermutationSource::new(&p, rng());
        let mut first: Vec<_> = (0..5).map(|_| s.next_box()).collect();
        let mut second: Vec<_> = (0..5).map(|_| s.next_box()).collect();
        first.sort_unstable();
        second.sort_unstable();
        assert_eq!(first, vec![1, 2, 3, 4, 5]);
        assert_eq!(second, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn permutation_actually_shuffles() {
        let boxes: Vec<Blocks> = (1..=100).collect();
        let p = SquareProfile::new(boxes.clone()).unwrap();
        let mut s = PermutationSource::new(&p, rng());
        let drawn: Vec<_> = (0..100).map(|_| s.next_box()).collect();
        assert_ne!(
            drawn, boxes,
            "a 100-element shuffle equal to identity is ~impossible"
        );
    }

    #[test]
    fn dist_source_draws_from_dist() {
        let mut s = DistSource::new(PointMass { size: 9 }, rng());
        assert_eq!(s.next_box(), 9);
    }

    #[test]
    fn dyn_dist_source_works() {
        let dist: Box<dyn BoxDist> = Box::new(PointMass { size: 3 });
        let mut s = DynDistSource::new(dist.as_ref(), rng());
        assert_eq!(s.next_box(), 3);
    }

    #[test]
    fn dist_source_runs_concatenate_to_boxes() {
        // Small support so equal draws are frequent and runs form.
        let dist = PowerOfB::new(2, 0, 1);
        let mut per_box = DistSource::new(dist, rng());
        let boxes: Vec<Blocks> = (0..4000).map(|_| per_box.next_box()).collect();
        let mut by_run = DistSource::new(dist, rng());
        let mut expanded = Vec::new();
        let mut multi = 0;
        while expanded.len() < boxes.len() {
            let run = by_run.next_run();
            assert!(run.repeat >= 1);
            if run.repeat > 1 {
                multi += 1;
            }
            for _ in 0..run.repeat.min((boxes.len() - expanded.len()) as u64) {
                expanded.push(run.size);
            }
        }
        assert_eq!(expanded, boxes);
        assert!(multi > 0, "a two-point support must produce some runs");
    }

    #[test]
    fn dist_source_mixed_run_and_box_calls_preserve_stream() {
        let dist = PowerOfB::new(2, 0, 1);
        let mut per_box = DistSource::new(dist, rng());
        let boxes: Vec<Blocks> = (0..200).map(|_| per_box.next_box()).collect();
        // Alternate next_run / next_box: the pending buffer must hand the
        // lookahead draw to next_box.
        let mut mixed = DistSource::new(dist, rng());
        let mut expanded = Vec::new();
        while expanded.len() < boxes.len() {
            let run = mixed.next_run();
            for _ in 0..run.repeat.min((boxes.len() - expanded.len()) as u64) {
                expanded.push(run.size);
            }
            if expanded.len() < boxes.len() {
                expanded.push(mixed.next_box());
            }
        }
        assert_eq!(expanded, boxes);
    }

    #[test]
    fn point_mass_runs_are_capped_not_infinite() {
        let mut s = DistSource::new(PointMass { size: 7 }, rng());
        let run = s.next_run();
        assert_eq!(run.size, 7);
        assert_eq!(run.repeat, super::RUN_LOOKAHEAD_CAP);
    }

    #[test]
    fn permutation_source_runs_concatenate_to_boxes() {
        // Mostly one size, so adjacent equal boxes survive the shuffle.
        let mut raw = vec![1u64; 60];
        raw.extend([8, 8, 64]);
        let p = SquareProfile::new(raw).unwrap();
        let mut per_box = PermutationSource::new(&p, rng());
        let boxes: Vec<Blocks> = (0..2 * p.len()).map(|_| per_box.next_box()).collect();
        let mut by_run = PermutationSource::new(&p, rng());
        let mut expanded = Vec::new();
        let mut multi = 0;
        while expanded.len() < boxes.len() {
            let run = by_run.next_run();
            assert!(run.repeat >= 1);
            if run.repeat > 1 {
                multi += 1;
            }
            for _ in 0..run.repeat.min((boxes.len() - expanded.len()) as u64) {
                expanded.push(run.size);
            }
        }
        assert_eq!(expanded, boxes);
        assert!(multi > 0, "a 60-of-63 majority size must yield runs");
    }

    #[test]
    fn labels_are_distinct_and_informative() {
        assert_eq!(PointMass { size: 4 }.label(), "point(4)");
        assert!(UniformBoxes::new(1, 9).label().contains('9'));
        assert!(PowerOfB::new(4, 0, 5).label().starts_with("pow4"));
        assert!(ParetoBoxes::new(2.0, 1, 100).label().contains("pareto"));
    }
}
