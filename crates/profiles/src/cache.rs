//! Process-wide memoized profile store.
//!
//! Materialised profile prefixes are pure functions of their family
//! parameters, yet the experiments used to rebuild them per sweep point —
//! and, after the trial fan-out, would have rebuilt them per *worker*.
//! This store computes each profile **once per process** and hands out
//! [`Arc`] handles keyed by `(family, params, size)`:
//!
//! * [`worst_case_squares`] — the materialised worst-case profile
//!   M_{a,b}(n) (E4 cyclic-shifts one per trial);
//! * [`sawtooth_squares`] — the winner-take-all sawtooth's greedy inner
//!   square approximation (E10 likewise).
//!
//! Determinism: a cache hit returns a handle to a profile bit-identical
//! to fresh construction (see the proptests in
//! `tests/props_profile_invariants.rs`), construction records no
//! execution counters, and the [`BTreeMap`] keying is total — so the
//! store can never change a golden record, only the wall clock. The map
//! is never evicted: a process touches a handful of sweep sizes, and the
//! largest quick-tier profile is a few MiB.

use crate::contention::sawtooth;
use crate::worst_case::WorstCase;
use cadapt_core::{Blocks, Io, SquareProfile};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Cache key: the profile family plus every parameter its generator reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Key {
    /// M_{a,b}(n): (a, b, min_size, depth).
    WorstCase(u64, u64, Blocks, u32),
    /// Winner-take-all sawtooth: (m_min, m_max, plateau, duration).
    Sawtooth(Blocks, Blocks, Io, Io),
}

static PROFILES: OnceLock<Mutex<BTreeMap<Key, Arc<SquareProfile>>>> = OnceLock::new();

fn get_or_build(key: Key, build: impl FnOnce() -> SquareProfile) -> Arc<SquareProfile> {
    let cache = PROFILES.get_or_init(|| Mutex::new(BTreeMap::new()));
    {
        let map = cache.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(profile) = map.get(&key) {
            return Arc::clone(profile);
        }
    }
    // Build outside the lock: materialisation is the expensive part and
    // must not serialize unrelated workers behind a miss.
    let profile = Arc::new(build());
    let mut map = cache.lock().unwrap_or_else(PoisonError::into_inner);
    Arc::clone(map.entry(key).or_insert(profile))
}

/// The materialised worst-case profile `wc.materialize()`, memoized.
#[must_use]
pub fn worst_case_squares(wc: &WorstCase) -> Arc<SquareProfile> {
    let key = Key::WorstCase(wc.a(), wc.b(), wc.min_size(), wc.depth());
    get_or_build(key, || wc.materialize())
}

/// The sawtooth contention profile's inner squares, memoized.
#[must_use]
pub fn sawtooth_squares(
    m_min: Blocks,
    m_max: Blocks,
    plateau: Io,
    duration: Io,
) -> Arc<SquareProfile> {
    let key = Key::Sawtooth(m_min, m_max, plateau, duration);
    get_or_build(key, || {
        sawtooth(m_min, m_max, plateau, duration).inner_squares()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_hits_share_and_match_fresh() {
        let wc = WorstCase::new(8, 4, 1, 3).unwrap();
        let first = worst_case_squares(&wc);
        let second = worst_case_squares(&wc);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(first.boxes(), wc.materialize().boxes());
    }

    #[test]
    fn sawtooth_hits_share_and_match_fresh() {
        let first = sawtooth_squares(1, 64, 64, 1024);
        let second = sawtooth_squares(1, 64, 64, 1024);
        assert!(Arc::ptr_eq(&first, &second));
        let fresh = sawtooth(1, 64, 64, 1024).inner_squares();
        assert_eq!(first.boxes(), fresh.boxes());
    }

    #[test]
    fn distinct_parameters_get_distinct_profiles() {
        let a = sawtooth_squares(1, 64, 64, 1024);
        let b = sawtooth_squares(1, 128, 128, 2048);
        assert!(!Arc::ptr_eq(&a, &b));
    }
}
