//! The recursive worst-case profile M_{a,b}(n) (§3, Figure 1).
//!
//! Construction: M_{a,b}(min_size) is a single box of size min_size;
//! M_{a,b}(n) is a copies of M_{a,b}(n/b) followed by one box of size n.
//! Equivalently, the boxes are the post-order traversal of the complete
//! a-ary recursion tree, each node of size m emitting one box of size m
//! after its children.
//!
//! Intuition (§3): the profile gives the algorithm a big cache exactly when
//! it is scanning (cannot use it) and a tiny cache when it is recursing
//! (could use it). On M_{a,b}(n), an (a, b, 1)-regular algorithm with scans
//! at the end consumes *every* box — each box of size m completes exactly
//! the size-m scan (or base case) it was sized for — so the bounded
//! potential sum is Σ_k a^{D−k} · ρ(min·b^k) = Θ(n^{log_b a} · log_b n):
//! the logarithmic gap.
//!
//! Profiles at experiment sizes have millions of boxes, so the generator is
//! a streaming [`BoxSource`]; [`WorstCase::materialize`] exists for small
//! instances and tests.

use cadapt_core::{Blocks, BoxRun, BoxSource, CoreError, Io, Potential, SquareProfile};
use cadapt_recursion::AbcParams;

/// Description of a worst-case profile M_{a,b} for problems of size
/// min_size · b^depth.
///
/// ```
/// use cadapt_profiles::WorstCase;
/// use cadapt_recursion::{run_on_profile, AbcParams, RunConfig};
///
/// let params = AbcParams::mm_scan();
/// let worst = WorstCase::for_problem(&params, 256)?;
/// let report = run_on_profile(
///     params, 256, &mut worst.source(), &RunConfig::default(),
/// ).expect("completes");
/// // The Theorem 2 gap, exactly: log_4 256 + 1.
/// assert_eq!(report.ratio(), 5.0);
/// # Ok::<(), cadapt_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorstCase {
    a: u64,
    b: u64,
    min_size: Blocks,
    depth: u32,
}

impl WorstCase {
    /// The worst-case profile with explicit parameters: boxes range from
    /// `min_size` up to `min_size · b^depth`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for a < 1, b < 2, or min_size < 1.
    pub fn new(a: u64, b: u64, min_size: Blocks, depth: u32) -> Result<Self, CoreError> {
        if a < 1 || b < 2 || min_size < 1 {
            return Err(CoreError::InvalidParameter {
                name: "worst_case",
                message: format!(
                    "need a >= 1, b >= 2, min_size >= 1; got a={a}, b={b}, min_size={min_size}"
                ),
            });
        }
        Ok(WorstCase {
            a,
            b,
            min_size,
            depth,
        })
    }

    /// The worst-case profile tailored to `params` on a problem of `n`
    /// blocks: boxes bottom out at the algorithm's base-case size.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if `n` is not canonical for `params`.
    pub fn for_problem(params: &AbcParams, n: Blocks) -> Result<Self, CoreError> {
        let depth = params
            .depth_of(n)
            .ok_or_else(|| CoreError::InvalidParameter {
                name: "n",
                message: format!("{n} is not a canonical size for {params}"),
            })?;
        WorstCase::new(params.a(), params.b(), params.base(), depth)
    }

    /// The branching factor a.
    #[must_use]
    pub fn a(&self) -> u64 {
        self.a
    }

    /// The shrink factor b.
    #[must_use]
    pub fn b(&self) -> u64 {
        self.b
    }

    /// The smallest box size.
    #[must_use]
    pub fn min_size(&self) -> Blocks {
        self.min_size
    }

    /// The recursion depth of the construction.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Box size emitted by tree level k: min_size · b^k.
    #[must_use]
    pub fn box_at_level(&self, k: u32) -> Blocks {
        let mut v = self.min_size;
        for _ in 0..k {
            // cadapt-lint: allow(panic-reach) -- deliberate loud overflow guard: a wrapped box size would corrupt the profile geometry
            v = v.checked_mul(self.b).expect("box size overflows u64");
        }
        v
    }

    /// Largest box in the profile (the root's).
    #[must_use]
    pub fn max_box(&self) -> Blocks {
        self.box_at_level(self.depth)
    }

    /// Number of boxes emitted by level k: a^{depth − k}.
    #[must_use]
    pub fn boxes_at_level(&self, k: u32) -> u128 {
        u128::from(self.a).pow(self.depth - k)
    }

    /// Total number of boxes: Σ_k a^{depth − k} = (a^{depth+1} − 1)/(a − 1)
    /// for a > 1, depth + 1 for a = 1.
    #[must_use]
    pub fn num_boxes(&self) -> u128 {
        (0..=self.depth).map(|k| self.boxes_at_level(k)).sum()
    }

    /// Total duration Σ |□| in I/Os.
    #[must_use]
    pub fn total_time(&self) -> Io {
        (0..=self.depth)
            .map(|k| self.boxes_at_level(k) * Io::from(self.box_at_level(k)))
            .sum()
    }

    /// Total potential Σ ρ(|□|). With min_size = 1 this is exactly
    /// (depth + 1) · a^depth — the log_b n factor over the required
    /// progress a^depth.
    #[must_use]
    pub fn total_potential(&self, rho: &Potential) -> f64 {
        (0..=self.depth)
            .map(|k| self.boxes_at_level(k) as f64 * rho.eval(self.box_at_level(k)))
            .sum()
    }

    /// The box multiset as (size, count) pairs, smallest first. This is the
    /// input to the empirical-distribution smoothing (Theorem 1 applied to
    /// the adversary's own boxes).
    #[must_use]
    pub fn box_multiset(&self) -> Vec<(Blocks, u128)> {
        (0..=self.depth)
            .map(|k| (self.box_at_level(k), self.boxes_at_level(k)))
            .collect()
    }

    /// Streaming source of the profile's boxes, in construction order,
    /// repeating from the start when exhausted (the algorithm it is built
    /// for finishes exactly at the end of one period).
    #[must_use]
    pub fn source(&self) -> WorstCaseSource {
        WorstCaseSource {
            wc: *self,
            stack: vec![NodeState {
                level: self.depth,
                emitted: 0,
            }],
        }
    }

    /// Materialise the whole profile. Only for small depths — the box count
    /// grows as a^depth.
    ///
    /// # Panics
    ///
    /// Panics if the profile has more than 2^32 boxes.
    #[must_use]
    pub fn materialize(&self) -> SquareProfile {
        let count = self.num_boxes();
        assert!(
            count <= u128::from(u32::MAX),
            "profile too large to materialise"
        );
        let mut source = self.source();
        SquareProfile::take_from(&mut source, count as usize)
    }
}

#[derive(Debug, Clone, Copy)]
struct NodeState {
    level: u32,
    emitted: u64,
}

/// Worst-case profile *matched to an algorithm's scan layout*: walks the
/// recursion structure of `params` and emits one box per non-empty scan
/// chunk, sized exactly to the chunk, plus one box per base case. For the
/// canonical `End` layout with c = 1 this reproduces [`WorstCase`] exactly;
/// for `Start`/`Split` layouts it is the adversary adapted to where the
/// scans actually sit (the construction behind the paper's claim that
/// upfront-scan algorithms are WLOG). Cycles when exhausted.
#[derive(Debug, Clone)]
pub struct MatchedWorstCase {
    params: AbcParams,
    depth: u32,
    /// (level, next phase index). Phase p encodes: even p = chunk slot
    /// p/2 (about to emit its box, if non-empty), odd p = child (p−1)/2.
    stack: Vec<(u32, u64)>,
}

impl MatchedWorstCase {
    /// The matched adversary for `params` on problems of size `n`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if `n` is not canonical for `params`.
    pub fn new(params: AbcParams, n: Blocks) -> Result<Self, CoreError> {
        let depth = params
            .depth_of(n)
            .ok_or_else(|| CoreError::InvalidParameter {
                name: "n",
                message: format!("{n} is not a canonical size for {params}"),
            })?;
        Ok(MatchedWorstCase {
            params,
            depth,
            stack: Vec::new(),
        })
    }

    fn node_size(&self, level: u32) -> Blocks {
        self.params.canonical_size(level)
    }
}

impl BoxSource for MatchedWorstCase {
    fn next_box(&mut self) -> Blocks {
        loop {
            let Some(&(level, phase)) = self.stack.last() else {
                self.stack.push((self.depth, 0));
                continue;
            };
            if level == 0 {
                // Base case: one box of the base-case size.
                self.stack.pop();
                if let Some(top) = self.stack.last_mut() {
                    top.1 += 1;
                }
                return self.params.base();
            }
            let phases = 2 * self.params.a() + 1;
            if phase >= phases {
                self.stack.pop();
                if let Some(top) = self.stack.last_mut() {
                    top.1 += 1;
                }
                continue;
            }
            if phase % 2 == 0 {
                // Chunk slot phase: emit a box matching the chunk, if any.
                let slot = phase / 2;
                let len = self.params.scan_chunk(self.node_size(level), slot);
                // cadapt-lint: allow(panic-reach) -- invariant: the stack was just refilled if empty, so a top frame exists
                self.stack.last_mut().expect("nonempty").1 += 1;
                if len > 0 {
                    return len;
                }
                continue;
            }
            // Child phase: descend (the child bumps our phase when done).
            self.stack.push((level - 1, 0));
        }
    }

    // next_run: default single-box runs. The matched adversary's equal
    // boxes are rarely adjacent (chunk boxes shrink level by level and
    // alternate with base cases under Split/Start layouts), so there is
    // little to batch; the canonical [`WorstCaseSource`] covers the hot
    // worst-case path.
}

/// Streaming post-order box generator for [`WorstCase`]; cycles when one
/// period of the profile is exhausted.
#[derive(Debug, Clone)]
pub struct WorstCaseSource {
    wc: WorstCase,
    stack: Vec<NodeState>,
}

impl BoxSource for WorstCaseSource {
    fn next_box(&mut self) -> Blocks {
        loop {
            if self.stack.is_empty() {
                // One full period emitted: cycle.
                self.stack.push(NodeState {
                    level: self.wc.depth,
                    emitted: 0,
                });
            }
            // cadapt-lint: allow(panic-reach) -- invariant: the stack was just refilled if empty, so a top frame exists
            let top = *self.stack.last().expect("nonempty");
            if top.level == 0 || top.emitted == self.wc.a {
                // Leaf, or all children emitted: emit this node's box.
                let size = self.wc.box_at_level(top.level);
                self.stack.pop();
                if let Some(parent) = self.stack.last_mut() {
                    parent.emitted += 1;
                }
                return size;
            }
            self.stack.push(NodeState {
                level: top.level - 1,
                emitted: 0,
            });
        }
    }

    fn next_run(&mut self) -> BoxRun {
        // A share of 1 − 1/a of the profile is leaf boxes, and they arrive
        // in bursts of `a` (all children of a level-1 node). Emitting each
        // burst as one run lets the consumer advance them in closed form.
        if self.wc.depth == 0 {
            // Degenerate profile: every box is the single min_size box.
            return BoxRun {
                size: self.wc.min_size,
                repeat: u64::MAX,
            };
        }
        loop {
            if self.stack.is_empty() {
                self.stack.push(NodeState {
                    level: self.wc.depth,
                    emitted: 0,
                });
            }
            // cadapt-lint: allow(panic-reach) -- invariant: the stack was just refilled if empty, so a top frame exists
            let top = *self.stack.last().expect("nonempty");
            if top.level == 1 && top.emitted < self.wc.a {
                // The next a − emitted boxes are this node's leaf children,
                // all of size min_size. (If the consumer stops mid-run the
                // remainder is discarded per the BoxRun contract, so jumping
                // `emitted` straight to a is safe.)
                let repeat = self.wc.a - top.emitted;
                // cadapt-lint: allow(panic-reach) -- invariant: the stack was just refilled if empty, so a top frame exists
                self.stack.last_mut().expect("nonempty").emitted = self.wc.a;
                return BoxRun {
                    size: self.wc.box_at_level(0),
                    repeat,
                };
            }
            if top.level == 0 || top.emitted == self.wc.a {
                let size = self.wc.box_at_level(top.level);
                self.stack.pop();
                if let Some(parent) = self.stack.last_mut() {
                    parent.emitted += 1;
                }
                return BoxRun { size, repeat: 1 };
            }
            self.stack.push(NodeState {
                level: top.level - 1,
                emitted: 0,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadapt_recursion::{run_on_profile, RunConfig};

    #[test]
    fn depth_zero_is_single_box() {
        let wc = WorstCase::new(8, 4, 1, 0).unwrap();
        assert_eq!(wc.materialize().boxes(), &[1]);
        assert_eq!(wc.num_boxes(), 1);
    }

    #[test]
    fn depth_one_structure() {
        // a children of size 1, then the root box of size b.
        let wc = WorstCase::new(3, 2, 1, 1).unwrap();
        assert_eq!(wc.materialize().boxes(), &[1, 1, 1, 2]);
    }

    #[test]
    fn depth_two_structure() {
        let wc = WorstCase::new(2, 2, 1, 2).unwrap();
        // M(4) = M(2) M(2) [4]; M(2) = [1,1,2].
        assert_eq!(wc.materialize().boxes(), &[1, 1, 2, 1, 1, 2, 4]);
    }

    #[test]
    fn counts_match_closed_forms() {
        let wc = WorstCase::new(8, 4, 1, 3).unwrap();
        let profile = wc.materialize();
        assert_eq!(profile.len() as u128, wc.num_boxes());
        assert_eq!(profile.total_time(), wc.total_time());
        let rho = Potential::new(8, 4);
        let measured = profile.total_potential(&rho);
        assert!((measured - wc.total_potential(&rho)).abs() < 1e-6);
        // (depth+1) · a^depth = 4 · 512 = 2048 for min_size 1.
        assert!((wc.total_potential(&rho) - 2048.0).abs() < 1e-9);
    }

    #[test]
    fn source_cycles() {
        let wc = WorstCase::new(2, 2, 1, 1).unwrap();
        let mut s = wc.source();
        let one_period: Vec<_> = (0..3).map(|_| s.next_box()).collect();
        assert_eq!(one_period, vec![1, 1, 2]);
        let second: Vec<_> = (0..3).map(|_| s.next_box()).collect();
        assert_eq!(second, vec![1, 1, 2]);
    }

    #[test]
    fn respects_min_size() {
        let wc = WorstCase::new(8, 4, 4, 2).unwrap();
        assert_eq!(wc.box_at_level(0), 4);
        assert_eq!(wc.max_box(), 64);
        let profile = wc.materialize();
        assert_eq!(profile.min_box(), Some(4));
    }

    #[test]
    fn for_problem_matches_params() {
        let params = AbcParams::mm_scan();
        let wc = WorstCase::for_problem(&params, 256).unwrap();
        assert_eq!(wc.max_box(), 256);
        assert_eq!(wc.num_boxes(), 8u128.pow(4) + 8u128.pow(3) + 64 + 8 + 1);
        assert!(WorstCase::for_problem(&params, 100).is_err());
    }

    #[test]
    fn algorithm_consumes_exactly_one_period() {
        // The defining property: MM-Scan on M_{8,4}(n) uses every box, each
        // box completing exactly its matching scan or base case.
        let params = AbcParams::mm_scan();
        for n in [4u64, 16, 64, 256] {
            let wc = WorstCase::for_problem(&params, n).unwrap();
            let mut source = wc.source();
            let report = run_on_profile(params, n, &mut source, &RunConfig::default()).unwrap();
            assert_eq!(u128::from(report.boxes_used), wc.num_boxes(), "n = {n}");
            // Ratio = (log_4 n + 1): the logarithmic gap.
            let expected = (params.depth_of(n).unwrap() + 1) as f64;
            assert!(
                (report.ratio() - expected).abs() < 1e-9,
                "n = {n}: ratio {} vs {expected}",
                report.ratio()
            );
        }
    }

    #[test]
    fn box_multiset_sums_to_num_boxes() {
        let wc = WorstCase::new(7, 4, 1, 3).unwrap();
        let total: u128 = wc.box_multiset().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, wc.num_boxes());
    }

    #[test]
    fn matched_reproduces_canonical_for_end_layout() {
        let params = AbcParams::mm_scan();
        let wc = WorstCase::for_problem(&params, 64).unwrap();
        let canonical = wc.materialize();
        let mut matched = MatchedWorstCase::new(params, 64).unwrap();
        let boxes: Vec<Blocks> = (0..canonical.len()).map(|_| matched.next_box()).collect();
        assert_eq!(boxes, canonical.boxes());
    }

    #[test]
    fn matched_start_layout_puts_big_boxes_first() {
        use cadapt_recursion::ScanLayout;
        let params = AbcParams::mm_scan().with_layout(ScanLayout::Start);
        let mut matched = MatchedWorstCase::new(params, 16).unwrap();
        // Root scan box (16) first, then the first size-4 node's scan box
        // (4), then its eight leaf boxes.
        assert_eq!(matched.next_box(), 16);
        assert_eq!(matched.next_box(), 4);
        for _ in 0..8 {
            assert_eq!(matched.next_box(), 1);
        }
        // Second size-4 node.
        assert_eq!(matched.next_box(), 4);
    }

    #[test]
    fn matched_split_layout_conserves_scan_mass() {
        use cadapt_recursion::ScanLayout;
        let params = AbcParams::mm_scan().with_layout(ScanLayout::Split);
        let n = 64u64;
        let wc = WorstCase::for_problem(&AbcParams::mm_scan(), n).unwrap();
        let count = wc.num_boxes() as usize;
        let mut matched = MatchedWorstCase::new(params, n).unwrap();
        // One period has the same total time as the canonical profile: the
        // scan mass is redistributed, not changed. Split may produce a
        // different box *count* (empty chunks are skipped; split chunks of
        // tiny scans can vanish), so compare total time over one period by
        // summing until the period repeats — here simply sum `count` worth
        // of canonical boxes vs the same serial mass from matched boxes.
        let canonical_time: u128 = wc.total_time();
        let mut matched_time: u128 = 0;
        let mut matched_boxes = 0usize;
        while matched_time < canonical_time {
            matched_time += u128::from(matched.next_box());
            matched_boxes += 1;
            assert!(matched_boxes < 10 * count, "runaway");
        }
        assert_eq!(matched_time, canonical_time, "scan mass must be conserved");
    }

    #[test]
    fn matched_cycles() {
        let params = AbcParams::mm_scan();
        let wc = WorstCase::for_problem(&params, 16).unwrap();
        let count = wc.num_boxes() as usize;
        let mut matched = MatchedWorstCase::new(params, 16).unwrap();
        let first: Vec<Blocks> = (0..count).map(|_| matched.next_box()).collect();
        let second: Vec<Blocks> = (0..count).map(|_| matched.next_box()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn matched_rejects_bad_size() {
        assert!(MatchedWorstCase::new(AbcParams::mm_scan(), 60).is_err());
    }

    #[test]
    fn source_runs_concatenate_to_boxes() {
        let wc = WorstCase::new(3, 2, 2, 3).unwrap();
        let period = wc.num_boxes() as usize;
        let mut per_box = wc.source();
        let boxes: Vec<Blocks> = (0..2 * period).map(|_| per_box.next_box()).collect();
        let mut by_run = wc.source();
        let mut expanded = Vec::new();
        while expanded.len() < boxes.len() {
            let run = by_run.next_run();
            assert!(run.repeat >= 1);
            for _ in 0..run.repeat.min((boxes.len() - expanded.len()) as u64) {
                expanded.push(run.size);
            }
        }
        assert_eq!(expanded, boxes);
    }

    #[test]
    fn leaf_bursts_have_full_length() {
        let wc = WorstCase::new(8, 4, 1, 2).unwrap();
        let mut s = wc.source();
        let first = s.next_run();
        assert_eq!(first, cadapt_core::BoxRun { size: 1, repeat: 8 });
        // Next: the level-1 node's own box, alone.
        assert_eq!(s.next_run(), cadapt_core::BoxRun { size: 4, repeat: 1 });
    }

    #[test]
    fn depth_zero_run_is_infinite() {
        let wc = WorstCase::new(8, 4, 5, 0).unwrap();
        let run = wc.source().next_run();
        assert_eq!(run.size, 5);
        assert_eq!(run.repeat, u64::MAX);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(WorstCase::new(0, 4, 1, 2).is_err());
        assert!(WorstCase::new(8, 1, 1, 2).is_err());
        assert!(WorstCase::new(8, 4, 0, 2).is_err());
    }
}
