//! The weak smoothings of §4 — perturbations that do **not** close the gap.
//!
//! The paper's negative results: the worst-case profile M_{a,b}(n) stays
//! worst-case in expectation under
//!
//! 1. **box-size perturbation** — multiply every box by an independent
//!    X_i drawn from any distribution P over [0, t] with E\[X\] = Θ(t),
//!    t ≤ √n ([`SizePerturbedSource`]);
//! 2. **start-time perturbation** — run the algorithm from a uniformly
//!    random start position of the cyclic profile ([`random_cyclic_shift`]);
//! 3. **box-order perturbation** — when constructing M_{a,b}(n)
//!    recursively, place the size-n box after *any* of the a recursive
//!    instances instead of always the last ([`BoxOrderPerturbedSource`]);
//!    the result is worst-case with probability one.
//!
//! Experiments E3–E5 measure the adaptivity ratio under each perturbation
//! and confirm the Θ(log_b n) growth persists, in contrast to the i.i.d.
//! smoothing of [`dist`](crate::dist).

use crate::worst_case::WorstCase;
use cadapt_core::{Blocks, BoxRun, BoxSource, SquareProfile};
use rand::{Rng, RngCore};

/// A distribution over multiplicative perturbation factors X ∈ [0, t].
pub trait MultiplierDist: Send + Sync {
    /// Draw one factor (may be fractional; 0 is allowed — perturbed boxes
    /// are clamped to at least one block).
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// Human-readable label.
    fn label(&self) -> String;
}

impl<M: MultiplierDist + ?Sized> MultiplierDist for &M {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (**self).sample(rng)
    }

    fn label(&self) -> String {
        (**self).label()
    }
}

/// X ~ U[0, t]: the paper's canonical perturbation (E\[X\] = t/2 = Θ(t)).
#[derive(Debug, Clone, Copy)]
pub struct UniformMultiplier {
    /// Upper end of the factor range.
    pub t: f64,
}

impl MultiplierDist for UniformMultiplier {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        rng.gen_range(0.0..self.t)
    }

    fn label(&self) -> String {
        format!("U[0,{}]", self.t)
    }
}

/// X ∈ {1/s, 1, s} uniformly — a bounded constant-factor jiggle
/// (E\[X\] = Θ(1)); the "randomly tweaking the size of each box by a constant
/// factor" phrasing of the abstract.
#[derive(Debug, Clone, Copy)]
pub struct ConstantFactorJiggle {
    /// The scale s ≥ 1.
    pub s: f64,
}

impl MultiplierDist for ConstantFactorJiggle {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        match rng.gen_range(0u8..3) {
            0 => 1.0 / self.s,
            1 => 1.0,
            _ => self.s,
        }
    }

    fn label(&self) -> String {
        format!("jiggle(x{}/÷{})", self.s, self.s)
    }
}

/// Wraps a box source, multiplying every emitted box by an independent
/// draw from a [`MultiplierDist`] (clamped to ≥ 1 block).
pub struct SizePerturbedSource<S, M, R> {
    inner: S,
    mult: M,
    rng: R,
}

impl<S, M, R> std::fmt::Debug for SizePerturbedSource<S, M, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SizePerturbedSource")
            .finish_non_exhaustive()
    }
}

impl<S: BoxSource, M: MultiplierDist, R: RngCore> SizePerturbedSource<S, M, R> {
    /// Perturb `inner`'s boxes with factors from `mult`.
    pub fn new(inner: S, mult: M, rng: R) -> Self {
        SizePerturbedSource { inner, mult, rng }
    }
}

impl<S: BoxSource, M: MultiplierDist, R: RngCore> BoxSource for SizePerturbedSource<S, M, R> {
    // The f64→u64 cast is range-checked by the branch around it.
    #[allow(clippy::cast_possible_truncation)]
    fn next_box(&mut self) -> Blocks {
        let base = self.inner.next_box();
        let factor = self.mult.sample(&mut self.rng);
        let scaled = (base as f64 * factor).round();
        if scaled < 1.0 {
            1
        } else if scaled >= u64::MAX as f64 {
            u64::MAX
        } else {
            scaled as u64
        }
    }

    // next_run: default single-box runs. Every box gets an independent
    // multiplier draw, so consecutive perturbed boxes are almost never
    // equal and batching the inner source would skip RNG draws the per-box
    // stream makes.
}

/// Start-time perturbation: rotate a finite profile to a uniformly random
/// position of its cyclic version, at time granularity (so box i becomes
/// the start with probability proportional to |□_i|, matching a uniformly
/// random start *time*).
pub fn random_cyclic_shift<R: Rng>(profile: &SquareProfile, rng: &mut R) -> SquareProfile {
    let total = profile.total_time();
    if total == 0 {
        return profile.clone();
    }
    let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
    profile.rotated_by_time(wide % total)
}

/// How the box-order perturbation picks the placement of each node's box.
pub trait PlacementChooser {
    /// After which child (1-based: 1 ..= a) the node's own box is emitted.
    fn choose(&mut self, level: u32, a: u64) -> u64;
}

/// Uniformly random placement per node (the §4 construction).
pub struct RandomPlacement<R>(pub R);

impl<R> std::fmt::Debug for RandomPlacement<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomPlacement").finish_non_exhaustive()
    }
}

impl<R: Rng> PlacementChooser for RandomPlacement<R> {
    fn choose(&mut self, _level: u32, a: u64) -> u64 {
        self.0.gen_range(1..=a)
    }
}

/// Always after the last child — recovers the canonical M_{a,b}.
#[derive(Debug, Clone, Copy)]
pub struct LastPlacement;

impl PlacementChooser for LastPlacement {
    fn choose(&mut self, _level: u32, _a: u64) -> u64 {
        u64::MAX // clamped to a by the generator
    }
}

/// Always after the first child — the most "misaligned" deterministic
/// variant (an adversarial chooser; §4's result covers these too).
#[derive(Debug, Clone, Copy)]
pub struct FirstPlacement;

impl PlacementChooser for FirstPlacement {
    fn choose(&mut self, _level: u32, _a: u64) -> u64 {
        1
    }
}

#[derive(Debug, Clone, Copy)]
struct OrderNode {
    level: u32,
    emitted: u64,
    /// After this many children, emit the node's own box.
    place_after: u64,
    own_emitted: bool,
}

/// The box-order-perturbed worst-case profile: like
/// [`WorstCase`] but each node's box lands after a chosen
/// child rather than after all of them. Cycles when exhausted.
pub struct BoxOrderPerturbedSource<C> {
    wc: WorstCase,
    chooser: C,
    stack: Vec<OrderNode>,
}

impl<C> std::fmt::Debug for BoxOrderPerturbedSource<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoxOrderPerturbedSource")
            .field("wc", &self.wc)
            .field("stack", &self.stack)
            .finish_non_exhaustive()
    }
}

impl<C: PlacementChooser> BoxOrderPerturbedSource<C> {
    /// Stream the perturbed profile for `wc`, placements drawn from
    /// `chooser`.
    pub fn new(wc: WorstCase, chooser: C) -> Self {
        BoxOrderPerturbedSource {
            wc,
            chooser,
            stack: Vec::new(),
        }
    }

    fn children(&self, level: u32) -> u64 {
        if level == 0 {
            0
        } else {
            self.wc.a()
        }
    }

    fn push_node(&mut self, level: u32) {
        let place_after = if level == 0 {
            0
        } else {
            self.chooser
                .choose(level, self.wc.a())
                .clamp(1, self.wc.a())
        };
        self.stack.push(OrderNode {
            level,
            emitted: 0,
            place_after,
            own_emitted: false,
        });
    }

    fn pop_node(&mut self) {
        self.stack.pop();
        if let Some(p) = self.stack.last_mut() {
            p.emitted += 1;
        }
    }
}

impl<C: PlacementChooser> BoxSource for BoxOrderPerturbedSource<C> {
    fn next_box(&mut self) -> Blocks {
        loop {
            if self.stack.is_empty() {
                let depth = self.wc.depth();
                self.push_node(depth);
            }
            // cadapt-lint: allow(panic-reach) -- invariant: the stack was just refilled if empty, so a top frame exists
            let top = *self.stack.last().expect("nonempty");
            let children = self.children(top.level);
            // Emit the node's own box once `place_after` children are done
            // (immediately for leaves, whose place_after is 0).
            if !top.own_emitted && top.emitted >= top.place_after {
                // cadapt-lint: allow(panic-reach) -- invariant: the stack was just refilled if empty, so a top frame exists
                self.stack.last_mut().expect("nonempty").own_emitted = true;
                let size = self.wc.box_at_level(top.level);
                if top.emitted == children {
                    self.pop_node();
                }
                return size;
            }
            if top.emitted == children {
                // All children done and own box already emitted.
                self.pop_node();
                continue;
            }
            self.push_node(top.level - 1);
        }
    }

    fn next_run(&mut self) -> BoxRun {
        loop {
            if self.stack.is_empty() {
                let depth = self.wc.depth();
                self.push_node(depth);
            }
            // cadapt-lint: allow(panic-reach) -- invariant: the stack was just refilled if empty, so a top frame exists
            let top = *self.stack.last().expect("nonempty");
            let children = self.children(top.level);
            if !top.own_emitted && top.emitted >= top.place_after {
                // cadapt-lint: allow(panic-reach) -- invariant: the stack was just refilled if empty, so a top frame exists
                self.stack.last_mut().expect("nonempty").own_emitted = true;
                let size = self.wc.box_at_level(top.level);
                if top.emitted == children {
                    self.pop_node();
                }
                return BoxRun { size, repeat: 1 };
            }
            if top.emitted == children {
                self.pop_node();
                continue;
            }
            if top.level == 1 {
                // The next children are leaves, emitted back to back until
                // either this node's own box interrupts (at place_after) or
                // the children run out. Leaves draw nothing from the
                // chooser, so jumping `emitted` forward reproduces the
                // per-box stream exactly.
                let until = if top.own_emitted {
                    children
                } else {
                    top.place_after
                };
                let repeat = until - top.emitted;
                // cadapt-lint: allow(panic-reach) -- invariant: the stack was just refilled if empty, so a top frame exists
                self.stack.last_mut().expect("nonempty").emitted = until;
                return BoxRun {
                    size: self.wc.box_at_level(0),
                    repeat,
                };
            }
            self.push_node(top.level - 1);
        }
    }
}

// Exact float equality in tests is deliberate: outputs are required to be
// bit-identical run to run (see the golden records).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;
    use cadapt_core::profile::ConstantSource;
    use cadapt_core::Potential;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(999)
    }

    fn collect<S: BoxSource>(mut s: S, count: usize) -> Vec<Blocks> {
        (0..count).map(|_| s.next_box()).collect()
    }

    #[test]
    fn uniform_multiplier_range_and_mean() {
        let m = UniformMultiplier { t: 8.0 };
        let mut r = rng();
        let draws: Vec<f64> = (0..20_000).map(|_| m.sample(&mut r)).collect();
        assert!(draws.iter().all(|&x| (0.0..8.0).contains(&x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 4.0).abs() < 0.1, "E[X] should be t/2, got {mean}");
    }

    #[test]
    fn jiggle_values() {
        let m = ConstantFactorJiggle { s: 2.0 };
        let mut r = rng();
        for _ in 0..100 {
            let x = m.sample(&mut r);
            assert!(x == 0.5 || x == 1.0 || x == 2.0);
        }
    }

    #[test]
    fn size_perturbation_clamps_to_one() {
        // A multiplier of ~0 must not produce zero-sized boxes.
        struct Zero;
        impl MultiplierDist for Zero {
            fn sample(&self, _rng: &mut dyn RngCore) -> f64 {
                0.0
            }
            fn label(&self) -> String {
                "zero".into()
            }
        }
        let mut s = SizePerturbedSource::new(ConstantSource::new(100), Zero, rng());
        for _ in 0..10 {
            assert_eq!(s.next_box(), 1);
        }
    }

    #[test]
    fn size_perturbation_scales() {
        struct Double;
        impl MultiplierDist for Double {
            fn sample(&self, _rng: &mut dyn RngCore) -> f64 {
                2.0
            }
            fn label(&self) -> String {
                "x2".into()
            }
        }
        let mut s = SizePerturbedSource::new(ConstantSource::new(7), Double, rng());
        assert_eq!(s.next_box(), 14);
    }

    #[test]
    fn cyclic_shift_preserves_multiset() {
        let p = SquareProfile::new(vec![3, 1, 4, 1, 5, 9, 2, 6]).unwrap();
        let mut r = rng();
        for _ in 0..10 {
            let shifted = random_cyclic_shift(&p, &mut r);
            let mut a = shifted.boxes().to_vec();
            let mut b = p.boxes().to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            assert_eq!(shifted.total_time(), p.total_time());
        }
    }

    #[test]
    fn last_placement_recovers_canonical_worst_case() {
        let wc = WorstCase::new(3, 2, 1, 2).unwrap();
        let canonical = wc.materialize();
        let perturbed = collect(
            BoxOrderPerturbedSource::new(wc, LastPlacement),
            canonical.len(),
        );
        assert_eq!(perturbed, canonical.boxes());
    }

    #[test]
    fn first_placement_moves_big_boxes_early() {
        let wc = WorstCase::new(2, 2, 1, 2).unwrap();
        // Canonical: [1,1,2, 1,1,2, 4]. First-placement: the own box comes
        // after child 1: M'(4) = M'(2) [4] M'(2); M'(2) = [1] [2] [1].
        let boxes = collect(BoxOrderPerturbedSource::new(wc, FirstPlacement), 7);
        assert_eq!(boxes, vec![1, 2, 1, 4, 1, 2, 1]);
    }

    #[test]
    fn box_order_perturbation_preserves_multiset() {
        let wc = WorstCase::new(3, 2, 1, 3).unwrap();
        let count = wc.num_boxes() as usize;
        let mut random = collect(
            BoxOrderPerturbedSource::new(wc, RandomPlacement(rng())),
            count,
        );
        let mut canonical = wc.materialize().into_boxes();
        random.sort_unstable();
        canonical.sort_unstable();
        assert_eq!(random, canonical);
    }

    #[test]
    fn box_order_source_cycles() {
        let wc = WorstCase::new(2, 2, 1, 1).unwrap();
        let boxes = collect(BoxOrderPerturbedSource::new(wc, LastPlacement), 6);
        assert_eq!(&boxes[0..3], &boxes[3..6]);
    }

    #[test]
    fn box_order_runs_concatenate_to_boxes() {
        for depth in [0u32, 1, 3] {
            let wc = WorstCase::new(3, 2, 1, depth).unwrap();
            let count = (2 * wc.num_boxes()) as usize;
            let boxes = collect(
                BoxOrderPerturbedSource::new(wc, RandomPlacement(rng())),
                count,
            );
            let mut by_run = BoxOrderPerturbedSource::new(wc, RandomPlacement(rng()));
            let mut expanded = Vec::new();
            while expanded.len() < boxes.len() {
                let run = by_run.next_run();
                assert!(run.repeat >= 1);
                for _ in 0..run.repeat.min((boxes.len() - expanded.len()) as u64) {
                    expanded.push(run.size);
                }
            }
            assert_eq!(expanded, boxes, "depth {depth}");
        }
    }

    #[test]
    fn box_order_leaf_runs_split_at_placement() {
        // a = 4, placement after child 2: leaves come as runs of 2 and 2
        // around the node's own box.
        struct SecondPlacement;
        impl PlacementChooser for SecondPlacement {
            fn choose(&mut self, _level: u32, _a: u64) -> u64 {
                2
            }
        }
        let wc = WorstCase::new(4, 2, 1, 1).unwrap();
        let mut s = BoxOrderPerturbedSource::new(wc, SecondPlacement);
        assert_eq!(s.next_run(), BoxRun { size: 1, repeat: 2 });
        assert_eq!(s.next_run(), BoxRun { size: 2, repeat: 1 });
        assert_eq!(s.next_run(), BoxRun { size: 1, repeat: 2 });
    }

    #[test]
    fn perturbed_profile_total_potential_unchanged_in_expectation_shape() {
        // Multiset preservation implies identical potential sums.
        let wc = WorstCase::new(3, 2, 1, 4).unwrap();
        let rho = Potential::new(3, 2);
        let count = wc.num_boxes() as usize;
        let boxes = collect(
            BoxOrderPerturbedSource::new(wc, RandomPlacement(rng())),
            count,
        );
        let perturbed = SquareProfile::new(boxes).unwrap();
        let canonical = wc.materialize();
        assert!((perturbed.total_potential(&rho) - canonical.total_potential(&rho)).abs() < 1e-9);
    }
}
