//! # cadapt-profiles — the memory profiles of the paper
//!
//! Generators for every profile family the paper analyses:
//!
//! * [`worst_case`] — the recursive adversarial profile M_{a,b}(n) of §3/§4
//!   (Figure 1): a copies of M_{a,b}(n/b) followed by a box of size n. On it,
//!   an (a, b, 1)-regular algorithm pays the full Θ(log_b n) adaptivity gap.
//! * [`dist`] — box-size distributions Σ for the smoothing theorem
//!   (Theorem 1/3): i.i.d. draws from *any* distribution make the algorithm
//!   cache-adaptive in expectation. Includes the empirical multiset of an
//!   arbitrary profile (the "random reshuffling" headline) and a
//!   without-replacement permutation variant.
//! * [`perturb`] — the three weak smoothings of §4 that provably do *not*
//!   close the gap: multiplicative box-size noise, random cyclic start
//!   shifts, and box-order (big-box placement) perturbations.
//! * [`cache`] — the process-wide memoized profile store: materialised
//!   worst-case/sawtooth prefixes computed once per process, shared across
//!   trials and worker threads.
//! * [`contention`] — realistic fluctuating-cache generators from the
//!   paper's introduction: the winner-take-all sawtooth and a multi-tenant
//!   fair-share model. These produce arbitrary profiles m(t); compose with
//!   [`MemoryProfile::inner_squares`](cadapt_core::MemoryProfile) to obtain
//!   square profiles.
//! * [`scenario`] — multi-tenant contention as *streaming cursor
//!   pipelines*: the N-ary [`scenario::RoundRobin`]
//!   time-slicer and fair-share composition over the `cadapt-core` cursor
//!   combinators, with O(1) resident state at any profile length.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod contention;
pub mod dist;
pub mod perturb;
pub mod scenario;
pub mod worst_case;

pub use cache::{sawtooth_squares, worst_case_squares};
pub use dist::{BoxDist, DistSource};
pub use scenario::{contended_round_robin, fair_share, RoundRobin};
pub use worst_case::{MatchedWorstCase, WorstCase};
