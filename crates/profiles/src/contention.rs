//! Realistic fluctuating-cache generators (experiment E10).
//!
//! The paper's introduction motivates cache-adaptivity with two real-world
//! patterns:
//!
//! * the **winner-take-all sawtooth** — a process's cache allocation slowly
//!   grows to the maximum (the cache grows by at most one block per I/O in
//!   the CA model) and then crashes down when the cache is flushed or a
//!   competitor wins ([`sawtooth`]);
//! * **multi-tenant fair sharing** — k processes share a fixed cache; our
//!   process's share is total/k, and k changes as tenants arrive and depart
//!   ([`multi_tenant`]).
//!
//! Both return arbitrary [`MemoryProfile`]s; square-approximate them with
//! [`MemoryProfile::inner_squares`](cadapt_core::MemoryProfile::inner_squares)
//! before feeding the execution drivers. The E10 experiment shows these
//! profiles behave like the paper's *smoothed* profiles (constant
//! adaptivity ratio), not like the adversarial construction.

use cadapt_core::memory_profile::Segment;
use cadapt_core::{Blocks, Io, MemoryProfile};
use rand::Rng;

/// Winner-take-all sawtooth: starting at `m_min`, the cache grows by one
/// block per I/O up to `m_max`, dwells there for `plateau` I/Os, then
/// crashes back to `m_min`; the pattern repeats until at least `duration`
/// I/Os are covered.
///
/// # Panics
///
/// Panics unless 1 ≤ m_min ≤ m_max and duration ≥ 1.
#[must_use]
pub fn sawtooth(m_min: Blocks, m_max: Blocks, plateau: Io, duration: Io) -> MemoryProfile {
    assert!(m_min >= 1 && m_min <= m_max, "need 1 <= m_min <= m_max");
    assert!(duration >= 1, "duration must be positive");
    let mut segments = Vec::new();
    let mut elapsed: Io = 0;
    while elapsed < duration {
        // Ramp: one I/O per size step (the CA model's +1 growth rule).
        for size in m_min..=m_max {
            segments.push(Segment { size, len: 1 });
        }
        elapsed += Io::from(m_max - m_min + 1);
        if plateau > 0 {
            segments.push(Segment {
                size: m_max,
                len: plateau,
            });
            elapsed += plateau;
        }
        // The crash is instantaneous (shrinking is unrestricted).
    }
    // cadapt-lint: allow(panic-reach) -- invariant: the generator emits only positive sizes
    MemoryProfile::from_segments(segments).expect("sawtooth sizes are positive")
}

/// Multi-tenant fair sharing: `total` blocks of cache are split evenly among
/// the active tenants (us plus the others). Tenant count evolves by a lazy
/// random walk: every `epoch` I/Os, with probability `churn` a tenant
/// arrives or departs (equally likely, clamped to [1, max_tenants]).
/// Our share is ⌊total / tenants⌋, at least 1.
///
/// # Panics
///
/// Panics unless total ≥ 1, max_tenants ≥ 1, epoch ≥ 1, duration ≥ 1 and
/// churn ∈ [0, 1].
pub fn multi_tenant<R: Rng>(
    total: Blocks,
    max_tenants: u64,
    epoch: Io,
    churn: f64,
    duration: Io,
    rng: &mut R,
) -> MemoryProfile {
    assert!(
        total >= 1 && max_tenants >= 1,
        "need total >= 1 and max_tenants >= 1"
    );
    assert!(
        epoch >= 1 && duration >= 1,
        "need positive epoch and duration"
    );
    assert!((0.0..=1.0).contains(&churn), "churn must be a probability");
    let mut segments = Vec::new();
    let mut tenants: u64 = 1 + rng.gen_range(0..max_tenants);
    let mut elapsed: Io = 0;
    while elapsed < duration {
        let share = (total / tenants).max(1);
        let len = epoch.min(duration - elapsed);
        segments.push(Segment { size: share, len });
        elapsed += len;
        if rng.gen_bool(churn) {
            if rng.gen_bool(0.5) {
                tenants = (tenants + 1).min(max_tenants);
            } else {
                tenants = tenants.saturating_sub(1).max(1);
            }
        }
    }
    // cadapt-lint: allow(panic-reach) -- invariant: the generator emits only positive sizes
    MemoryProfile::from_segments(segments).expect("shares are positive")
}

/// A lazy random walk obeying the CA model's growth rule: each I/O the
/// cache grows by one block with probability `up_prob`; otherwise, with
/// probability `crash_prob`, it drops to a uniformly random level in
/// [m_min, current]; else it holds. Produces the "breathing" cache shapes
/// between the sawtooth's extremes and fair sharing's steps.
///
/// # Panics
///
/// Panics unless 1 ≤ m_min ≤ m_max, duration ≥ 1, and the probabilities
/// are in [0, 1].
pub fn random_walk<R: Rng>(
    m_min: Blocks,
    m_max: Blocks,
    up_prob: f64,
    crash_prob: f64,
    duration: Io,
    rng: &mut R,
) -> MemoryProfile {
    assert!(m_min >= 1 && m_min <= m_max, "need 1 <= m_min <= m_max");
    assert!(duration >= 1, "duration must be positive");
    assert!(
        (0.0..=1.0).contains(&up_prob),
        "up_prob must be a probability"
    );
    assert!(
        (0.0..=1.0).contains(&crash_prob),
        "crash_prob must be a probability"
    );
    let mut segments = Vec::new();
    let mut size = m_min;
    let mut run: Io = 0;
    let mut elapsed: Io = 0;
    while elapsed < duration {
        elapsed += 1;
        run += 1;
        let next = if rng.gen_bool(up_prob) {
            (size + 1).min(m_max)
        } else if rng.gen_bool(crash_prob) {
            rng.gen_range(m_min..=size)
        } else {
            size
        };
        if next != size {
            segments.push(Segment { size, len: run });
            size = next;
            run = 0;
        }
    }
    if run > 0 {
        segments.push(Segment { size, len: run });
    }
    // cadapt-lint: allow(panic-reach) -- invariant: the generator emits only positive sizes
    MemoryProfile::from_segments(segments).expect("sizes are positive")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sawtooth_shape() {
        let p = sawtooth(1, 4, 2, 10);
        // One period: sizes 1,2,3,4 (one I/O each) then 4 for 2 I/Os.
        assert_eq!(p.value_at(0), Some(1));
        assert_eq!(p.value_at(3), Some(4));
        assert_eq!(p.value_at(5), Some(4));
        // Crash: next period starts at 1 again.
        assert_eq!(p.value_at(6), Some(1));
        assert!(p.total_time() >= 10);
    }

    #[test]
    fn sawtooth_respects_growth_rule() {
        // Except at crashes (which are legal shrinks), growth is +1 per I/O:
        // the whole profile must validate.
        let p = sawtooth(2, 16, 5, 200);
        assert!(p.validate_growth().is_ok());
    }

    #[test]
    fn sawtooth_squares_cover_duration() {
        let p = sawtooth(1, 8, 4, 100);
        let sq = p.inner_squares();
        assert_eq!(sq.total_time(), p.total_time());
        assert!(sq.max_box().unwrap() <= 8);
    }

    #[test]
    fn multi_tenant_shares() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = multi_tenant(64, 8, 16, 0.5, 1000, &mut rng);
        assert_eq!(p.total_time(), 1000);
        // Every share divides the total fairly and is at least 1.
        for seg in p.segments() {
            assert!(seg.size >= 64 / 8 && seg.size <= 64, "share {}", seg.size);
        }
    }

    #[test]
    fn multi_tenant_share_one_floor() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        // More tenants than blocks: share clamps to 1.
        let p = multi_tenant(2, 10, 8, 1.0, 200, &mut rng);
        assert!(p.segments().iter().all(|s| s.size >= 1));
    }

    #[test]
    fn multi_tenant_varies() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let p = multi_tenant(64, 8, 4, 0.9, 2000, &mut rng);
        // With heavy churn the share should take several distinct values.
        let distinct: std::collections::HashSet<_> = p.segments().iter().map(|s| s.size).collect();
        assert!(
            distinct.len() >= 3,
            "only {} distinct shares",
            distinct.len()
        );
    }

    #[test]
    fn deterministic_with_seed() {
        let a = multi_tenant(32, 4, 8, 0.3, 500, &mut ChaCha8Rng::seed_from_u64(7));
        let b = multi_tenant(32, 4, 8, 0.3, 500, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn random_walk_respects_bounds_and_growth_rule() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let p = random_walk(2, 32, 0.4, 0.05, 5000, &mut rng);
        assert_eq!(p.total_time(), 5000);
        assert!(p.segments().iter().all(|s| (2..=32).contains(&s.size)));
        // +1 growth per I/O is the only way up: the profile must validate.
        assert!(p.validate_growth().is_ok());
    }

    #[test]
    fn random_walk_visits_multiple_levels() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let p = random_walk(1, 64, 0.5, 0.02, 10_000, &mut rng);
        let distinct: std::collections::HashSet<_> = p.segments().iter().map(|s| s.size).collect();
        assert!(distinct.len() > 10, "only {} levels", distinct.len());
    }

    #[test]
    fn random_walk_squares_cover_duration() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let p = random_walk(1, 16, 0.3, 0.1, 2000, &mut rng);
        let sq = p.inner_squares();
        assert_eq!(sq.total_time(), p.total_time());
    }
}
