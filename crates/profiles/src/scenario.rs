//! Multi-tenant contention scenarios as streaming cursor pipelines.
//!
//! The cursor combinators in `cadapt-core` (`interleave`, `throttle`,
//! `zip_with`, `take_boxes`) are binary; real contention scenarios have N
//! tenants. This module supplies the N-ary generalisation —
//! [`RoundRobin`], a fair time-slicer over boxed cursors — and the
//! fair-share composition [`contended_round_robin`] used by experiment
//! E16: every tenant throttled to its fair share of the cache, then
//! time-sliced in fixed chunks.
//!
//! Everything here obeys the `RunCursor` laws: O(1) state per tenant (at
//! most one pending run), run decomposition equal to the per-box stream,
//! cancellation observed between runs when wrapped in
//! [`cancellable`](cadapt_core::RunCursorExt::cancellable). Nothing is
//! materialised: a scenario over a billion-box adversary holds a few
//! machine words per tenant.

use cadapt_core::cursor::{Cancelled, RunCursor, RunCursorExt};
use cadapt_core::{Blocks, BoxRun};

/// Fair N-way time-slicing: tenants take turns emitting `chunk` boxes
/// each, in index order, skipping exhausted tenants; the scenario ends
/// when every tenant is exhausted. The two-tenant case agrees with
/// [`interleave`](cadapt_core::RunCursorExt::interleave) box for box.
pub struct RoundRobin<'a> {
    tenants: Vec<Box<dyn RunCursor + 'a>>,
    pending: Vec<Option<BoxRun>>,
    done: Vec<bool>,
    chunk: u64,
    current: usize,
    left_in_slice: u64,
}

impl std::fmt::Debug for RoundRobin<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundRobin")
            .field("tenants", &self.tenants.len())
            .field("chunk", &self.chunk)
            .field("current", &self.current)
            .field("left_in_slice", &self.left_in_slice)
            .finish()
    }
}

impl<'a> RoundRobin<'a> {
    /// Time-slice `tenants` in fixed `chunk`-box turns.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty or `chunk == 0`.
    #[must_use]
    pub fn new(tenants: Vec<Box<dyn RunCursor + 'a>>, chunk: u64) -> RoundRobin<'a> {
        assert!(!tenants.is_empty(), "a scenario needs at least one tenant");
        assert!(chunk > 0, "slice chunk must be positive");
        let n = tenants.len();
        RoundRobin {
            tenants,
            // cadapt-lint: allow(cursor-materialize) -- one pending slot per tenant, bounded by the tenant count, never by pipeline length
            pending: (0..n).map(|_| None).collect(),
            done: vec![false; n],
            chunk,
            current: 0,
            left_in_slice: chunk,
        }
    }

    /// Number of tenants (exhausted ones included).
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Refill the current tenant's pending run; `None` marks it exhausted.
    fn fill_current(&mut self) -> Result<Option<BoxRun>, Cancelled> {
        let i = self.current;
        if self.pending[i].is_none() && !self.done[i] {
            self.pending[i] = self.tenants[i].next_run()?;
            self.done[i] = self.pending[i].is_none();
        }
        Ok(self.pending[i])
    }

    /// Advance to the next tenant's slice.
    fn rotate(&mut self) {
        self.current = (self.current + 1) % self.tenants.len();
        self.left_in_slice = self.chunk;
    }
}

impl RunCursor for RoundRobin<'_> {
    fn next_run(&mut self) -> Result<Option<BoxRun>, Cancelled> {
        loop {
            match self.fill_current()? {
                Some(run) => {
                    let emit = run.repeat.min(self.left_in_slice);
                    self.pending[self.current] = if run.repeat == u64::MAX {
                        // Infinite tails stay infinite under finite slices.
                        Some(run)
                    } else {
                        let rest = run.repeat - emit;
                        (rest > 0).then_some(BoxRun {
                            size: run.size,
                            repeat: rest,
                        })
                    };
                    self.left_in_slice -= emit;
                    if self.left_in_slice == 0 {
                        self.rotate();
                    }
                    return Ok(Some(BoxRun {
                        size: run.size,
                        repeat: emit,
                    }));
                }
                None => {
                    if self.done.iter().all(|&d| d) {
                        return Ok(None);
                    }
                    self.rotate();
                }
            }
        }
    }

    fn size_hint(&self) -> (u64, Option<u64>) {
        let mut lo: u64 = 0;
        let mut hi: Option<u64> = Some(0);
        for (i, tenant) in self.tenants.iter().enumerate() {
            let pending = self.pending[i].map_or(0, |r| r.repeat);
            let (t_lo, t_hi) = if self.done[i] {
                (0, Some(0))
            } else {
                tenant.size_hint()
            };
            lo = lo.saturating_add(t_lo).saturating_add(pending);
            hi = match (hi, t_hi) {
                (Some(h), Some(t)) => Some(h.saturating_add(t).saturating_add(pending)),
                _ => None,
            };
        }
        (lo, hi)
    }
}

/// The fair cache share of one tenant among `tenants` sharing `total`
/// blocks: ⌊total / tenants⌋, floored at 1 (boxes must stay positive) —
/// the same convention as [`contention::multi_tenant`](crate::contention).
#[must_use]
pub fn fair_share(total: Blocks, tenants: u64) -> Blocks {
    assert!(tenants >= 1, "need at least one tenant");
    (total / tenants).max(1)
}

/// The full contention scenario: each tenant's boxes are capped at its
/// [`fair_share`] of `total` blocks, then the tenants are time-sliced in
/// `chunk`-box turns. This is the streaming analogue of
/// [`contention::multi_tenant`](crate::contention) with a fixed tenant
/// count — but over *arbitrary* tenant pipelines and without ever
/// materialising a profile.
///
/// # Panics
///
/// Panics if `tenants` is empty or `chunk == 0`.
#[must_use]
pub fn contended_round_robin<'a>(
    tenants: Vec<Box<dyn RunCursor + 'a>>,
    chunk: u64,
    total: Blocks,
) -> RoundRobin<'a> {
    let share = fair_share(total, tenants.len() as u64);
    let capped = tenants
        .into_iter()
        .map(|t| Box::new(t.throttle(share)) as Box<dyn RunCursor + 'a>)
        .collect(); // cadapt-lint: allow(cursor-materialize) -- re-boxes the N tenant cursors once at setup; N is the tenant count, not pipeline length
    RoundRobin::new(capped, chunk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadapt_core::profile::ConstantSource;
    use cadapt_core::{BoxSource, SquareProfile};

    fn expand<C: RunCursor>(cursor: &mut C, max: usize) -> Vec<Blocks> {
        let mut out = Vec::new();
        while out.len() < max {
            match cursor.next_run().expect("not cancelled") {
                Some(run) => {
                    assert!(run.repeat >= 1 && run.size >= 1);
                    let take = (max - out.len()).min(usize::try_from(run.repeat).unwrap_or(max));
                    out.extend(std::iter::repeat_n(run.size, take));
                }
                None => break,
            }
        }
        out
    }

    fn tenant(size: Blocks, boxes: u64) -> Box<dyn RunCursor> {
        Box::new(ConstantSource::new(size).into_cursor().take_boxes(boxes))
    }

    #[test]
    fn three_tenants_rotate_in_index_order() {
        let mut rr = RoundRobin::new(vec![tenant(1, 4), tenant(2, 4), tenant(3, 4)], 2);
        assert_eq!(
            expand(&mut rr, 100),
            vec![1, 1, 2, 2, 3, 3, 1, 1, 2, 2, 3, 3]
        );
        assert_eq!(rr.next_run(), Ok(None));
    }

    #[test]
    fn exhausted_tenants_are_skipped() {
        let mut rr = RoundRobin::new(vec![tenant(1, 1), tenant(2, 5)], 2);
        assert_eq!(expand(&mut rr, 100), vec![1, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn two_tenant_round_robin_matches_interleave() {
        let p = SquareProfile::new(vec![4, 4, 7, 1, 1, 1]).unwrap();
        let rr_a = Box::new(p.cycle().into_cursor().take_boxes(40)) as Box<dyn RunCursor + '_>;
        let rr_b = tenant(9, 13);
        let mut rr = RoundRobin::new(vec![rr_a, rr_b], 3);
        let il_a = p.cycle().into_cursor().take_boxes(40);
        let il_b = ConstantSource::new(9).into_cursor().take_boxes(13);
        let mut il = il_a.interleave(il_b, 3);
        assert_eq!(expand(&mut rr, 200), expand(&mut il, 200));
    }

    #[test]
    fn size_hint_sums_tenants_exactly() {
        let rr = RoundRobin::new(vec![tenant(1, 10), tenant(2, 5)], 4);
        assert_eq!(rr.size_hint(), (15, Some(15)));
    }

    #[test]
    fn infinite_tenant_keeps_the_scenario_unbounded() {
        let inf = Box::new(ConstantSource::new(8).into_cursor()) as Box<dyn RunCursor>;
        let rr = RoundRobin::new(vec![inf, tenant(2, 5)], 4);
        assert_eq!(rr.size_hint().1, None);
        let mut rr = rr;
        // The finite tenant drains; the infinite one keeps slicing.
        let boxes = expand(&mut rr, 20);
        assert_eq!(boxes.len(), 20);
        assert_eq!(&boxes[..4], &[8, 8, 8, 8]);
    }

    #[test]
    fn fair_share_floors_at_one() {
        assert_eq!(fair_share(64, 4), 16);
        assert_eq!(fair_share(3, 8), 1);
    }

    #[test]
    fn contended_round_robin_caps_at_the_share() {
        let big =
            Box::new(ConstantSource::new(100).into_cursor().take_boxes(6)) as Box<dyn RunCursor>;
        let small = tenant(2, 6);
        let mut rr = contended_round_robin(vec![big, small], 3, 32);
        // share = 16: the big tenant is throttled from 100 to 16.
        assert_eq!(
            expand(&mut rr, 100),
            vec![16, 16, 16, 2, 2, 2, 16, 16, 16, 2, 2, 2]
        );
    }

    #[test]
    fn decomposition_matches_per_box_reference() {
        // Reference semantics computed by hand-expanding each tenant's
        // stream and slicing in chunk turns.
        let p = SquareProfile::new(vec![3, 5, 5, 2]).unwrap();
        let chunk = 3u64;
        let a_boxes: Vec<Blocks> = (0..17).map(|i| p.boxes()[i % 4]).collect();
        let b_boxes: Vec<Blocks> = vec![7; 8];
        let mut reference = Vec::new();
        let (mut ai, mut bi) = (0usize, 0usize);
        while ai < a_boxes.len() || bi < b_boxes.len() {
            for _ in 0..chunk {
                if ai < a_boxes.len() {
                    reference.push(a_boxes[ai]);
                    ai += 1;
                }
            }
            for _ in 0..chunk {
                if bi < b_boxes.len() {
                    reference.push(b_boxes[bi]);
                    bi += 1;
                }
            }
        }
        let ta = Box::new(p.cycle().into_cursor().take_boxes(17)) as Box<dyn RunCursor + '_>;
        let tb = tenant(7, 8);
        let mut rr = RoundRobin::new(vec![ta, tb], chunk);
        assert_eq!(expand(&mut rr, 200), reference);
    }
}
