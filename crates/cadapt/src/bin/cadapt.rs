//! `cadapt` — command-line front end to the cache-adaptive toolkit.
//!
//! ```text
//! cadapt gap        --a 8 --b 4 --k 7 [--model capacity]
//! cadapt smooth     --a 8 --b 4 --k 7 --dist shuffled [--trials 64] [--seed 1]
//! cadapt recurrence --a 8 --b 4 --levels 8 --dist powb
//! cadapt replay     --algo mm-scan --side 32 --block 4 --box 128
//! ```
//!
//! Argument parsing is deliberately dependency-free (`--key value` pairs);
//! every command prints a short table to stdout.

use cadapt::analysis::recurrence::{recurrence_bounds, DiscreteSigma};
use cadapt::analysis::table::fnum;
use cadapt::paging::{replay_fixed, replay_square_profile};
use cadapt::prelude::*;
use cadapt::trace::gep::floyd_warshall;
use cadapt::trace::mm::{mm_inplace, mm_scan};
use cadapt::trace::strassen::strassen;
use cadapt::trace::ZMatrix;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, opts)) = parse(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "gap" => cmd_gap(&opts),
        "smooth" => cmd_smooth(&opts),
        "recurrence" => cmd_recurrence(&opts),
        "replay" => cmd_replay(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
cadapt — cache-adaptive analysis toolkit

USAGE:
  cadapt gap        --a A --b B --k K [--c C] [--model simplified|capacity]
                    run an (A,B,C)-regular algorithm on its worst-case
                    profile at sizes base·B^2 .. base·B^K
  cadapt smooth     --a A --b B --k K --dist DIST [--trials T] [--seed S]
                    Monte-Carlo expected ratio under i.i.d. boxes
                    (DIST: shuffled | powb | powerlaw | uniform | point)
  cadapt recurrence --a A --b B --levels L --dist DIST
                    Lemma-3 bounds on f(n) and the predicted ratio
  cadapt replay     --algo ALGO --side S --block W --box X
                    trace a real algorithm and replay it under constant
                    boxes (ALGO: mm-scan | mm-inplace | strassen | gep)";

/// Parse `command --key value …` into (command, map).
fn parse(args: &[String]) -> Option<(String, HashMap<String, String>)> {
    let mut iter = args.iter();
    let command = iter.next()?.clone();
    let mut opts = HashMap::new();
    while let Some(key) = iter.next() {
        let key = key.strip_prefix("--")?;
        let value = iter.next()?;
        opts.insert(key.to_string(), value.clone());
    }
    Some((command, opts))
}

fn get<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: Option<T>,
) -> Result<T, String> {
    match opts.get(key) {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value for --{key}: {raw}")),
        None => default.ok_or_else(|| format!("missing required option --{key}")),
    }
}

fn params_from(opts: &HashMap<String, String>) -> Result<AbcParams, String> {
    let a: u64 = get(opts, "a", None)?;
    let b: u64 = get(opts, "b", None)?;
    let c: f64 = get(opts, "c", Some(1.0))?;
    AbcParams::new(a, b, c, 1).map_err(|e| e.to_string())
}

fn cmd_gap(opts: &HashMap<String, String>) -> Result<(), String> {
    let params = params_from(opts)?;
    let k: u32 = get(opts, "k", Some(7))?;
    let model = match opts.get("model").map(String::as_str) {
        None | Some("capacity") => ExecModel::capacity(),
        Some("simplified") => ExecModel::Simplified,
        Some(other) => return Err(format!("unknown model `{other}`")),
    };
    println!("{params} on its worst-case profile ({}):", model.label());
    println!(
        "{:>10} {:>9} {:>12} {:>8}",
        "n", "log_b n", "boxes", "ratio"
    );
    for level in 2..=k {
        let n = params.canonical_size(level);
        let worst = WorstCase::for_problem(&params, n).map_err(|e| e.to_string())?;
        let mut source = worst.source();
        let config = RunConfig {
            model,
            ..RunConfig::default()
        };
        let report = run_on_profile(params, n, &mut source, &config).map_err(|e| e.to_string())?;
        println!(
            "{n:>10} {level:>9} {:>12} {:>8}",
            report.boxes_used,
            fnum(report.ratio())
        );
    }
    Ok(())
}

fn dist_from(
    opts: &HashMap<String, String>,
    params: &AbcParams,
    n_max: u64,
) -> Result<Box<dyn BoxDist>, String> {
    let k_max = params.depth_of(n_max).unwrap_or(8);
    Ok(match opts.get("dist").map(String::as_str) {
        None | Some("shuffled") => {
            let worst = WorstCase::for_problem(params, n_max).map_err(|e| e.to_string())?;
            Box::new(EmpiricalMultiset::from_counts(
                &worst.box_multiset(),
                "shuffled",
            ))
        }
        Some("powb") => Box::new(PowerOfB::new(params.b(), 0, k_max)),
        Some("powerlaw") => Box::new(PowerLawBoxes::new(params.b(), 0, k_max, 1.0)),
        Some("uniform") => Box::new(UniformBoxes::new(1, n_max)),
        Some("point") => Box::new(PointMass {
            size: (n_max / params.b()).max(1),
        }),
        Some(other) => return Err(format!("unknown distribution `{other}`")),
    })
}

fn cmd_smooth(opts: &HashMap<String, String>) -> Result<(), String> {
    let params = params_from(opts)?;
    let k: u32 = get(opts, "k", Some(7))?;
    let trials: u64 = get(opts, "trials", Some(64))?;
    let seed: u64 = get(opts, "seed", Some(0xCADA))?;
    let n_max = params.canonical_size(k);
    let dist = dist_from(opts, &params, n_max)?;
    println!(
        "{params}, i.i.d. boxes from {} ({trials} trials):",
        dist.label()
    );
    println!(
        "{:>10} {:>9} {:>14} {:>12}",
        "n", "log_b n", "E[ratio]", "ci95"
    );
    for level in 2..=k {
        let n = params.canonical_size(level);
        let config = McConfig {
            trials,
            seed,
            ..McConfig::default()
        };
        let summary = monte_carlo_ratio(params, n, &config, |rng| {
            cadapt::profiles::dist::DynDistSource::new(dist.as_ref(), rng)
        })
        .map_err(|e| e.to_string())?;
        println!(
            "{n:>10} {level:>9} {:>14} {:>12}",
            fnum(summary.ratio.mean),
            fnum(summary.ratio.ci95())
        );
    }
    Ok(())
}

fn cmd_recurrence(opts: &HashMap<String, String>) -> Result<(), String> {
    let params = params_from(opts)?;
    let levels: u32 = get(opts, "levels", Some(8))?;
    let n_max = params.canonical_size(levels);
    let dist = dist_from(opts, &params, n_max)?;
    let sigma = DiscreteSigma::from_dist(dist.as_ref()).map_err(|e| e.to_string())?;
    println!("Lemma-3 bounds for {params} under {}:", dist.label());
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "n", "f_lo", "f_hi", "ratio_lo", "ratio_hi"
    );
    for rb in recurrence_bounds(params.a(), params.b(), &sigma, levels) {
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>12}",
            rb.n,
            fnum(rb.f_lo),
            fnum(rb.f_hi),
            fnum(rb.ratio_lo),
            fnum(rb.ratio_hi)
        );
    }
    Ok(())
}

fn cmd_replay(opts: &HashMap<String, String>) -> Result<(), String> {
    let side: usize = get(opts, "side", Some(32))?;
    let block: u64 = get(opts, "block", Some(4))?;
    let box_size: u64 = get(opts, "box", Some(64))?;
    if !side.is_power_of_two() {
        return Err("--side must be a power of two".into());
    }
    let rows_a: Vec<f64> = (0..side * side)
        .map(|i| ((i * 7) % 13) as f64 - 6.0)
        .collect();
    let rows_b: Vec<f64> = (0..side * side)
        .map(|i| ((i * 5) % 11) as f64 - 5.0)
        .collect();
    let a = ZMatrix::from_row_major(side, &rows_a);
    let b = ZMatrix::from_row_major(side, &rows_b);
    let algo = opts.get("algo").map_or("mm-scan", String::as_str);
    let (trace, rho) = match algo {
        "mm-scan" => (mm_scan(&a, &b, block).1, Potential::new(8, 4)),
        "mm-inplace" => (mm_inplace(&a, &b, block).1, Potential::new(8, 4)),
        "strassen" => (strassen(&a, &b, block).1, Potential::new(7, 4)),
        "gep" => (floyd_warshall(&a, block).1, Potential::new(8, 4)),
        other => return Err(format!("unknown algorithm `{other}`")),
    };
    println!(
        "{algo} side {side}, block {block} words: {} accesses, {} distinct blocks",
        trace.accesses(),
        trace.distinct_blocks()
    );
    let fixed = replay_fixed(&trace, box_size);
    println!("fixed LRU cache of {box_size}: {} I/Os", fixed.io);
    let profile = SquareProfile::new(vec![box_size]).map_err(|e| e.to_string())?;
    let mut source = profile.cycle();
    let report = replay_square_profile(&trace, &mut source, rho);
    println!(
        "square boxes of {box_size}: {} I/Os over {} boxes (ratio {})",
        report.total_io,
        report.boxes_used,
        fnum(report.ratio())
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parse_accepts_key_value_pairs() {
        let (cmd, opts) = parse(&args(&["gap", "--a", "8", "--b", "4"])).unwrap();
        assert_eq!(cmd, "gap");
        assert_eq!(opts["a"], "8");
        assert_eq!(opts["b"], "4");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse(&args(&[])).is_none());
        assert!(parse(&args(&["gap", "a", "8"])).is_none()); // missing --
        assert!(parse(&args(&["gap", "--a"])).is_none()); // missing value
    }

    #[test]
    fn get_defaults_and_errors() {
        let (_, opts) = parse(&args(&["gap", "--a", "8"])).unwrap();
        assert_eq!(get::<u64>(&opts, "a", None).unwrap(), 8);
        assert_eq!(get::<u64>(&opts, "k", Some(7)).unwrap(), 7);
        assert!(get::<u64>(&opts, "b", None).is_err());
        let (_, bad) = parse(&args(&["gap", "--a", "eight"])).unwrap();
        assert!(get::<u64>(&bad, "a", None).is_err());
    }

    #[test]
    fn commands_run_end_to_end() {
        let (_, opts) = parse(&args(&["gap", "--a", "8", "--b", "4", "--k", "3"])).unwrap();
        cmd_gap(&opts).unwrap();
        let (_, opts) = parse(&args(&[
            "smooth", "--a", "8", "--b", "4", "--k", "3", "--trials", "4",
        ]))
        .unwrap();
        cmd_smooth(&opts).unwrap();
        let (_, opts) = parse(&args(&[
            "recurrence",
            "--a",
            "8",
            "--b",
            "4",
            "--levels",
            "4",
            "--dist",
            "powb",
        ]))
        .unwrap();
        cmd_recurrence(&opts).unwrap();
        let (_, opts) = parse(&args(&[
            "replay",
            "--algo",
            "mm-inplace",
            "--side",
            "8",
            "--box",
            "16",
        ]))
        .unwrap();
        cmd_replay(&opts).unwrap();
    }

    #[test]
    fn unknown_dist_is_an_error() {
        let (_, opts) = parse(&args(&[
            "smooth", "--a", "8", "--b", "4", "--dist", "bogus",
        ]))
        .unwrap();
        assert!(cmd_smooth(&opts).is_err());
    }
}
