//! # cadapt — a cache-adaptive analysis toolkit
//!
//! An executable reproduction of *"Closing the Gap Between Cache-oblivious
//! and Cache-adaptive Analysis"* (Bender, Chowdhury, Das, Johnson,
//! Kuszmaul, Lincoln, Liu, Lynch, Xu — SPAA 2020): simulators, profile
//! generators, and analysis machinery for studying how (a, b, c)-regular
//! algorithms behave when the cache changes size under them.
//!
//! This crate re-exports the whole workspace behind one façade:
//!
//! * [`core`] — the cache-adaptive model: square profiles, boxes,
//!   potential, progress, adaptivity reports.
//! * [`recursion`] — (a, b, c)-regular algorithms as executable objects:
//!   the lazy cursor, box semantics, closed forms, the No-Catch-up Lemma.
//! * [`profiles`] — the adversarial worst-case construction, i.i.d.
//!   smoothing distributions, the §4 perturbations, contention generators.
//! * [`trace`] — real algorithms (matrix multiplication three ways, edit
//!   distance) instrumented to emit block-level memory traces.
//! * [`paging`] — a DAM/LRU cache simulator replaying traces under fixed
//!   caches, square profiles, and arbitrary memory profiles.
//! * [`analysis`] — the Lemma 3 recurrence engine, parallel Monte-Carlo
//!   estimation, growth-law fitting, and experiment tables.
//! * [`sched`] — a multi-programmed cache scheduler built on the cursor:
//!   the system the paper's introduction motivates, as a simulator.
//! * [`mod@bench`] — the experiment modules and the registry-driven engine
//!   behind the `cadapt-bench` CLI (instrumented runs, schema-versioned
//!   run records, golden-record regression checks).
//!
//! ## Quickstart
//!
//! ```
//! use cadapt::prelude::*;
//!
//! // MM-Scan, the canonical non-adaptive (8, 4, 1)-regular algorithm…
//! let params = AbcParams::mm_scan();
//! let n = 1024;
//!
//! // …pays the logarithmic gap on its recursive worst-case profile…
//! let worst = WorstCase::for_problem(&params, n).unwrap();
//! let report = run_on_profile(
//!     params, n, &mut worst.source(), &RunConfig::default(),
//! ).unwrap();
//! assert_eq!(report.ratio(), 6.0); // log_4 n + 1
//!
//! // …but becomes cache-adaptive when the same boxes arrive i.i.d.
//! let dist = EmpiricalMultiset::from_counts(&worst.box_multiset(), "shuffled");
//! let summary = monte_carlo_ratio(params, n, &McConfig::default(), |rng| {
//!     DistSource::new(dist.clone(), rng)
//! }).unwrap();
//! assert!(summary.ratio.mean < 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cadapt_analysis as analysis;
pub use cadapt_bench as bench;
pub use cadapt_core as core;
pub use cadapt_paging as paging;
pub use cadapt_profiles as profiles;
pub use cadapt_recursion as recursion;
pub use cadapt_sched as sched;
pub use cadapt_trace as trace;

/// The names most programs need, in one import.
pub mod prelude {
    pub use cadapt_analysis::{
        classify_growth, monte_carlo_ratio, GrowthClass, McConfig, McSummary, Stats, Table,
    };
    pub use cadapt_core::{
        AdaptivityReport, Blocks, BoxSource, Io, Leaves, MemoryProfile, Potential, SquareProfile,
    };
    pub use cadapt_profiles::dist::{
        BoxDist, DistSource, EmpiricalMultiset, LogUniform, ParetoBoxes, PointMass, PowerLawBoxes,
        PowerOfB, UniformBoxes,
    };
    pub use cadapt_profiles::{MatchedWorstCase, WorstCase};
    pub use cadapt_recursion::{
        run_on_profile, AbcParams, ClosedForms, ExecCursor, ExecModel, RunConfig, ScanLayout,
    };
}

// Exact float equality in tests is deliberate: outputs are required to be
// bit-identical run to run (see the golden records).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_stack() {
        let params = AbcParams::mm_scan();
        let rho = params.potential();
        assert_eq!(rho.eval(16), 64.0);
        let profile = SquareProfile::new(vec![4, 4]).unwrap();
        assert_eq!(profile.total_time(), 8);
    }
}
