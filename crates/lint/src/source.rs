//! A lexed source file plus the derived structure rules share:
//! `#[cfg(test)]` line spans and the [`ItemTree`].

use crate::lexer::{lex, Lexed, TokenKind};
use crate::parse::{self, ItemTree};

/// One workspace file, lexed and annotated.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Token and comment streams.
    pub lexed: Lexed,
    /// Parsed item tree (functions, structs, enums, uses, body facts).
    pub items: ItemTree,
    /// Inclusive line ranges covered by `#[cfg(test)]`-gated items.
    cfg_test_spans: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lex `src`, parse the item tree, and precompute `#[cfg(test)]` spans.
    #[must_use]
    pub fn parse(rel_path: &str, src: &str) -> Self {
        let lexed = lex(src);
        let items = parse::parse(&lexed.tokens);
        let cfg_test_spans = cfg_test_spans(&lexed);
        SourceFile {
            rel_path: rel_path.to_string(),
            lexed,
            items,
            cfg_test_spans,
        }
    }

    /// True when `line` falls inside a `#[cfg(test)]`-gated item.
    #[must_use]
    pub fn in_cfg_test(&self, line: u32) -> bool {
        self.cfg_test_spans
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }
}

/// Find line spans of items gated behind `#[cfg(test)]` (or any `cfg`
/// attribute that mentions `test`, e.g. `#[cfg(any(test, fuzzing))]`).
///
/// Heuristic: on seeing such an attribute, skip any further attributes,
/// then swallow the next braced block (`mod`, `fn`, `impl`, …). Items
/// without a braced body (e.g. a gated `use`) span their own lines only,
/// which is what the attribute line range already covers.
fn cfg_test_spans(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        // Scan the attribute contents up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut is_cfg_test = false;
        let mut saw_cfg = false;
        while j < toks.len() && depth > 0 {
            if toks[j].is_punct("[") {
                depth += 1;
            } else if toks[j].is_punct("]") {
                depth -= 1;
            } else if toks[j].kind == TokenKind::Ident {
                if toks[j].text == "cfg" && j == i + 2 {
                    saw_cfg = true;
                } else if saw_cfg && toks[j].text == "test" {
                    is_cfg_test = true;
                }
            }
            j += 1;
        }
        if !is_cfg_test {
            i = j;
            continue;
        }
        // Skip any further attributes between the cfg and the item.
        while toks.get(j).is_some_and(|t| t.is_punct("#"))
            && toks.get(j + 1).is_some_and(|t| t.is_punct("["))
        {
            let mut d = 0i32;
            j += 1;
            while j < toks.len() {
                if toks[j].is_punct("[") {
                    d += 1;
                } else if toks[j].is_punct("]") {
                    d -= 1;
                    if d == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Swallow the item's braced body, if it has one before the next `;`.
        let mut end_line = toks.get(j.saturating_sub(1)).map_or(attr_line, |t| t.line);
        let mut k = j;
        while k < toks.len() {
            if toks[k].is_punct(";") {
                end_line = toks[k].line;
                break;
            }
            if toks[k].is_punct("{") {
                let mut d = 1i32;
                k += 1;
                while k < toks.len() && d > 0 {
                    if toks[k].is_punct("{") {
                        d += 1;
                    } else if toks[k].is_punct("}") {
                        d -= 1;
                    }
                    k += 1;
                }
                end_line = toks.get(k.saturating_sub(1)).map_or(end_line, |t| t.line);
                break;
            }
            k += 1;
        }
        spans.push((attr_line, end_line));
        i = k.max(j);
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mod_span_is_detected() {
        let src = "fn lib_code() {}\n\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn more_lib() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.in_cfg_test(1));
        assert!(f.in_cfg_test(3));
        assert!(f.in_cfg_test(5));
        assert!(f.in_cfg_test(6));
        assert!(!f.in_cfg_test(7));
    }

    #[test]
    fn cfg_any_test_counts() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nfn gated() { let _ = 1; }\nfn open() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.in_cfg_test(2));
        assert!(!f.in_cfg_test(3));
    }

    #[test]
    fn non_test_cfg_is_ignored() {
        let src = "#[cfg(feature = \"extra\")]\nfn gated() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.in_cfg_test(2));
    }

    #[test]
    fn attribute_then_derive_then_item() {
        let src = "#[cfg(test)]\n#[derive(Debug)]\nstruct S {\n    x: u32,\n}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.in_cfg_test(4));
    }

    #[test]
    fn semicolon_item_span() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn open() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.in_cfg_test(2));
        assert!(!f.in_cfg_test(3));
    }
}
