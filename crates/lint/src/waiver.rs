//! Inline waiver syntax and staleness accounting.
//!
//! A waiver is a line comment of the form
//!
//! ```text
//! // cadapt-lint: allow(rule-a, rule-b) -- why this site is exempt
//! ```
//!
//! * A **trailing** waiver (code before it on the same line) suppresses
//!   matching diagnostics on its own line.
//! * An **own-line** waiver suppresses matching diagnostics on the next
//!   line that carries a code token.
//! * The justification after `--` is mandatory; a waiver without one is a
//!   `malformed-waiver` diagnostic.
//! * A waiver that suppresses nothing is a `stale-waiver` diagnostic, so
//!   waivers cannot outlive the violation they excuse.
//! * Naming a rule the registry does not know is `malformed-waiver`.
//!
//! Waivers must be line comments; the marker inside a block comment or a
//! string literal is ignored (the lexer never surfaces those as comments
//! of this shape or as code).

use crate::lexer::{Comment, Token};

/// Marker that introduces a waiver comment.
pub const MARKER: &str = "cadapt-lint:";

/// A parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule ids listed in `allow(...)`.
    pub rules: Vec<String>,
    /// Line the waiver comment sits on.
    pub line: u32,
    /// Line whose diagnostics this waiver suppresses.
    pub target_line: u32,
    /// Justification text after `--` (empty when missing).
    pub justification: String,
    /// Parse problem, if any (reported as `malformed-waiver`).
    pub malformed: Option<String>,
}

/// Extract waivers from a file's comments. `tokens` is used to resolve an
/// own-line waiver to the next line that actually has code.
#[must_use]
pub fn collect(comments: &[Comment], tokens: &[Token]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in comments {
        if !c.text.starts_with("//") {
            continue; // block comments cannot carry waivers
        }
        let body = c.text.trim_start_matches('/').trim_start();
        let Some(rest) = body.strip_prefix(MARKER) else {
            continue;
        };
        out.push(parse_one(rest.trim_start(), c, tokens));
    }
    out
}

fn parse_one(rest: &str, c: &Comment, tokens: &[Token]) -> Waiver {
    let target_line = if c.own_line {
        tokens
            .iter()
            .map(|t| t.line)
            .find(|&l| l > c.line)
            .unwrap_or(c.line + 1)
    } else {
        c.line
    };
    let mut w = Waiver {
        rules: Vec::new(),
        line: c.line,
        target_line,
        justification: String::new(),
        malformed: None,
    };
    let Some(args) = rest.strip_prefix("allow(") else {
        w.malformed = Some("expected `allow(<rule>[, <rule>…])` after the marker".into());
        return w;
    };
    let Some(close) = args.find(')') else {
        w.malformed = Some("unclosed `allow(` list".into());
        return w;
    };
    w.rules = args[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if w.rules.is_empty() {
        w.malformed = Some("empty `allow()` list".into());
        return w;
    }
    let tail = args.get(close + 1..).unwrap_or("").trim_start();
    match tail.strip_prefix("--") {
        Some(j) if !j.trim().is_empty() => w.justification = j.trim().to_string(),
        _ => {
            w.malformed = Some(
                "missing justification: write `-- <why this site is exempt>` after the rule list"
                    .into(),
            );
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn waivers(src: &str) -> Vec<Waiver> {
        let lexed = lex(src);
        collect(&lexed.comments, &lexed.tokens)
    }

    #[test]
    fn trailing_waiver_targets_its_own_line() {
        let ws = waivers("let x = a as u64; // cadapt-lint: allow(lossy-cast) -- widening\n");
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].target_line, 1);
        assert_eq!(ws[0].rules, ["lossy-cast"]);
        assert!(ws[0].malformed.is_none());
        assert_eq!(ws[0].justification, "widening");
    }

    #[test]
    fn own_line_waiver_targets_next_code_line() {
        let src = "// cadapt-lint: allow(float-eq) -- sentinel zero\n\n// another comment\nlet y = x == 0.0;\n";
        let ws = waivers(src);
        assert_eq!(ws[0].target_line, 4);
    }

    #[test]
    fn missing_justification_is_malformed() {
        let ws = waivers("// cadapt-lint: allow(float-eq)\nlet y = 1;\n");
        assert!(ws[0].malformed.is_some());
    }

    #[test]
    fn multiple_rules_parse() {
        let ws = waivers("// cadapt-lint: allow(float-eq, lossy-cast) -- both\nlet y = 1;\n");
        assert_eq!(ws[0].rules, ["float-eq", "lossy-cast"]);
    }

    #[test]
    fn non_waiver_comments_are_ignored() {
        assert!(waivers("// plain comment\nlet x = 1;\n").is_empty());
    }
}
