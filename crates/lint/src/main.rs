//! `cadapt-lint` CLI: `check`, `list`, `explain`.
//!
//! ```text
//! cadapt-lint check [--root <dir>] [--format text|json|sarif] [--out <file>]
//!                   [--emit <json|sarif>=<file>]...
//! cadapt-lint list
//! cadapt-lint explain <rule>
//! ```
//!
//! `--format` picks what goes to stdout (and `--out`); `--emit` writes
//! additional reports in other formats in the same run, so CI gets the
//! JSON report and the SARIF artifact from a single workspace analysis.
//!
//! `check` exits 0 on a clean workspace and 1 when any diagnostic
//! (including stale or malformed waivers) is present; 2 on usage errors.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("list") => cmd_list(),
        Some("explain") => cmd_explain(&args[1..]),
        _ => {
            eprintln!(
                "usage: cadapt-lint <check|list|explain> [options]\n\
                 \n\
                 check   [--root <dir>] [--format text|json|sarif] [--out <file>]\n\
                 \x20        [--emit <json|sarif>=<file>]...\n\
                 \x20        lint the workspace; exit 1 on any diagnostic\n\
                 list    show all rules with one-line summaries\n\
                 explain <rule>  print the rule's full rationale"
            );
            ExitCode::from(2)
        }
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut out_file: Option<PathBuf> = None;
    let mut emits: Vec<(String, PathBuf)> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_err("--root needs a value"),
            },
            "--format" => match it.next() {
                Some(v) if v == "text" || v == "json" || v == "sarif" => format = v.clone(),
                _ => return usage_err("--format must be text, json, or sarif"),
            },
            "--out" => match it.next() {
                Some(v) => out_file = Some(PathBuf::from(v)),
                None => return usage_err("--out needs a value"),
            },
            "--emit" => match it.next().and_then(|v| v.split_once('=')) {
                Some((fmt, path)) if fmt == "json" || fmt == "sarif" => {
                    emits.push((fmt.to_string(), PathBuf::from(path)));
                }
                _ => return usage_err("--emit needs <json|sarif>=<file>"),
            },
            other => return usage_err(&format!("unknown option {other}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match cadapt_lint::find_root(&cwd) {
                Some(r) => r,
                None => return usage_err("no workspace root found; pass --root"),
            }
        }
    };

    let diags = match cadapt_lint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cadapt-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match format.as_str() {
        "json" => cadapt_lint::render_json(&diags),
        "sarif" => cadapt_lint::render_sarif(&diags),
        _ => {
            let mut s = String::new();
            for d in &diags {
                s.push_str(&d.render_text());
                s.push('\n');
            }
            s.push_str(&format!(
                "{} diagnostic{}\n",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" }
            ));
            s
        }
    };
    print!("{report}");
    if let Some(path) = out_file {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("cadapt-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    for (fmt, path) in &emits {
        let extra = if fmt == "sarif" {
            cadapt_lint::render_sarif(&diags)
        } else {
            cadapt_lint::render_json(&diags)
        };
        if let Err(e) = std::fs::write(path, &extra) {
            eprintln!("cadapt-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_list() -> ExitCode {
    for rule in cadapt_lint::registry() {
        println!("{:<14} {}", rule.id(), rule.summary());
    }
    println!(
        "{:<14} waiver suppresses nothing (meta-rule, cannot be waived)",
        "stale-waiver"
    );
    println!(
        "{:<14} waiver is unparsable or lacks a justification (meta-rule)",
        "malformed-waiver"
    );
    ExitCode::SUCCESS
}

fn cmd_explain(args: &[String]) -> ExitCode {
    let Some(id) = args.first() else {
        return usage_err("explain needs a rule id (see `cadapt-lint list`)");
    };
    match id.as_str() {
        "stale-waiver" => {
            println!(
                "A `// cadapt-lint: allow(...)` comment that no longer suppresses any \
                 diagnostic. Waivers document *current* exceptions; once the violation \
                 is fixed the waiver must be deleted, otherwise it would silently \
                 excuse a future regression at the same site."
            );
            return ExitCode::SUCCESS;
        }
        "malformed-waiver" => {
            println!(
                "A waiver comment that does not parse as \
                 `// cadapt-lint: allow(<rule>[, <rule>...]) -- <justification>`, names \
                 an unknown rule, or omits the justification. The justification is \
                 mandatory: a waiver is a reviewed claim about why the invariant holds \
                 anyway, not an off switch."
            );
            return ExitCode::SUCCESS;
        }
        _ => {}
    }
    for rule in cadapt_lint::registry() {
        if rule.id() == id {
            println!("{}: {}\n\n{}", rule.id(), rule.summary(), rule.explain());
            return ExitCode::SUCCESS;
        }
    }
    usage_err(&format!("unknown rule `{id}` (see `cadapt-lint list`)"))
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("cadapt-lint: {msg}");
    ExitCode::from(2)
}
