//! A dependency-free item-tree parser on top of the lexer.
//!
//! The parser recovers just enough structure for the dataflow rules — it
//! is **not** a full expression grammar. Per file it produces:
//!
//! * the item tree: modules (inline), functions (free, inherent-impl,
//!   trait-impl and trait-declaration methods) with visibility, parameter
//!   and return-type tokens, `use` declarations (groups expanded), struct
//!   fields and enum variants;
//! * per-function **body facts** gathered in one linear token scan: path
//!   calls, method calls, macro invocations, field assignments, struct
//!   literals, index expressions (with a computed-index flag), `let`
//!   bindings with a classified initializer, and `match` expressions with
//!   their arm patterns.
//!
//! Design constraints, in priority order:
//!
//! 1. **Never panic, never run away.** Every token access is bounds
//!    checked and every loop advances the cursor; the proptest fuzz suite
//!    (`tests/props_parser.rs`) holds the parser to this on arbitrary
//!    byte soup.
//! 2. **Spans are real.** Every recorded fact carries the 1-based line of
//!    the token it came from, because diagnostics and waivers key off
//!    lines.
//! 3. **Approximations are conservative for reachability.** Where the
//!    token stream is ambiguous (patterns that look like calls, struct
//!    literals vs. blocks) the parser over-records: a fact that does not
//!    correspond to a real call resolves to nothing or to extra graph
//!    edges, which can only widen reachability, never hide a panic site.
//!
//! Known non-goals, documented so nobody relies on them: closure return
//! values are not modelled (a closure body's facts belong to the
//! enclosing function), nested `fn` items inside bodies are folded into
//! the enclosing function the same way, and type information is purely
//! token-textual.

use crate::lexer::{Token, TokenKind};

/// The parsed structure of one file.
#[derive(Debug, Default)]
pub struct ItemTree {
    /// Every function in the file, flattened (free fns, methods, trait
    /// declarations), in source order.
    pub fns: Vec<FnItem>,
    /// Struct declarations with their named fields.
    pub structs: Vec<StructItem>,
    /// Enum declarations with their variants.
    pub enums: Vec<EnumItem>,
    /// `use` declarations, groups expanded to one entry per leaf.
    pub uses: Vec<UseDecl>,
}

/// The impl/trait context a method lives in.
#[derive(Debug, Clone)]
pub struct Container {
    /// Self-type name (`Lru` for `impl Lru`, `ProgramEvents` for
    /// `impl Iterator for ProgramEvents<'_>`); for a trait declaration,
    /// the trait's own name.
    pub type_name: String,
    /// Trait name when this is a trait impl or a trait declaration.
    pub trait_name: Option<String>,
    /// True inside `trait T { … }` itself (methods there may lack bodies).
    pub is_trait_decl: bool,
}

/// One function (or method) and the facts extracted from its body.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Inline-module path within the file (empty at file scope).
    pub module: Vec<String>,
    /// Enclosing impl/trait context, if any.
    pub container: Option<Container>,
    /// True for unrestricted `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameter names (when the pattern is a simple binding) and types.
    pub params: Vec<Param>,
    /// Return-type tokens after `->` (empty when omitted).
    pub ret: Vec<String>,
    /// Token index range of the body, braces excluded (`None` for
    /// bodyless trait-method declarations).
    pub body: Option<(usize, usize)>,
    /// Facts collected from the body.
    pub events: Events,
}

/// One function parameter.
#[derive(Debug)]
pub struct Param {
    /// Binding name for simple `ident: Ty` / `mut ident: Ty` / `self`
    /// patterns; `None` for destructuring patterns.
    pub name: Option<String>,
    /// Type token texts (empty for bare `self` receivers).
    pub ty: Vec<String>,
}

/// A struct declaration.
#[derive(Debug)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// 1-based line of the declaration.
    pub line: u32,
    /// Named fields (tuple structs record positional fields as `0`, `1`…).
    pub fields: Vec<FieldDecl>,
}

/// One struct field declaration.
#[derive(Debug)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Type token texts.
    pub ty: Vec<String>,
    /// 1-based line of the field.
    pub line: u32,
}

/// An enum declaration.
#[derive(Debug)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// 1-based line of the declaration.
    pub line: u32,
    /// Variant names with their lines.
    pub variants: Vec<(String, u32)>,
}

/// One expanded `use` leaf: `use a::{b, c as d};` yields two entries.
#[derive(Debug)]
pub struct UseDecl {
    /// Full path segments (`["cadapt_analysis", "montecarlo", "trial_rng"]`);
    /// a glob import ends with `*`.
    pub path: Vec<String>,
    /// Name the import binds in this file (`as` alias or last segment).
    pub alias: String,
}

/// Facts extracted from one function body in a single linear scan.
#[derive(Debug, Default)]
pub struct Events {
    /// Path calls (`foo(…)`, `a::b::foo(…)`, `Type::method(…)`).
    pub calls: Vec<Call>,
    /// Method calls (`recv.name(…)`).
    pub methods: Vec<MethodCall>,
    /// Macro invocations (`name!…`), arguments scanned as normal tokens.
    pub macros: Vec<MacroUse>,
    /// Field assignments (`expr.field = …`, `expr.field += …`).
    pub field_sets: Vec<FieldSet>,
    /// Struct literals (`TypeName { … }`; includes struct patterns — see
    /// the module docs on conservative over-recording).
    pub struct_lits: Vec<StructLit>,
    /// Index expressions (`expr[…]`).
    pub indexes: Vec<IndexSite>,
    /// `let` bindings with a classified initializer.
    pub lets: Vec<LetBind>,
    /// `match` expressions with arm patterns.
    pub matches: Vec<MatchExpr>,
}

/// A path call site.
#[derive(Debug)]
pub struct Call {
    /// Path segments, unqualified calls have one segment.
    pub segments: Vec<String>,
    /// 1-based line of the call.
    pub line: u32,
}

/// A method call site.
#[derive(Debug)]
pub struct MethodCall {
    /// Method name.
    pub name: String,
    /// Receiver identifier when the receiver is a plain `ident.` or
    /// `self.` chain head; `None` for compound receivers.
    pub recv: Option<String>,
    /// 1-based line of the call.
    pub line: u32,
}

/// A macro invocation site.
#[derive(Debug)]
pub struct MacroUse {
    /// Macro name (without `!`).
    pub name: String,
    /// 1-based line.
    pub line: u32,
}

/// A field assignment site.
#[derive(Debug)]
pub struct FieldSet {
    /// Field name on the left-hand side.
    pub field: String,
    /// 1-based line.
    pub line: u32,
}

/// A struct-literal (or struct-pattern) site.
#[derive(Debug)]
pub struct StructLit {
    /// Type name before the brace.
    pub type_name: String,
    /// 1-based line.
    pub line: u32,
}

/// An index expression site.
#[derive(Debug)]
pub struct IndexSite {
    /// 1-based line of the `[`.
    pub line: u32,
    /// True when the index expression contains arithmetic (`+ - * / %`)
    /// or a nested call — the off-by-one-prone class `panic-reach` flags.
    pub computed: bool,
}

/// A `let` binding with a classified initializer.
#[derive(Debug)]
pub struct LetBind {
    /// Bound name (simple patterns only).
    pub name: String,
    /// What the initializer looks like.
    pub init: Init,
    /// 1-based line.
    pub line: u32,
}

/// Classification of a `let` initializer, as far as one token peek goes.
#[derive(Debug, PartialEq, Eq)]
pub enum Init {
    /// A path call: `let x = a::b::f(…)`.
    CallPath(Vec<String>),
    /// A clone of another local: `let x = y.clone()`.
    CloneOf(String),
    /// Anything else.
    Other,
}

/// A `match` expression with its arm patterns.
#[derive(Debug)]
pub struct MatchExpr {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// Arms in source order.
    pub arms: Vec<Arm>,
}

/// One match arm.
#[derive(Debug)]
pub struct Arm {
    /// 1-based line of the first pattern token.
    pub line: u32,
    /// Pattern token texts (guard included, `=>` excluded).
    pub pat: Vec<String>,
}

impl Arm {
    /// True when the arm is a catch-all: a top-level `_` pattern or a
    /// bare lowercase binding, with or without a guard.
    #[must_use]
    pub fn is_catch_all(&self) -> bool {
        match self.pat.first().map(String::as_str) {
            Some("_") => self.pat.len() == 1 || self.pat.get(1).map(String::as_str) == Some("if"),
            Some(first) => {
                let is_binding = first
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_lowercase() || c == '_');
                is_binding
                    && first != "true"
                    && first != "false"
                    && (self.pat.len() == 1 || self.pat.get(1).map(String::as_str) == Some("if"))
            }
            None => false,
        }
    }
}

/// Parse a token stream into an [`ItemTree`].
#[must_use]
pub fn parse(tokens: &[Token]) -> ItemTree {
    let mut p = Parser {
        toks: tokens,
        out: ItemTree::default(),
        module: Vec::new(),
    };
    p.items(0, tokens.len(), None);
    p.out
}

/// Keywords that can never head a call expression.
const NON_CALL_HEADS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "else", "in", "as", "let", "move", "break",
    "continue", "where", "unsafe", "ref", "mut", "dyn", "impl", "fn", "use", "mod", "struct",
    "enum", "trait", "const", "static", "type", "pub", "await",
];

/// Assignment operators that make `.field <op>` a field mutation.
const ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

struct Parser<'a> {
    toks: &'a [Token],
    out: ItemTree,
    module: Vec<String>,
}

impl<'a> Parser<'a> {
    fn tok(&self, i: usize) -> Option<&'a Token> {
        self.toks.get(i)
    }

    fn text(&self, i: usize) -> &str {
        self.tok(i).map_or("", |t| t.text.as_str())
    }

    fn is_punct(&self, i: usize, s: &str) -> bool {
        self.tok(i).is_some_and(|t| t.is_punct(s))
    }

    fn is_ident(&self, i: usize) -> bool {
        self.tok(i).is_some_and(|t| t.kind == TokenKind::Ident)
    }

    fn line(&self, i: usize) -> u32 {
        self.tok(i).map_or(0, |t| t.line)
    }

    /// Index just past the bracket group opening at `i` (which must hold
    /// one of `(`/`[`/`{`). Returns `end` when unbalanced.
    fn skip_group(&self, i: usize, end: usize) -> usize {
        let mut depth = 0i64;
        let mut j = i;
        while j < end {
            match self.text(j) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Index just past a generics group `<…>` opening at `i`; `i` itself
    /// when there is none.
    fn skip_generics(&self, i: usize, end: usize) -> usize {
        if !self.is_punct(i, "<") {
            return i;
        }
        let mut depth = 0i64;
        let mut j = i;
        while j < end {
            match self.text(j) {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                // `->` inside `Fn(…) -> T` bounds does not affect depth.
                "(" | "[" => {
                    j = self.skip_group(j, end);
                    continue;
                }
                ";" | "{" => return j, // runaway: bail at a statement edge
                _ => {}
            }
            j += 1;
            if depth <= 0 {
                return j;
            }
        }
        end
    }

    /// Skip attributes (`#[…]`, `#![…]`) starting at `i`.
    fn skip_attrs(&self, mut i: usize, end: usize) -> usize {
        while self.is_punct(i, "#") {
            let mut j = i + 1;
            if self.is_punct(j, "!") {
                j += 1;
            }
            if !self.is_punct(j, "[") {
                return i;
            }
            i = self.skip_group(j, end);
        }
        i
    }

    /// Parse items in `[i, end)` under `container`.
    fn items(&mut self, mut i: usize, end: usize, container: Option<&Container>) {
        while i < end {
            let next = self.item(i, end, container);
            // Defensive: every path through `item` advances, but a parser
            // that can hang on adversarial input is worse than one that
            // skips a token.
            i = next.max(i + 1);
        }
    }

    /// Parse one item starting at `i`; returns the index after it.
    fn item(&mut self, i: usize, end: usize, container: Option<&Container>) -> usize {
        let mut j = self.skip_attrs(i, end);
        let mut is_pub = false;
        if self.is_ident(j) && self.text(j) == "pub" {
            j += 1;
            if self.is_punct(j, "(") {
                is_pub = false; // pub(crate)/pub(super): restricted
                j = self.skip_group(j, end);
            } else {
                is_pub = true;
            }
        }
        // Leading modifiers before `fn`.
        while self.is_ident(j)
            && matches!(self.text(j), "async" | "unsafe" | "default")
            && self.text(j + 1) != "{"
        {
            j += 1;
        }
        if self.is_ident(j) && self.text(j) == "extern" {
            // `extern "C" fn`, `extern crate x;`, `extern { … }`.
            j += 1;
            if self.tok(j).is_some_and(|t| t.kind == TokenKind::Literal) {
                j += 1;
            }
            if self.is_punct(j, "{") {
                return self.skip_group(j, end);
            }
            if self.text(j) == "crate" {
                return self.skip_to_semi(j, end);
            }
        }
        if !self.is_ident(j) {
            return j + 1;
        }
        match self.text(j) {
            "fn" => self.fn_item(j, end, is_pub, container),
            "const" if self.text(j + 1) == "fn" => self.fn_item(j + 1, end, is_pub, container),
            "mod" => {
                let name = if self.is_ident(j + 1) {
                    self.text(j + 1).to_string()
                } else {
                    return j + 1;
                };
                if self.is_punct(j + 2, "{") {
                    let body_end = self.skip_group(j + 2, end);
                    self.module.push(name);
                    self.items(j + 3, body_end.saturating_sub(1), container);
                    self.module.pop();
                    body_end
                } else {
                    self.skip_to_semi(j, end)
                }
            }
            "struct" | "union" => self.struct_item(j, end),
            "enum" => self.enum_item(j, end),
            "impl" => self.impl_item(j, end),
            "trait" => self.trait_item(j, end),
            "use" => self.use_item(j, end),
            "macro_rules" => {
                // `macro_rules! name { … }`
                let mut k = j + 1;
                while k < end && !self.is_punct(k, "{") && !self.is_punct(k, "(") {
                    k += 1;
                }
                self.skip_group(k, end)
            }
            "const" | "static" | "type" => self.skip_to_semi(j, end),
            _ => j + 1,
        }
    }

    /// Skip to just past the next `;` at bracket depth 0.
    fn skip_to_semi(&self, mut i: usize, end: usize) -> usize {
        while i < end {
            match self.text(i) {
                "(" | "[" | "{" => {
                    i = self.skip_group(i, end);
                }
                ";" => return i + 1,
                _ => i += 1,
            }
        }
        end
    }

    /// Parse `fn` at `i` (pointing at the `fn` keyword).
    fn fn_item(
        &mut self,
        i: usize,
        end: usize,
        is_pub: bool,
        container: Option<&Container>,
    ) -> usize {
        let line = self.line(i);
        let mut j = i + 1;
        if !self.is_ident(j) {
            return j;
        }
        let name = self.text(j).to_string();
        j += 1;
        j = self.skip_generics(j, end);
        if !self.is_punct(j, "(") {
            return j;
        }
        let params_end = self.skip_group(j, end);
        let params = self.params(j + 1, params_end.saturating_sub(1));
        j = params_end;
        let mut ret = Vec::new();
        if self.is_punct(j, "->") {
            j += 1;
            while j < end {
                match self.text(j) {
                    "{" | ";" | "where" => break,
                    "(" | "[" => {
                        let close = self.skip_group(j, end);
                        for k in j..close {
                            ret.push(self.text(k).to_string());
                        }
                        j = close;
                        continue;
                    }
                    t => ret.push(t.to_string()),
                }
                j += 1;
            }
        }
        if self.text(j) == "where" {
            while j < end && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
                if matches!(self.text(j), "(" | "[") {
                    j = self.skip_group(j, end);
                } else {
                    j += 1;
                }
            }
        }
        let (body, events, next) = if self.is_punct(j, "{") {
            let body_end = self.skip_group(j, end);
            let span = (j + 1, body_end.saturating_sub(1));
            (Some(span), self.scan_events(span.0, span.1), body_end)
        } else {
            // A `;` (trait decl / extern) or anything unexpected: no body.
            (None, Events::default(), j + 1)
        };
        self.out.fns.push(FnItem {
            name,
            module: self.module.clone(),
            container: container.cloned(),
            is_pub,
            line,
            params,
            ret,
            body,
            events,
        });
        next
    }

    /// Parse a parameter list in `[i, end)`.
    fn params(&self, i: usize, end: usize) -> Vec<Param> {
        let mut out = Vec::new();
        let mut start = i;
        let mut j = i;
        let mut flush = |lo: usize, hi: usize, p: &Parser<'a>| {
            if lo >= hi {
                return;
            }
            // Find the top-level `:` separating pattern from type.
            let mut colon = None;
            let mut k = lo;
            while k < hi {
                match p.text(k) {
                    "(" | "[" | "{" => {
                        k = p.skip_group(k, hi);
                        continue;
                    }
                    "<" => {
                        k = p.skip_generics(k, hi);
                        continue;
                    }
                    ":" => {
                        colon = Some(k);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            let (name, ty) = match colon {
                Some(c) => {
                    // Simple binding: `[mut] ident :`
                    let mut lo2 = lo;
                    if p.text(lo2) == "mut" {
                        lo2 += 1;
                    }
                    let name = if lo2 + 1 == c && p.is_ident(lo2) {
                        Some(p.text(lo2).to_string())
                    } else {
                        None
                    };
                    let ty = (c + 1..hi).map(|k| p.text(k).to_string()).collect();
                    (name, ty)
                }
                None => {
                    // Receiver forms: `self`, `&self`, `&mut self`, `&'a self`.
                    let is_self = (lo..hi).any(|k| p.text(k) == "self");
                    (is_self.then(|| "self".to_string()), Vec::new())
                }
            };
            out.push(Param { name, ty });
        };
        while j < end {
            match self.text(j) {
                "(" | "[" | "{" => {
                    j = self.skip_group(j, end);
                    continue;
                }
                "<" => {
                    j = self.skip_generics(j, end);
                    continue;
                }
                "," => {
                    flush(start, j, self);
                    start = j + 1;
                }
                _ => {}
            }
            j += 1;
        }
        flush(start, end, self);
        out
    }

    /// Parse `struct`/`union` at `i`.
    fn struct_item(&mut self, i: usize, end: usize) -> usize {
        let line = self.line(i);
        let mut j = i + 1;
        if !self.is_ident(j) {
            return j;
        }
        let name = self.text(j).to_string();
        j += 1;
        j = self.skip_generics(j, end);
        while self.text(j) == "where"
            || (!self.is_punct(j, "{")
                && !self.is_punct(j, "(")
                && !self.is_punct(j, ";")
                && j < end)
        {
            if matches!(self.text(j), "(" | "[") {
                j = self.skip_group(j, end);
            } else {
                j += 1;
            }
            if j >= end {
                return end;
            }
        }
        let mut fields = Vec::new();
        let next = if self.is_punct(j, "{") {
            let body_end = self.skip_group(j, end);
            let mut k = j + 1;
            let hi = body_end.saturating_sub(1);
            while k < hi {
                k = self.skip_attrs(k, hi);
                if self.text(k) == "pub" {
                    k += 1;
                    if self.is_punct(k, "(") {
                        k = self.skip_group(k, hi);
                    }
                }
                if self.is_ident(k) && self.is_punct(k + 1, ":") {
                    let fline = self.line(k);
                    let fname = self.text(k).to_string();
                    let mut t = k + 2;
                    let mut ty = Vec::new();
                    while t < hi {
                        match self.text(t) {
                            "," => break,
                            "(" | "[" | "{" => {
                                let close = self.skip_group(t, hi);
                                for x in t..close {
                                    ty.push(self.text(x).to_string());
                                }
                                t = close;
                                continue;
                            }
                            "<" => {
                                let close = self.skip_generics(t, hi);
                                for x in t..close {
                                    ty.push(self.text(x).to_string());
                                }
                                t = close;
                                continue;
                            }
                            s => ty.push(s.to_string()),
                        }
                        t += 1;
                    }
                    fields.push(FieldDecl {
                        name: fname,
                        ty,
                        line: fline,
                    });
                    k = t + 1;
                } else {
                    k += 1;
                }
            }
            body_end
        } else if self.is_punct(j, "(") {
            // Tuple struct: record positional fields.
            let body_end = self.skip_group(j, end);
            self.skip_to_semi(body_end, end)
        } else {
            j + 1
        };
        self.out.structs.push(StructItem { name, line, fields });
        next
    }

    /// Parse `enum` at `i`.
    fn enum_item(&mut self, i: usize, end: usize) -> usize {
        let line = self.line(i);
        let mut j = i + 1;
        if !self.is_ident(j) {
            return j;
        }
        let name = self.text(j).to_string();
        j += 1;
        j = self.skip_generics(j, end);
        while j < end && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
            j += 1;
        }
        let mut variants = Vec::new();
        let next = if self.is_punct(j, "{") {
            let body_end = self.skip_group(j, end);
            let hi = body_end.saturating_sub(1);
            let mut k = j + 1;
            let mut expect_variant = true;
            while k < hi {
                k = self.skip_attrs(k, hi);
                if k >= hi {
                    break;
                }
                if expect_variant && self.is_ident(k) {
                    variants.push((self.text(k).to_string(), self.line(k)));
                    expect_variant = false;
                    k += 1;
                } else if matches!(self.text(k), "(" | "{" | "[") {
                    k = self.skip_group(k, hi);
                } else {
                    if self.is_punct(k, ",") {
                        expect_variant = true;
                    }
                    k += 1;
                }
            }
            body_end
        } else {
            j + 1
        };
        self.out.enums.push(EnumItem {
            name,
            line,
            variants,
        });
        next
    }

    /// Parse `impl` at `i`.
    fn impl_item(&mut self, i: usize, end: usize) -> usize {
        let mut j = self.skip_generics(i + 1, end);
        // Collect path idents at angle depth 0 until `{` / `where`,
        // splitting on `for`.
        let mut before_for: Vec<String> = Vec::new();
        let mut after_for: Vec<String> = Vec::new();
        let mut saw_for = false;
        while j < end {
            match self.text(j) {
                "{" | "where" => break,
                "for" => {
                    saw_for = true;
                    j += 1;
                }
                "<" => {
                    j = self.skip_generics(j, end);
                }
                "(" | "[" => {
                    j = self.skip_group(j, end);
                }
                _ => {
                    if self.is_ident(j) {
                        let t = self.text(j).to_string();
                        if saw_for {
                            after_for.push(t);
                        } else {
                            before_for.push(t);
                        }
                    }
                    j += 1;
                }
            }
        }
        while j < end && !self.is_punct(j, "{") {
            if matches!(self.text(j), "(" | "[") {
                j = self.skip_group(j, end);
            } else {
                j += 1;
            }
        }
        if !self.is_punct(j, "{") {
            return j + 1;
        }
        let body_end = self.skip_group(j, end);
        let (type_path, trait_path) = if saw_for {
            (after_for, Some(before_for))
        } else {
            (before_for, None)
        };
        let container = Container {
            type_name: type_path.last().cloned().unwrap_or_default(),
            trait_name: trait_path.and_then(|p| p.last().cloned()),
            is_trait_decl: false,
        };
        self.items(j + 1, body_end.saturating_sub(1), Some(&container));
        body_end
    }

    /// Parse `trait` at `i`.
    fn trait_item(&mut self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        if !self.is_ident(j) {
            return j;
        }
        let name = self.text(j).to_string();
        j += 1;
        while j < end && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
            if matches!(self.text(j), "(" | "[") {
                j = self.skip_group(j, end);
            } else {
                j += 1;
            }
        }
        if !self.is_punct(j, "{") {
            return j + 1;
        }
        let body_end = self.skip_group(j, end);
        let container = Container {
            type_name: name.clone(),
            trait_name: Some(name),
            is_trait_decl: true,
        };
        self.items(j + 1, body_end.saturating_sub(1), Some(&container));
        body_end
    }

    /// Parse `use` at `i`, expanding `{…}` groups.
    fn use_item(&mut self, i: usize, end: usize) -> usize {
        let semi = self.skip_to_semi(i, end);
        let hi = semi.saturating_sub(1); // exclude the `;`
        self.use_tree(i + 1, hi, &[]);
        semi
    }

    /// Recursively expand one use-tree in `[i, end)` under `prefix`.
    fn use_tree(&mut self, i: usize, end: usize, prefix: &[String]) {
        let mut path: Vec<String> = prefix.to_vec();
        let mut j = i;
        let mut alias: Option<String> = None;
        while j < end {
            match self.text(j) {
                "::" => j += 1,
                "{" => {
                    // Group: split top-level commas, recurse per element.
                    let close = self.skip_group(j, end).saturating_sub(1);
                    let mut lo = j + 1;
                    let mut k = j + 1;
                    while k < close {
                        match self.text(k) {
                            "(" | "[" | "{" => {
                                k = self.skip_group(k, close);
                                continue;
                            }
                            "," => {
                                self.use_tree(lo, k, &path);
                                lo = k + 1;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    if lo < close {
                        self.use_tree(lo, close, &path);
                    }
                    return;
                }
                "as" => {
                    if self.is_ident(j + 1) {
                        alias = Some(self.text(j + 1).to_string());
                    }
                    j += 2;
                }
                "*" => {
                    path.push("*".to_string());
                    j += 1;
                }
                _ => {
                    if self.is_ident(j) {
                        path.push(self.text(j).to_string());
                    }
                    j += 1;
                }
            }
        }
        if path.len() > prefix.len() || alias.is_some() {
            let leaf = alias.unwrap_or_else(|| path.last().cloned().unwrap_or_default());
            self.out.uses.push(UseDecl { path, alias: leaf });
        }
    }

    /// One linear scan over a body span collecting [`Events`].
    fn scan_events(&self, lo: usize, hi: usize) -> Events {
        let mut ev = Events::default();
        let mut i = lo;
        while i < hi {
            let Some(t) = self.tok(i) else { break };
            // Statement-level attributes inside bodies.
            if t.is_punct("#") {
                let next = self.skip_attrs(i, hi);
                if next > i {
                    i = next;
                    continue;
                }
            }
            match t.kind {
                TokenKind::Ident => {
                    let prev = i.checked_sub(1).map(|p| self.text(p)).unwrap_or("");
                    // Macro invocation.
                    if self.is_punct(i + 1, "!") && prev != "macro_rules" {
                        ev.macros.push(MacroUse {
                            name: t.text.clone(),
                            line: t.line,
                        });
                        i += 2;
                        continue;
                    }
                    if t.text == "let" {
                        self.scan_let(i, hi, &mut ev);
                        i += 1;
                        continue;
                    }
                    if t.text == "match" {
                        if let Some(m) = self.scan_match(i, hi) {
                            ev.matches.push(m);
                        }
                        i += 1;
                        continue;
                    }
                    // Path call or struct literal — not after `.` (method
                    // and field accesses are handled at the `.` token) and
                    // not a declaration head.
                    if prev != "." && prev != "fn" && !NON_CALL_HEADS.contains(&t.text.as_str()) {
                        let (segments, after) = self.scan_path(i, hi);
                        if self.is_punct(after, "(") {
                            ev.calls.push(Call {
                                segments,
                                line: t.line,
                            });
                        } else if self.is_punct(after, "{")
                            && segments
                                .last()
                                .and_then(|s| s.chars().next())
                                .is_some_and(char::is_uppercase)
                            && !matches!(prev, "match" | "if" | "while" | "for" | "in")
                        {
                            if let Some(name) = segments.last() {
                                ev.struct_lits.push(StructLit {
                                    type_name: name.clone(),
                                    line: t.line,
                                });
                            }
                        }
                        if after > i + 1 {
                            // Re-scan nothing inside the path itself.
                            i = after;
                            continue;
                        }
                    }
                    i += 1;
                }
                TokenKind::Punct if t.text == "." => {
                    if self.is_ident(i + 1) {
                        let name = self.text(i + 1).to_string();
                        let line = self.line(i + 1);
                        if self.is_punct(i + 2, "(") {
                            let recv = i.checked_sub(1).and_then(|p| {
                                let pt = self.tok(p)?;
                                (pt.kind == TokenKind::Ident).then(|| pt.text.clone())
                            });
                            ev.methods.push(MethodCall { name, recv, line });
                            i += 2; // leave `(` to flow on
                            continue;
                        }
                        if self
                            .tok(i + 2)
                            .is_some_and(|n| ASSIGN_OPS.contains(&n.text.as_str()))
                        {
                            ev.field_sets.push(FieldSet { field: name, line });
                            i += 3;
                            continue;
                        }
                    }
                    i += 1;
                }
                TokenKind::Punct if t.text == "[" => {
                    let indexable_recv = i.checked_sub(1).is_some_and(|p| {
                        self.tok(p).is_some_and(|pt| {
                            (pt.kind == TokenKind::Ident
                                && !NON_CALL_HEADS.contains(&pt.text.as_str()))
                                || pt.is_punct(")")
                                || pt.is_punct("]")
                        })
                    });
                    if indexable_recv {
                        let close = self.skip_group(i, hi);
                        let computed = (i + 1..close.saturating_sub(1)).any(|k| {
                            self.tok(k).is_some_and(|x| {
                                x.kind == TokenKind::Punct
                                    && matches!(x.text.as_str(), "+" | "-" | "*" | "/" | "%" | "(")
                            })
                        });
                        ev.indexes.push(IndexSite {
                            line: t.line,
                            computed,
                        });
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
        ev
    }

    /// Scan a `::`-separated path starting at ident `i`; returns the
    /// segments and the index just past the path (turbofish skipped).
    fn scan_path(&self, i: usize, hi: usize) -> (Vec<String>, usize) {
        let mut segments = vec![self.text(i).to_string()];
        let mut j = i + 1;
        while j + 1 < hi && self.is_punct(j, "::") {
            if self.is_ident(j + 1) {
                segments.push(self.text(j + 1).to_string());
                j += 2;
            } else if self.is_punct(j + 1, "<") {
                // Turbofish: `::<…>` — skip, then stop.
                j = self.skip_generics(j + 1, hi);
                break;
            } else {
                break;
            }
        }
        (segments, j)
    }

    /// Record a `let` binding starting at the `let` keyword.
    fn scan_let(&self, i: usize, hi: usize, ev: &mut Events) {
        let mut j = i + 1;
        if self.text(j) == "mut" {
            j += 1;
        }
        if !self.is_ident(j) {
            return; // destructuring pattern: not tracked
        }
        let name = self.text(j).to_string();
        let line = self.line(j);
        let mut k = j + 1;
        // Optional `: Type`.
        if self.is_punct(k, ":") {
            k += 1;
            while k < hi && !self.is_punct(k, "=") && !self.is_punct(k, ";") {
                match self.text(k) {
                    "(" | "[" | "{" => k = self.skip_group(k, hi),
                    "<" => k = self.skip_generics(k, hi),
                    _ => k += 1,
                }
            }
        }
        if !self.is_punct(k, "=") {
            return;
        }
        k += 1;
        let init = if self.is_ident(k) {
            let (segments, after) = self.scan_path(k, hi);
            if self.is_punct(after, "(") {
                Init::CallPath(segments)
            } else if segments.len() == 1
                && self.is_punct(after, ".")
                && self.text(after + 1) == "clone"
                && self.is_punct(after + 2, "(")
            {
                Init::CloneOf(self.text(k).to_string())
            } else {
                Init::Other
            }
        } else {
            Init::Other
        };
        ev.lets.push(LetBind { name, init, line });
    }

    /// Extract the structure of a `match` at token `i` (lookahead only;
    /// the caller keeps scanning the same tokens for events).
    fn scan_match(&self, i: usize, hi: usize) -> Option<MatchExpr> {
        let line = self.line(i);
        // Scrutinee: scan to `{` at depth 0.
        let mut j = i + 1;
        let mut depth = 0i64;
        while j < hi {
            match self.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" => {
                    if depth == 0 {
                        break;
                    }
                    depth += 1;
                }
                "}" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        if !self.is_punct(j, "{") {
            return None;
        }
        let body_end = self.skip_group(j, hi).saturating_sub(1);
        let mut arms = Vec::new();
        let mut k = j + 1;
        while k < body_end {
            k = self.skip_attrs(k, body_end);
            // Pattern: tokens until `=>` at depth 0.
            let pat_start = k;
            let mut d = 0i64;
            while k < body_end {
                match self.text(k) {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => d -= 1,
                    "=>" if d == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if k >= body_end {
                break;
            }
            let pat: Vec<String> = (pat_start..k).map(|x| self.text(x).to_string()).collect();
            if !pat.is_empty() {
                arms.push(Arm {
                    line: self.line(pat_start),
                    pat,
                });
            }
            k += 1; // past `=>`
                    // Arm body: a block, or an expression up to `,` at depth 0.
            if self.is_punct(k, "{") {
                k = self.skip_group(k, body_end);
                if self.is_punct(k, ",") {
                    k += 1;
                }
            } else {
                let mut d = 0i64;
                while k < body_end {
                    match self.text(k) {
                        "(" | "[" | "{" => d += 1,
                        ")" | "]" | "}" => d -= 1,
                        "," if d == 0 => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        Some(MatchExpr { line, arms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> ItemTree {
        parse(&lex(src).tokens)
    }

    #[test]
    fn free_fn_with_visibility_params_and_return() {
        let t = tree("pub fn add(a: u64, mut b: u64) -> u64 { a + b }\nfn private() {}\n");
        assert_eq!(t.fns.len(), 2);
        let f = &t.fns[0];
        assert_eq!(f.name, "add");
        assert!(f.is_pub);
        assert_eq!(f.line, 1);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name.as_deref(), Some("a"));
        assert_eq!(f.params[1].name.as_deref(), Some("b"));
        assert_eq!(f.ret, ["u64"]);
        assert!(!t.fns[1].is_pub);
    }

    #[test]
    fn pub_crate_is_not_public() {
        let t = tree("pub(crate) fn f() {}\n");
        assert!(!t.fns[0].is_pub);
    }

    #[test]
    fn impl_methods_carry_container() {
        let t = tree(
            "struct Lru;\nimpl Lru {\n    pub fn touch(&mut self) {}\n}\nimpl Iterator for Lru {\n    type Item = u64;\n    fn next(&mut self) -> Option<u64> { None }\n}\n",
        );
        let touch = t.fns.iter().find(|f| f.name == "touch").expect("touch");
        let c = touch.container.as_ref().expect("container");
        assert_eq!(c.type_name, "Lru");
        assert!(c.trait_name.is_none());
        let next = t.fns.iter().find(|f| f.name == "next").expect("next");
        let c = next.container.as_ref().expect("container");
        assert_eq!(c.type_name, "Lru");
        assert_eq!(c.trait_name.as_deref(), Some("Iterator"));
        assert_eq!(next.ret, ["Option", "<", "u64", ">"]);
    }

    #[test]
    fn trait_decl_methods_flagged() {
        let t = tree("pub trait Source {\n    fn pull(&mut self) -> u64;\n    fn hint(&self) -> u64 { 0 }\n}\n");
        let pull = t.fns.iter().find(|f| f.name == "pull").expect("pull");
        assert!(pull.container.as_ref().is_some_and(|c| c.is_trait_decl));
        assert!(pull.body.is_none());
        let hint = t.fns.iter().find(|f| f.name == "hint").expect("hint");
        assert!(hint.body.is_some());
    }

    #[test]
    fn inline_modules_nest() {
        let t =
            tree("mod outer {\n    mod inner {\n        fn deep() {}\n    }\n    fn mid() {}\n}\n");
        let deep = t.fns.iter().find(|f| f.name == "deep").expect("deep");
        assert_eq!(deep.module, ["outer", "inner"]);
        let mid = t.fns.iter().find(|f| f.name == "mid").expect("mid");
        assert_eq!(mid.module, ["outer"]);
    }

    #[test]
    fn use_groups_expand() {
        let t = tree(
            "use cadapt_core::{cast, counters::{count_io, Recording as Rec}};\nuse a::b::*;\n",
        );
        let paths: Vec<(Vec<String>, String)> = t
            .uses
            .iter()
            .map(|u| (u.path.clone(), u.alias.clone()))
            .collect();
        assert!(paths.contains(&(vec!["cadapt_core".into(), "cast".into()], "cast".into())));
        assert!(paths.contains(&(
            vec!["cadapt_core".into(), "counters".into(), "count_io".into()],
            "count_io".into()
        )));
        assert!(paths.contains(&(
            vec!["cadapt_core".into(), "counters".into(), "Recording".into()],
            "Rec".into()
        )));
        assert!(paths.contains(&(vec!["a".into(), "b".into(), "*".into()], "*".into())));
    }

    #[test]
    fn body_calls_methods_macros() {
        let t = tree(
            "fn f() {\n    helper(1);\n    cadapt_core::cast::u64_from(2);\n    x.unwrap();\n    panic!(\"boom\");\n    y.set_stream(3);\n}\n",
        );
        let ev = &t.fns[0].events;
        let call_names: Vec<&str> = ev
            .calls
            .iter()
            .filter_map(|c| c.segments.last().map(String::as_str))
            .collect();
        assert!(call_names.contains(&"helper"));
        assert!(call_names.contains(&"u64_from"));
        let methods: Vec<&str> = ev.methods.iter().map(|m| m.name.as_str()).collect();
        assert!(methods.contains(&"unwrap"));
        assert!(methods.contains(&"set_stream"));
        assert!(ev.macros.iter().any(|m| m.name == "panic"));
        assert_eq!(
            ev.macros.iter().find(|m| m.name == "panic").map(|m| m.line),
            Some(5)
        );
    }

    #[test]
    fn field_assignments_detected() {
        let t = tree("fn f(s: &mut S) {\n    s.ios_charged += 1;\n    s.hits = 2;\n    let ok = s.x == 3;\n}\n");
        let ev = &t.fns[0].events;
        let sets: Vec<(&str, u32)> = ev
            .field_sets
            .iter()
            .map(|f| (f.field.as_str(), f.line))
            .collect();
        assert_eq!(sets, [("ios_charged", 2), ("hits", 3)]);
    }

    #[test]
    fn index_sites_and_computed_flag() {
        let t = tree("fn f(xs: &[u64], i: usize) -> u64 {\n    let a = xs[i];\n    let b = xs[i + 1];\n    let c = xs[f(i)];\n    a + b + c\n}\n");
        let ev = &t.fns[0].events;
        assert_eq!(ev.indexes.len(), 3);
        assert!(!ev.indexes[0].computed);
        assert!(ev.indexes[1].computed);
        assert!(ev.indexes[2].computed);
    }

    #[test]
    fn array_types_and_literals_are_not_index_sites() {
        let t = tree("fn f() {\n    let a: [u8; 4] = [1, 2, 3, 4];\n    let v = vec![1];\n    drop((a, v));\n}\n");
        assert!(t.fns[0].events.indexes.is_empty());
    }

    #[test]
    fn let_init_classification() {
        let t = tree(
            "fn f() {\n    let a = trial_rng(1, 2);\n    let b = a.clone();\n    let c = 7;\n}\n",
        );
        let ev = &t.fns[0].events;
        assert_eq!(ev.lets.len(), 3);
        assert_eq!(ev.lets[0].init, Init::CallPath(vec!["trial_rng".into()]));
        assert_eq!(ev.lets[1].init, Init::CloneOf("a".into()));
        assert_eq!(ev.lets[2].init, Init::Other);
    }

    #[test]
    fn match_arms_and_catch_all() {
        let t = tree(
            "fn f(op: Opcode) -> u32 {\n    match op {\n        Opcode::Leaf => 0,\n        Opcode::Access | Opcode::Run => { 1 }\n        other => 2,\n    }\n}\n",
        );
        let ev = &t.fns[0].events;
        assert_eq!(ev.matches.len(), 1);
        let m = &ev.matches[0];
        assert_eq!(m.arms.len(), 3);
        assert!(!m.arms[0].is_catch_all());
        assert!(!m.arms[1].is_catch_all());
        assert!(m.arms[2].is_catch_all());
        assert_eq!(m.arms[0].pat, ["Opcode", "::", "Leaf"]);
    }

    #[test]
    fn wildcard_with_guard_is_catch_all() {
        let t = tree("fn f(x: u8) -> u8 {\n    match x {\n        0 => 1,\n        _ if x > 3 => 2,\n        _ => 3,\n    }\n}\n");
        let m = &t.fns[0].events.matches[0];
        assert!(m.arms[1].is_catch_all());
        assert!(m.arms[2].is_catch_all());
    }

    #[test]
    fn struct_fields_recorded() {
        let t = tree("pub struct CounterSnapshot {\n    pub boxes_advanced: u64,\n    pub rng: ChaCha8Rng,\n}\n");
        let s = &t.structs[0];
        assert_eq!(s.name, "CounterSnapshot");
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].name, "boxes_advanced");
        assert_eq!(s.fields[1].ty, ["ChaCha8Rng"]);
        assert_eq!(s.fields[1].line, 3);
    }

    #[test]
    fn enum_variants_recorded() {
        let t = tree(
            "enum Opcode {\n    Leaf = 0,\n    Access(u64),\n    Run { n: u64 },\n    Loop,\n}\n",
        );
        let e = &t.enums[0];
        assert_eq!(e.name, "Opcode");
        let names: Vec<&str> = e.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["Leaf", "Access", "Run", "Loop"]);
    }

    #[test]
    fn struct_literal_detected_but_not_match_scrutinee() {
        let t = tree("fn f() -> S {\n    match x { _ => {} }\n    S { a: 1 }\n}\n");
        let lits: Vec<&str> = t.fns[0]
            .events
            .struct_lits
            .iter()
            .map(|l| l.type_name.as_str())
            .collect();
        assert_eq!(lits, ["S"]);
    }

    #[test]
    fn nested_fn_events_fold_into_enclosing() {
        let t = tree("fn outer() {\n    fn inner(x: Option<u32>) -> u32 { x.unwrap() }\n    inner(None);\n}\n");
        // `inner`'s unwrap is attributed to `outer` (documented folding);
        // the nested declaration itself is not misread as a call.
        let ev = &t.fns[0].events;
        assert!(ev.methods.iter().any(|m| m.name == "unwrap"));
        assert!(ev.calls.iter().any(|c| c.segments == ["inner"]));
    }

    #[test]
    fn turbofish_calls_are_recorded() {
        let t = tree("fn f() {\n    let v = collect::<Vec<u64>>();\n    parse::<u64>(s);\n}\n");
        let ev = &t.fns[0].events;
        assert!(ev.calls.iter().any(|c| c.segments == ["collect"]));
        assert!(ev.calls.iter().any(|c| c.segments == ["parse"]));
    }

    #[test]
    fn parser_survives_garbage() {
        for src in [
            "fn",
            "fn (",
            "impl {",
            "match",
            "use ;",
            "struct {",
            "enum E { , }",
            "pub pub pub",
            "fn f( -> {",
            "trait {",
            "mod m { fn g(",
            "#[",
            "let x = ",
        ] {
            let _ = tree(src); // must not panic or hang
        }
    }
}
