//! Workspace call graph over the parsed item trees.
//!
//! Nodes are functions from **library** files (test/bench/example/binary
//! collateral and `#[cfg(test)]` items are excluded); edges are resolved
//! call sites. Resolution is name-based — there is no type inference —
//! and deliberately errs toward **more** edges:
//!
//! * **Bare calls** (`helper(…)`) resolve to same-module functions first,
//!   then through the file's `use` imports (glob imports fan out to the
//!   whole imported crate).
//! * **Qualified calls** (`a::b::f(…)`) resolve to functions whose
//!   containing type, module, or crate matches a path segment; when no
//!   segment matches but the path mentions any first-party crate, module,
//!   or type name (a re-export, say), the call fans out to *every*
//!   first-party function with that name.
//! * **Method calls** (`x.f(…)`) edge to **all** first-party methods
//!   named `f`; a `self.f(…)` call narrows to the receiver's own impl
//!   type when that type has such a method. Calls that resolve to a
//!   trait-declaration method additionally fan out to every
//!   implementation of it (dynamic dispatch).
//! * Calls that resolve to nothing first-party (std, shims, vendored
//!   crates) produce no edges.
//!
//! Soundness argument for the reachability rules: an edge we invent that
//! the program never takes can only *add* reachable panic sites (false
//! positives, waivable); the only way to *miss* one is a call into
//! first-party code that resolves to nothing, which requires the callee
//! name to appear nowhere in the workspace — impossible for first-party
//! targets, since the index covers every parsed function. The remaining
//! holes are documented: function pointers/closures passed as values,
//! macro-generated calls, and `include!`-style tricks, none of which the
//! codebase uses on lib paths.

use crate::parse::FnItem;
use crate::rules::is_test_or_bin_path;
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The whole parsed workspace: every source file plus the call graph
/// built over them. Workspace rules receive this.
#[derive(Debug)]
pub struct WorkspaceModel {
    /// All files handed to the linter (library and test collateral both —
    /// the graph itself only draws nodes from library files).
    pub files: Vec<SourceFile>,
    /// The resolved call graph.
    pub graph: CallGraph,
}

impl WorkspaceModel {
    /// Parse nothing further — `files` are already parsed — and build the
    /// call graph over them.
    #[must_use]
    pub fn build(files: Vec<SourceFile>) -> Self {
        let graph = CallGraph::build(&files);
        WorkspaceModel { files, graph }
    }
}

/// One function node in the workspace call graph.
#[derive(Debug)]
pub struct Node {
    /// Index into the workspace's file list.
    pub file: usize,
    /// Index into that file's `ItemTree::fns`.
    pub fn_idx: usize,
    /// Crate identifier (`cadapt_paging`, …).
    pub crate_ident: String,
    /// Full module path: file-derived segments plus inline modules.
    pub module: Vec<String>,
    /// Human-readable qualified name for diagnostics
    /// (`cadapt_paging::lru::Lru::replay`).
    pub qualname: String,
    /// True when this function is a public entry point: an unrestricted
    /// `pub fn`, a trait-impl method (callable through the trait), or a
    /// defaulted trait-declaration method.
    pub is_entry: bool,
}

/// The resolved workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// Function nodes; indices are stable identifiers.
    pub nodes: Vec<Node>,
    /// Adjacency: `edges[n]` lists callee node indices (sorted, deduped).
    pub edges: Vec<Vec<usize>>,
    node_of: BTreeMap<(usize, usize), usize>,
}

/// Breadth-first reachability from all public entry points at once.
#[derive(Debug)]
pub struct Reachability {
    /// `dist[n]` is the hop count from the nearest entry (`u32::MAX` when
    /// unreachable).
    pub dist: Vec<u32>,
    /// BFS parent pointers toward the nearest entry.
    pub parent: Vec<Option<usize>>,
}

impl Reachability {
    /// True when node `n` is reachable from some public entry point.
    #[must_use]
    pub fn reachable(&self, n: usize) -> bool {
        self.dist.get(n).is_some_and(|&d| d != u32::MAX)
    }
}

/// Derive the crate identifier from a workspace-relative path:
/// `crates/paging/src/lru.rs` → `cadapt_paging` (the facade crate dir
/// `cadapt` maps to plain `cadapt`).
#[must_use]
pub fn crate_ident(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    let (first, dir) = (parts.next(), parts.next());
    match (first, dir) {
        (Some("crates"), Some(d)) => {
            let d = d.replace('-', "_");
            if d == "cadapt" {
                d
            } else {
                format!("cadapt_{d}")
            }
        }
        _ => String::new(),
    }
}

/// Derive the file-level module path: `crates/x/src/a/b.rs` → `[a, b]`,
/// `lib.rs`/`main.rs` → `[]`, `a/mod.rs` → `[a]`.
#[must_use]
pub fn file_modules(rel_path: &str) -> Vec<String> {
    let Some(src_idx) = rel_path.find("/src/") else {
        return Vec::new();
    };
    let tail = rel_path.get(src_idx + 5..).unwrap_or("");
    let mut mods: Vec<String> = tail.split('/').map(str::to_string).collect();
    let Some(last) = mods.pop() else {
        return Vec::new();
    };
    match last.as_str() {
        "lib.rs" | "main.rs" | "mod.rs" => {}
        other => {
            if let Some(stem) = other.strip_suffix(".rs") {
                mods.push(stem.to_string());
            }
        }
    }
    mods
}

impl CallGraph {
    /// Build the graph over `files` (the full workspace model; non-library
    /// files contribute no nodes).
    #[must_use]
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut node_of = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            if is_test_or_bin_path(&file.rel_path) {
                continue;
            }
            let krate = crate_ident(&file.rel_path);
            if krate.is_empty() {
                continue;
            }
            let fmods = file_modules(&file.rel_path);
            for (gi, f) in file.items.fns.iter().enumerate() {
                if file.in_cfg_test(f.line) {
                    continue;
                }
                let mut module = fmods.clone();
                module.extend(f.module.iter().cloned());
                let mut qual = vec![krate.clone()];
                qual.extend(module.iter().cloned());
                if let Some(c) = &f.container {
                    if !c.type_name.is_empty() {
                        qual.push(c.type_name.clone());
                    }
                }
                qual.push(f.name.clone());
                let is_entry = match &f.container {
                    Some(c) if c.is_trait_decl => f.body.is_some(),
                    Some(c) => c.trait_name.is_some() || f.is_pub,
                    None => f.is_pub,
                };
                let idx = nodes.len();
                nodes.push(Node {
                    file: fi,
                    fn_idx: gi,
                    crate_ident: krate.clone(),
                    module,
                    qualname: qual.join("::"),
                    is_entry,
                });
                node_of.insert((fi, gi), idx);
            }
        }

        let mut g = CallGraph {
            edges: vec![Vec::new(); nodes.len()],
            nodes,
            node_of,
        };
        let r = Resolver::new(&g.nodes, files);
        for n in 0..g.nodes.len() {
            let mut out: BTreeSet<usize> = BTreeSet::new();
            let node = &g.nodes[n];
            let Some(f) = fn_of(files, node) else {
                continue;
            };
            for call in &f.events.calls {
                r.resolve_call(node, &call.segments, &mut out);
            }
            for m in &f.events.methods {
                r.resolve_method(node, &m.name, m.recv.as_deref(), &mut out);
            }
            // Dynamic dispatch: a trait-declaration method fans out to
            // every implementation of it.
            if let Some(c) = &f.container {
                if c.is_trait_decl {
                    // nothing extra: decl nodes gain impl edges below
                }
            }
            out.remove(&n);
            g.edges[n] = out.into_iter().collect();
        }

        // Trait-decl → impl edges (dynamic dispatch approximation).
        let mut extra: Vec<(usize, usize)> = Vec::new();
        for (di, decl) in g.nodes.iter().enumerate() {
            let Some(df) = fn_of(files, decl) else {
                continue;
            };
            let Some(dc) = &df.container else { continue };
            if !dc.is_trait_decl {
                continue;
            }
            for (ii, imp) in g.nodes.iter().enumerate() {
                let Some(if_) = fn_of(files, imp) else {
                    continue;
                };
                let Some(ic) = &if_.container else { continue };
                if !ic.is_trait_decl
                    && ic.trait_name.as_deref() == Some(dc.type_name.as_str())
                    && if_.name == df.name
                {
                    extra.push((di, ii));
                }
            }
        }
        for (from, to) in extra {
            if let Some(e) = g.edges.get_mut(from) {
                if !e.contains(&to) {
                    e.push(to);
                    e.sort_unstable();
                }
            }
        }
        g
    }

    /// Node index for `(file, fn_idx)`, when that function is in the graph.
    #[must_use]
    pub fn node_index(&self, file: usize, fn_idx: usize) -> Option<usize> {
        self.node_of.get(&(file, fn_idx)).copied()
    }

    /// BFS from every public entry point simultaneously; the parent
    /// pointers yield a shortest call path from the *nearest* entry.
    #[must_use]
    pub fn reach_from_entries(&self) -> Reachability {
        let n = self.nodes.len();
        let mut dist = vec![u32::MAX; n];
        let mut parent = vec![None; n];
        let mut q = VecDeque::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.is_entry {
                dist[i] = 0;
                q.push_back(i);
            }
        }
        while let Some(u) = q.pop_front() {
            let du = dist[u];
            for &v in self.edges.get(u).map_or(&[][..], Vec::as_slice) {
                if dist.get(v).copied() == Some(u32::MAX) {
                    dist[v] = du.saturating_add(1);
                    parent[v] = Some(u);
                    q.push_back(v);
                }
            }
        }
        Reachability { dist, parent }
    }

    /// The qualified-name call path from the nearest public entry down to
    /// node `n` (inclusive), for diagnostics.
    #[must_use]
    pub fn entry_path(&self, r: &Reachability, n: usize) -> Vec<String> {
        let mut path = Vec::new();
        let mut cur = Some(n);
        let mut hops = 0usize;
        while let Some(c) = cur {
            let Some(node) = self.nodes.get(c) else { break };
            path.push(node.qualname.clone());
            cur = r.parent.get(c).copied().flatten();
            hops += 1;
            if hops > self.nodes.len() {
                break; // defensive: parent pointers can't cycle, but never hang
            }
        }
        path.reverse();
        path
    }
}

/// The `FnItem` behind a node.
#[must_use]
pub fn fn_of<'a>(files: &'a [SourceFile], node: &Node) -> Option<&'a FnItem> {
    files.get(node.file)?.items.fns.get(node.fn_idx)
}

/// Name-resolution indexes shared by all call sites.
struct Resolver<'a> {
    nodes: &'a [Node],
    files: &'a [SourceFile],
    /// fn name → node indices.
    by_name: BTreeMap<&'a str, Vec<usize>>,
    /// All first-party crate idents.
    crates: BTreeSet<&'a str>,
    /// All first-party type names (impl self-types, structs, enums) and
    /// module segments — used to decide whether an unmatched path points
    /// into first-party space.
    first_party_names: BTreeSet<&'a str>,
}

impl<'a> Resolver<'a> {
    fn new(nodes: &'a [Node], files: &'a [SourceFile]) -> Self {
        let mut by_name: BTreeMap<&'a str, Vec<usize>> = BTreeMap::new();
        let mut crates = BTreeSet::new();
        let mut first_party_names = BTreeSet::new();
        for (i, node) in nodes.iter().enumerate() {
            crates.insert(node.crate_ident.as_str());
            for m in &node.module {
                first_party_names.insert(m.as_str());
            }
            let Some(f) = fn_of(files, node) else {
                continue;
            };
            by_name.entry(f.name.as_str()).or_default().push(i);
            if let Some(c) = &f.container {
                if !c.type_name.is_empty() {
                    first_party_names.insert(c.type_name.as_str());
                }
            }
        }
        for file in files {
            for s in &file.items.structs {
                first_party_names.insert(s.name.as_str());
            }
            for e in &file.items.enums {
                first_party_names.insert(e.name.as_str());
            }
        }
        Resolver {
            nodes,
            files,
            by_name,
            crates,
            first_party_names,
        }
    }

    /// Resolve a path call from `caller`, adding callee nodes to `out`.
    fn resolve_call(&self, caller: &Node, segments: &[String], out: &mut BTreeSet<usize>) {
        // Normalize leading `crate`/`self`/`super` to caller-relative
        // context; bail on std-family paths.
        let mut segs: Vec<&str> = Vec::new();
        for (i, s) in segments.iter().enumerate() {
            match s.as_str() {
                "crate" if i == 0 => segs.push(caller.crate_ident.as_str()),
                "self" | "super" if i == 0 => {}
                "std" | "core" | "alloc" if i == 0 => return,
                other => segs.push(other),
            }
        }
        let Some(&name) = segs.last() else { return };
        let Some(cands) = self.by_name.get(name) else {
            return;
        };

        if segs.len() == 1 {
            // Bare call: same module first.
            let local: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| {
                    let cn = &self.nodes[c];
                    cn.crate_ident == caller.crate_ident && cn.module == caller.module
                })
                .collect();
            if !local.is_empty() {
                self.add_with_dispatch(&local, out);
                return;
            }
            // Then the file's use-imports.
            let Some(file) = self.files.get(caller.file) else {
                return;
            };
            let mut matched = false;
            for u in &file.items.uses {
                if u.alias == name {
                    matched |= self.resolve_import_path(&u.path, name, caller, out);
                } else if u.path.last().map(String::as_str) == Some("*") {
                    // Glob import: candidates from any first-party crate
                    // the glob path names.
                    for seg in &u.path {
                        if self.crates.contains(seg.as_str()) {
                            let from_crate: Vec<usize> = cands
                                .iter()
                                .copied()
                                .filter(|&c| self.nodes[c].crate_ident == seg.as_str())
                                .collect();
                            if !from_crate.is_empty() {
                                self.add_with_dispatch(&from_crate, out);
                                matched = true;
                            }
                        }
                    }
                }
            }
            if !matched {
                // Same-crate fallback: a bare call can reach a sibling
                // module item re-exported at the crate root.
                let same_crate: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&c| self.nodes[c].crate_ident == caller.crate_ident)
                    .collect();
                self.add_with_dispatch(&same_crate, out);
            }
            return;
        }

        // Qualified call: match the qualifier segments against candidate
        // container types, modules, and crates.
        let quals = segs.split_last().map(|(_, init)| init).unwrap_or_default();
        let strong: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| self.qualifier_matches(quals, c))
            .collect();
        if !strong.is_empty() {
            self.add_with_dispatch(&strong, out);
            return;
        }
        // Re-export / alias fallback: conservative fan-out when the path
        // mentions anything first-party at all.
        let mentions_first_party = quals.iter().any(|q| {
            self.crates.contains(q)
                || self.first_party_names.contains(q)
                || self.resolve_alias_mentions_first_party(caller, q)
        });
        if mentions_first_party {
            self.add_with_dispatch(cands, out);
        }
    }

    /// Does a qualifier list match candidate node `c`?
    fn qualifier_matches(&self, quals: &[&str], c: usize) -> bool {
        let node = &self.nodes[c];
        let container_ty = fn_of(self.files, node)
            .and_then(|f| f.container.as_ref())
            .map(|ct| ct.type_name.as_str());
        quals.iter().any(|&q| {
            q == node.crate_ident || node.module.iter().any(|m| m == q) || container_ty == Some(q)
        })
    }

    /// When a bare qualifier is itself a `use` alias in the caller's file
    /// (e.g. `use cadapt_core::counters as acc; acc::count_io(…)`), does
    /// the aliased path mention first-party space?
    fn resolve_alias_mentions_first_party(&self, caller: &Node, q: &str) -> bool {
        self.files.get(caller.file).is_some_and(|file| {
            file.items
                .uses
                .iter()
                .any(|u| u.alias == q && u.path.iter().any(|s| self.crates.contains(s.as_str())))
        })
    }

    /// Resolve a bare call through one matching `use` path. Returns true
    /// when the import pointed into first-party space (even if no node
    /// matched — the target may be a type or macro, and std fallback
    /// must not kick in).
    fn resolve_import_path(
        &self,
        path: &[String],
        name: &str,
        _caller: &Node,
        out: &mut BTreeSet<usize>,
    ) -> bool {
        let in_first_party = path.iter().any(|s| self.crates.contains(s.as_str()));
        if !in_first_party {
            return false;
        }
        let Some(cands) = self.by_name.get(name) else {
            return true;
        };
        // Filter by the crate the import names; refine by module when the
        // path's second-to-last segment matches (re-exports won't — keep
        // the crate-level set then).
        let crate_match: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| path.iter().any(|s| s == &self.nodes[c].crate_ident))
            .collect();
        if crate_match.is_empty() {
            self.add_with_dispatch(cands, out);
            return true;
        }
        let modname = path.len().checked_sub(2).and_then(|i| path.get(i));
        let refined: Vec<usize> = match modname {
            Some(m) => crate_match
                .iter()
                .copied()
                .filter(|&c| self.nodes[c].module.iter().any(|s| s == m))
                .collect(),
            None => Vec::new(),
        };
        if refined.is_empty() {
            self.add_with_dispatch(&crate_match, out);
        } else {
            self.add_with_dispatch(&refined, out);
        }
        true
    }

    /// Resolve a method call from `caller`.
    fn resolve_method(
        &self,
        caller: &Node,
        name: &str,
        recv: Option<&str>,
        out: &mut BTreeSet<usize>,
    ) {
        let Some(cands) = self.by_name.get(name) else {
            return;
        };
        let methods: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| fn_of(self.files, &self.nodes[c]).is_some_and(|f| f.container.is_some()))
            .collect();
        if methods.is_empty() {
            return;
        }
        // `self.f(…)` narrows to the receiver's own impl type when it has
        // such a method.
        if recv == Some("self") {
            if let Some(ct) = fn_of(self.files, caller)
                .and_then(|f| f.container.as_ref())
                .map(|c| c.type_name.clone())
            {
                let own: Vec<usize> = methods
                    .iter()
                    .copied()
                    .filter(|&c| {
                        fn_of(self.files, &self.nodes[c])
                            .and_then(|f| f.container.as_ref())
                            .is_some_and(|cc| cc.type_name == ct)
                    })
                    .collect();
                if !own.is_empty() {
                    self.add_with_dispatch(&own, out);
                    return;
                }
            }
        }
        self.add_with_dispatch(&methods, out);
    }

    /// Add candidate nodes to `out`; targets that are trait declarations
    /// keep their decl→impl fan-out edges, so adding the decl suffices.
    fn add_with_dispatch(&self, cands: &[usize], out: &mut BTreeSet<usize>) {
        out.extend(cands.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(files: &[(&str, &str)]) -> Vec<SourceFile> {
        files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect()
    }

    fn find(g: &CallGraph, qual: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.qualname == qual)
            .unwrap_or_else(|| {
                panic!(
                    "no node {qual}; have {:?}",
                    g.nodes.iter().map(|n| &n.qualname).collect::<Vec<_>>()
                )
            })
    }

    fn has_edge(g: &CallGraph, from: &str, to: &str) -> bool {
        let (f, t) = (find(g, from), find(g, to));
        g.edges[f].contains(&t)
    }

    #[test]
    fn crate_ident_mapping() {
        assert_eq!(crate_ident("crates/paging/src/lru.rs"), "cadapt_paging");
        assert_eq!(crate_ident("crates/cadapt/src/lib.rs"), "cadapt");
        assert_eq!(crate_ident("shims/rand/src/lib.rs"), "");
    }

    #[test]
    fn file_modules_mapping() {
        assert_eq!(file_modules("crates/x/src/lib.rs"), Vec::<String>::new());
        assert_eq!(file_modules("crates/x/src/a.rs"), ["a"]);
        assert_eq!(file_modules("crates/x/src/a/b.rs"), ["a", "b"]);
        assert_eq!(file_modules("crates/x/src/a/mod.rs"), ["a"]);
        assert_eq!(file_modules("crates/x/tests/t.rs"), Vec::<String>::new());
    }

    #[test]
    fn same_module_bare_call_resolves() {
        let files = model(&[(
            "crates/a/src/lib.rs",
            "pub fn entry() { helper(); }\nfn helper() {}\n",
        )]);
        let g = CallGraph::build(&files);
        assert!(has_edge(&g, "cadapt_a::entry", "cadapt_a::helper"));
    }

    #[test]
    fn cross_crate_call_resolves_through_use_import() {
        let files = model(&[
            (
                "crates/a/src/lib.rs",
                "use cadapt_b::engine::spin;\npub fn entry() { spin(); }\n",
            ),
            ("crates/b/src/engine.rs", "pub fn spin() {}\n"),
            ("crates/c/src/lib.rs", "pub fn spin() {}\n"),
        ]);
        let g = CallGraph::build(&files);
        assert!(has_edge(&g, "cadapt_a::entry", "cadapt_b::engine::spin"));
        // The import names crate b, so the same-name fn in crate c is NOT
        // an edge target.
        assert!(!has_edge(&g, "cadapt_a::entry", "cadapt_c::spin"));
    }

    #[test]
    fn qualified_call_filters_by_module_segment() {
        let files = model(&[
            (
                "crates/a/src/lib.rs",
                "pub fn entry() { cadapt_b::engine::spin(); }\n",
            ),
            ("crates/b/src/engine.rs", "pub fn spin() {}\n"),
            ("crates/c/src/other.rs", "pub fn spin() {}\n"),
        ]);
        let g = CallGraph::build(&files);
        assert!(has_edge(&g, "cadapt_a::entry", "cadapt_b::engine::spin"));
        assert!(!has_edge(&g, "cadapt_a::entry", "cadapt_c::other::spin"));
    }

    #[test]
    fn reexported_fn_falls_back_to_name_fanout() {
        // `montecarlo::trial_rng` is a re-export of `parallel::trial_rng`;
        // module-segment matching fails but the path mentions a
        // first-party crate, so resolution fans out by name.
        let files = model(&[
            (
                "crates/a/src/lib.rs",
                "pub fn entry() { cadapt_b::facade::spin(); }\n",
            ),
            ("crates/b/src/engine.rs", "pub fn spin() {}\n"),
        ]);
        let g = CallGraph::build(&files);
        assert!(has_edge(&g, "cadapt_a::entry", "cadapt_b::engine::spin"));
    }

    #[test]
    fn unresolved_std_call_is_conservatively_ignored() {
        let files = model(&[(
            "crates/a/src/lib.rs",
            "pub fn entry() { std::mem::drop(1); String::from(\"x\"); }\nfn along() {}\n",
        )]);
        let g = CallGraph::build(&files);
        let e = find(&g, "cadapt_a::entry");
        assert!(g.edges[e].is_empty());
    }

    #[test]
    fn method_call_fans_out_to_all_same_name_methods() {
        let files = model(&[
            (
                "crates/a/src/lib.rs",
                "pub struct A;\nimpl A {\n    pub fn go(&self) {}\n}\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub struct B;\nimpl B {\n    pub fn go(&self) {}\n}\npub fn entry(b: &B) { b.go(); }\n",
            ),
        ]);
        let g = CallGraph::build(&files);
        // No type inference: both `go` methods become edge targets.
        assert!(has_edge(&g, "cadapt_b::entry", "cadapt_b::B::go"));
        assert!(has_edge(&g, "cadapt_b::entry", "cadapt_a::A::go"));
    }

    #[test]
    fn self_method_call_narrows_to_own_impl() {
        let files = model(&[(
            "crates/a/src/lib.rs",
            "pub struct A;\nimpl A {\n    pub fn outer(&self) { self.inner(); }\n    fn inner(&self) {}\n}\npub struct Z;\nimpl Z {\n    fn inner(&self) {}\n}\n",
        )]);
        let g = CallGraph::build(&files);
        assert!(has_edge(&g, "cadapt_a::A::outer", "cadapt_a::A::inner"));
        assert!(!has_edge(&g, "cadapt_a::A::outer", "cadapt_a::Z::inner"));
    }

    #[test]
    fn trait_decl_method_fans_to_impls() {
        let files = model(&[(
            "crates/a/src/lib.rs",
            "pub trait Src {\n    fn pull(&self) -> u64;\n    fn twice(&self) -> u64 { self.pull() * 2 }\n}\npub struct S;\nimpl Src for S {\n    fn pull(&self) -> u64 { 7 }\n}\n",
        )]);
        let g = CallGraph::build(&files);
        // `twice` (defaulted) calls `pull` (decl); dispatch reaches the
        // impl on S.
        assert!(has_edge(&g, "cadapt_a::Src::twice", "cadapt_a::Src::pull"));
        assert!(has_edge(&g, "cadapt_a::Src::pull", "cadapt_a::S::pull"));
    }

    #[test]
    fn entries_and_reachability_with_path() {
        let files = model(&[(
            "crates/a/src/lib.rs",
            "pub fn api() { step(); }\nfn step() { deep(); }\nfn deep() {}\nfn orphan() {}\n",
        )]);
        let g = CallGraph::build(&files);
        let r = g.reach_from_entries();
        let deep = find(&g, "cadapt_a::deep");
        assert!(r.reachable(deep));
        assert_eq!(
            g.entry_path(&r, deep),
            ["cadapt_a::api", "cadapt_a::step", "cadapt_a::deep"]
        );
        let orphan = find(&g, "cadapt_a::orphan");
        assert!(!r.reachable(orphan));
    }

    #[test]
    fn cfg_test_fns_and_test_paths_are_not_nodes() {
        let files = model(&[
            (
                "crates/a/src/lib.rs",
                "pub fn api() {}\n#[cfg(test)]\nmod tests {\n    fn t() { super::api(); }\n}\n",
            ),
            ("crates/a/tests/t.rs", "fn t2() {}\n"),
        ]);
        let g = CallGraph::build(&files);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].qualname, "cadapt_a::api");
    }
}
