//! # cadapt-lint — determinism & accounting static analysis
//!
//! A dependency-free, workspace-local static analyzer with a three-layer
//! pipeline: a small hand-rolled lexer ([`lexer`]) tokenizes every
//! first-party `.rs` file under `crates/`; an item-tree parser
//! ([`parse`]) recovers functions, impls, `use` imports and per-body
//! facts; and a workspace call graph ([`graph`]) resolves calls across
//! crates. A registry of rules ([`rules`]) — token-level file rules plus
//! graph-level workspace rules — protects the engine's headline
//! guarantee: **runs are reproducible bit-for-bit from (params, seed)**,
//! and the I/O accounting behind the paper's theorems is exact.
//!
//! | rule | invariant it protects |
//! |------|----------------------|
//! | `float-eq` | bit-identical batched vs per-box totals |
//! | `panic-reach` | no panic site reachable from public API (call path printed) |
//! | `lossy-cast` | exact (non-wrapping) I/O & progress accounting |
//! | `nondet-source` | schedule/process-independent results |
//! | `crate-header` | workspace-wide `unsafe`/docs contract |
//! | `rng-discipline` | per-trial ChaCha8 streams never minted or leaked outside the engine |
//! | `counter-balance` | counters move only through the accounting ledger |
//! | `vm-dispatch` | bytecode opcode dispatch is wildcard-free and exhaustive |
//!
//! Violations that are intentional take an inline waiver ([`waiver`]):
//!
//! ```text
//! // cadapt-lint: allow(nondet-source) -- index is point-probed, never iterated
//! ```
//!
//! Waivers require a justification and are themselves linted: a waiver
//! that suppresses nothing is a `stale-waiver` error, so the waiver set
//! can only shrink as violations are fixed.
//!
//! The binary front-end (`cargo run -p cadapt-lint -- check`) is wired
//! into the CI `lint` job; `tests/` holds a pass/fail fixture corpus per
//! rule plus a self-lint test asserting the workspace is clean.
//!
//! The vendored shims under `shims/` are deliberately **not** scanned:
//! they are stand-ins for third-party crates and follow upstream APIs,
//! not our invariants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod sarif;
pub mod source;
pub mod waiver;

pub use diag::{render_json, Diagnostic};
pub use graph::WorkspaceModel;
pub use rules::{registry, Rule};
pub use sarif::render_sarif;

use source::SourceFile;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lint a set of in-memory files as one workspace: parse everything,
/// build the call graph, run file rules and workspace rules, then apply
/// waivers per file. Diagnostics come back sorted by (path, line, rule).
///
/// Each `rel_path` must be workspace-relative with `/` separators — rule
/// scoping (accounting crates, test collateral, crate roots, the engine
/// module) keys off it.
#[must_use]
pub fn lint_files(inputs: &[(String, String)]) -> Vec<Diagnostic> {
    let files: Vec<SourceFile> = inputs
        .iter()
        .map(|(rel, src)| SourceFile::parse(rel, src))
        .collect();
    let ws = WorkspaceModel::build(files);
    let rules = registry();
    let known: BTreeSet<&'static str> = rules.iter().map(|r| r.id()).collect();

    let mut raw = Vec::new();
    for rule in &rules {
        for file in &ws.files {
            if rule.applies(&file.rel_path) {
                rule.check(file, &mut raw);
            }
        }
        rule.check_workspace(&ws, &mut raw);
    }

    let mut kept = Vec::new();
    for file in &ws.files {
        apply_waivers(file, &mut raw, &known, &mut kept);
    }
    // Diagnostics for paths outside the input set cannot exist, but keep
    // any stragglers rather than silently dropping them.
    kept.append(&mut raw);
    kept.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    kept
}

/// Lint a single file's contents, waivers applied.
///
/// The file is treated as a one-file workspace: workspace rules (e.g.
/// `panic-reach`) see only its own call graph.
#[must_use]
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    lint_files(&[(rel_path.to_string(), src.to_string())])
}

/// Move `raw` diagnostics belonging to `file` into `kept`, suppressing
/// waived ones and appending waiver-hygiene diagnostics (`stale-waiver`,
/// `malformed-waiver`).
fn apply_waivers(
    file: &SourceFile,
    raw: &mut Vec<Diagnostic>,
    known: &BTreeSet<&'static str>,
    kept: &mut Vec<Diagnostic>,
) {
    let rel_path = file.rel_path.as_str();
    let waivers = waiver::collect(&file.lexed.comments, &file.lexed.tokens);
    let mut suppressed = vec![0usize; waivers.len()];
    let mut rest = Vec::new();
    'diags: for d in raw.drain(..) {
        if d.path != rel_path {
            rest.push(d);
            continue;
        }
        for (wi, w) in waivers.iter().enumerate() {
            if w.malformed.is_none()
                && w.target_line == d.line
                && w.rules.iter().any(|r| r == d.rule)
            {
                suppressed[wi] += 1;
                continue 'diags;
            }
        }
        kept.push(d);
    }
    *raw = rest;

    for (w, &hits) in waivers.iter().zip(&suppressed) {
        if let Some(problem) = &w.malformed {
            kept.push(Diagnostic {
                rule: "malformed-waiver",
                path: rel_path.to_string(),
                line: w.line,
                message: problem.clone(),
            });
            continue;
        }
        if let Some(unknown) = w.rules.iter().find(|r| !known.contains(r.as_str())) {
            kept.push(Diagnostic {
                rule: "malformed-waiver",
                path: rel_path.to_string(),
                line: w.line,
                message: format!("waiver names unknown rule `{unknown}` (see `cadapt-lint list`)"),
            });
            continue;
        }
        if hits == 0 {
            kept.push(Diagnostic {
                rule: "stale-waiver",
                path: rel_path.to_string(),
                line: w.line,
                message: format!(
                    "waiver for {} suppresses nothing — the violation it excused is \
                     gone; delete the waiver",
                    w.rules.join(", ")
                ),
            });
        }
    }
}

/// Recursively collect the first-party `.rs` files to lint: everything
/// under `<root>/crates`, excluding build output and the lint fixture
/// corpus (which contains violations on purpose).
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} has no crates/ directory", root.display()),
        ));
    }
    walk(&crates_dir, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`, returning diagnostics
/// sorted by (path, line, rule). All files are analyzed as one unit so
/// the call graph sees every cross-crate edge.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut inputs = Vec::new();
    for path in workspace_files(root)? {
        let rel = rel_path(root, &path);
        let src = fs::read_to_string(&path)?;
        inputs.push((rel, src));
    }
    Ok(lint_files(&inputs))
}

/// Workspace-relative path with `/` separators.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locate the workspace root: the nearest ancestor of `start` containing
/// both `Cargo.toml` and `crates/`.
#[must_use]
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waived_diagnostic_is_suppressed_and_waiver_is_fresh() {
        let src = "fn f(x: f64) -> bool {\n    x == 0.0 // cadapt-lint: allow(float-eq) -- sentinel, never computed\n}\n";
        let diags = lint_source("crates/x/src/m.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn stale_waiver_is_reported() {
        let src = "// cadapt-lint: allow(float-eq) -- nothing here anymore\nfn f() {}\n";
        let diags = lint_source("crates/x/src/m.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "stale-waiver");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn unknown_rule_in_waiver_is_malformed() {
        let src = "fn f(x: f64) -> bool {\n    x == 0.0 // cadapt-lint: allow(no-such-rule) -- whatever\n}\n";
        let diags = lint_source("crates/x/src/m.rs", src);
        assert!(diags.iter().any(|d| d.rule == "malformed-waiver"));
        // The float-eq itself is NOT suppressed by an unknown-rule waiver.
        assert!(diags.iter().any(|d| d.rule == "float-eq"));
    }

    #[test]
    fn missing_justification_is_malformed_and_does_not_suppress() {
        let src = "fn f(x: f64) -> bool {\n    x == 0.0 // cadapt-lint: allow(float-eq)\n}\n";
        let diags = lint_source("crates/x/src/m.rs", src);
        assert!(diags.iter().any(|d| d.rule == "malformed-waiver"));
        assert!(diags.iter().any(|d| d.rule == "float-eq"));
    }

    #[test]
    fn rules_do_not_fire_on_test_paths() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\nfn g() { None::<u32>.unwrap(); }\n";
        assert!(lint_source("crates/x/tests/t.rs", src).is_empty());
        assert!(lint_source("crates/x/benches/b.rs", src).is_empty());
    }
}
