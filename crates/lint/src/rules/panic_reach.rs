//! `panic-reach`: no panic site reachable from a public entry point.

use crate::diag::Diagnostic;
use crate::graph::{fn_of, WorkspaceModel};
use crate::rules::{is_test_or_bin_path, Rule};

/// Flags panic sites (`unwrap`/`expect`/`panic!`/`todo!`/computed
/// indexing) in library code that the workspace call graph shows to be
/// reachable from a public entry point, printing the call path.
pub struct PanicReach;

/// Render a call path for a diagnostic, eliding long middles.
fn render_path(path: &[String]) -> String {
    const KEEP: usize = 3;
    if path.len() <= 2 * KEEP {
        path.join(" -> ")
    } else {
        let head = path.get(..KEEP).unwrap_or_default().join(" -> ");
        let tail = path
            .get(path.len() - KEEP..)
            .unwrap_or_default()
            .join(" -> ");
        format!("{head} -> ... -> {tail}")
    }
}

impl Rule for PanicReach {
    fn id(&self) -> &'static str {
        "panic-reach"
    }

    fn summary(&self) -> &'static str {
        "panic site reachable from a public entry point (call path in diagnostic)"
    }

    fn explain(&self) -> &'static str {
        "The engine is embedded in long-running drivers (the bench harness, \
         the scheduler, the planned `cadapt-serve` daemon). A panic on any \
         path a caller can actually reach turns a recoverable modelling \
         error into a process abort. This rule replaces the purely lexical \
         `no-panic-lib`: it builds a workspace call graph (name-resolved, \
         conservatively over-approximated — see DESIGN.md) and runs a BFS \
         from every public entry point (unrestricted `pub fn`s, trait-impl \
         methods, defaulted trait methods). A panic site — `.unwrap()`, \
         `.expect(…)`, `panic!(…)`, `todo!(…)`, or indexing with a computed \
         index (`xs[i + 1]`, `xs[f(i)]`) — inside a reachable function is \
         flagged at the site, with the shortest call path from the nearest \
         entry printed in the message. Panic sites in functions the graph \
         proves unreachable from public API are NOT flagged; if you delete \
         the last public caller of a panicky helper, its waiver goes stale \
         and must be removed. `tests/`, `benches/`, `examples/`, binary \
         roots, and `#[cfg(test)]` items are exempt; `assert!`/\
         `debug_assert!` and constant indexing are deliberately allowed — \
         stated invariants and pinned layouts are good. Fix: return the \
         crate error type, use `get(…)`/`unwrap_or`/`match`, or — for \
         genuine internal invariants whose violation means the accounting \
         is already wrong — keep the panic and waive it at the site with a \
         justification naming the invariant."
    }

    fn applies(&self, rel_path: &str) -> bool {
        !is_test_or_bin_path(rel_path)
    }

    fn check_workspace(&self, ws: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
        let reach = ws.graph.reach_from_entries();
        for (ni, node) in ws.graph.nodes.iter().enumerate() {
            if !reach.reachable(ni) {
                continue;
            }
            let Some(file) = ws.files.get(node.file) else {
                continue;
            };
            if !self.applies(&file.rel_path) {
                continue;
            }
            let Some(f) = fn_of(&ws.files, node) else {
                continue;
            };
            let via = render_path(&ws.graph.entry_path(&reach, ni));
            let mut flag = |line: u32, what: &str| {
                if file.in_cfg_test(line) {
                    return;
                }
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line,
                    message: format!(
                        "{what} is reachable from public API via {via}; return the \
                         crate error type or waive with the invariant that makes \
                         this unreachable"
                    ),
                });
            };
            for m in &f.events.methods {
                if m.name == "unwrap" || m.name == "expect" {
                    flag(m.line, &format!("`.{}(…)`", m.name));
                }
            }
            for mac in &f.events.macros {
                if mac.name == "panic" || mac.name == "todo" {
                    flag(mac.line, &format!("`{}!(…)`", mac.name));
                }
            }
            for ix in &f.events.indexes {
                if ix.computed {
                    flag(
                        ix.line,
                        "computed-index expression (possible out-of-bounds panic)",
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::render_path;

    #[test]
    fn short_paths_render_whole() {
        let p: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        assert_eq!(render_path(&p), "a -> b -> c");
    }

    #[test]
    fn long_paths_elide_the_middle() {
        let p: Vec<String> = (0..10).map(|i| format!("f{i}")).collect();
        let r = render_path(&p);
        assert!(
            r.starts_with("f0 -> f1 -> f2 -> ... -> f7 -> f8 -> f9"),
            "{r}"
        );
    }
}
