//! `rng-discipline`: RNG streams stay inside the approved engine module.

use crate::diag::Diagnostic;
use crate::rules::{is_test_or_bin_path, Rule};
use crate::source::SourceFile;

/// The one module allowed to construct, clone, or re-aim RNG streams:
/// the deterministic parallel engine.
pub const APPROVED_ENGINE: &str = "crates/analysis/src/parallel.rs";

/// Concrete RNG type names the rule tracks. Generic `R: Rng` parameters
/// are deliberately out of scope — the profile sources thread caller-
/// provided RNGs by design; what must not leak is the *construction* of
/// streams and concrete stream values themselves.
const RNG_TYPES: &[&str] = &[
    "ChaCha8Rng",
    "ChaCha12Rng",
    "ChaCha20Rng",
    "StdRng",
    "SmallRng",
    "ThreadRng",
];

/// Constructor / seeding associated functions on those types.
const CONSTRUCTORS: &[&str] = &[
    "new",
    "seed_from_u64",
    "from_seed",
    "from_entropy",
    "from_rng",
];

/// Methods that re-aim an existing stream.
const REAIMERS: &[&str] = &["set_stream", "set_word_pos", "reseed"];

/// Flags RNG stream construction/cloning/re-seeding outside
/// `cadapt_analysis::parallel`, and trial-RNG escapes via return types or
/// struct field stores anywhere in library code.
pub struct RngDiscipline;

fn is_rng_type(tok: &str) -> bool {
    RNG_TYPES.contains(&tok)
}

impl Rule for RngDiscipline {
    fn id(&self) -> &'static str {
        "rng-discipline"
    }

    fn summary(&self) -> &'static str {
        "RNG streams constructed/cloned/re-aimed outside the parallel engine, or escaping it"
    }

    fn explain(&self) -> &'static str {
        "Bit-identical records from (params, seed) at any `--threads N` \
         depend on exactly one thing: every trial draws from its own \
         ChaCha8 stream, derived as `seed_from_u64(seed)` + \
         `set_stream(trial)`, and nothing else in the workspace mints or \
         re-aims streams. The moment a second module constructs an RNG — \
         or a trial's RNG value escapes the engine via a return value or a \
         struct field and gets reused across trials — results silently \
         depend on scheduling order and the parallel determinism proof \
         (PR 4) is void. This rule flags, in library code outside \
         `crates/analysis/src/parallel.rs`: (a) associated-function calls \
         that construct or seed a concrete RNG type (`ChaCha8Rng::\
         seed_from_u64(…)`, `StdRng::from_entropy()`, …); (b) stream \
         re-aiming method calls (`set_stream`, `set_word_pos`, `reseed`); \
         (c) `.clone()` where the receiver identifier names an RNG \
         (`rng.clone()`, `trial_rng.clone()`). Everywhere — engine \
         included — it flags (d) functions whose return type mentions a \
         concrete RNG type and (e) struct fields of a concrete RNG type: \
         both are escape hatches a stream can leak through. The engine's \
         own `trial_rng` constructor is the one intended escape and \
         carries a waiver naming the invariant that keeps it sound \
         (fresh stream per call, never stored). Generic `R: Rng` \
         parameters are out of scope by design: threading a caller's RNG \
         through is fine, minting one is not. Fix: take the RNG as a \
         parameter, or move the construction into the engine and waive \
         there."
    }

    fn applies(&self, rel_path: &str) -> bool {
        !is_test_or_bin_path(rel_path)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let in_engine = file.rel_path == APPROVED_ENGINE;
        let mut flag = |line: u32, message: String| {
            if file.in_cfg_test(line) {
                return;
            }
            out.push(Diagnostic {
                rule: "rng-discipline",
                path: file.rel_path.clone(),
                line,
                message,
            });
        };

        for f in &file.items.fns {
            // (d) escape via return type — checked everywhere.
            if let Some(ty) = f.ret.iter().find(|t| is_rng_type(t)) {
                flag(
                    f.line,
                    format!(
                        "fn `{}` returns a concrete RNG (`{ty}`): a stream value \
                         escapes the construction site; take the RNG as a parameter \
                         or keep this inside the engine under a waiver",
                        f.name
                    ),
                );
            }
            if in_engine {
                continue;
            }
            // (a) construction / seeding outside the engine.
            for c in &f.events.calls {
                let constructs = c.segments.iter().any(|s| is_rng_type(s))
                    && c.segments
                        .last()
                        .is_some_and(|l| CONSTRUCTORS.contains(&l.as_str()));
                if constructs {
                    flag(
                        c.line,
                        format!(
                            "`{}` constructs an RNG stream outside the parallel \
                             engine ({APPROVED_ENGINE}); derive trial streams only \
                             via the engine's `trial_rng`",
                            c.segments.join("::")
                        ),
                    );
                }
            }
            for m in &f.events.methods {
                // (b) stream re-aiming outside the engine.
                if REAIMERS.contains(&m.name.as_str()) {
                    flag(
                        m.line,
                        format!(
                            "`.{}(…)` re-aims an RNG stream outside the parallel \
                             engine; per-trial streams are assigned once, in \
                             `trial_rng`",
                            m.name
                        ),
                    );
                }
                // (c) cloning a stream outside the engine.
                if m.name == "clone"
                    && m.recv
                        .as_deref()
                        .is_some_and(|r| r.to_ascii_lowercase().contains("rng"))
                {
                    flag(
                        m.line,
                        format!(
                            "`{}.clone()` duplicates an RNG stream outside the \
                             parallel engine: two cursors over one stream make \
                             draw order schedule-dependent",
                            m.recv.as_deref().unwrap_or("rng")
                        ),
                    );
                }
            }
        }

        // (e) escape via field store — checked everywhere.
        for s in &file.items.structs {
            for fld in &s.fields {
                if let Some(ty) = fld.ty.iter().find(|t| is_rng_type(t)) {
                    if file.in_cfg_test(fld.line) {
                        continue;
                    }
                    flag(
                        fld.line,
                        format!(
                            "field `{}.{}` stores a concrete RNG (`{ty}`): a \
                             stream outlives its trial and can be re-drawn across \
                             trials; store the seed and re-derive, or waive with \
                             the invariant that pins its draw order",
                            s.name, fld.name
                        ),
                    );
                }
            }
        }
    }
}
