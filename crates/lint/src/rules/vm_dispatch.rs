//! `vm-dispatch`: the bytecode VM's opcode dispatch stays total.

use crate::diag::Diagnostic;
use crate::parse::FnItem;
use crate::rules::{is_test_or_bin_path, Rule};
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// Flags wildcard or non-exhaustive opcode dispatch in the bytecode VM.
pub struct VmDispatch;

/// True when this function is the designated raw-byte funnel:
/// `Opcode::decode`.
fn is_decode(f: &FnItem) -> bool {
    f.name == "decode"
        && f.container
            .as_ref()
            .is_some_and(|c| c.type_name == "Opcode")
}

impl Rule for VmDispatch {
    fn id(&self) -> &'static str {
        "vm-dispatch"
    }

    fn summary(&self) -> &'static str {
        "opcode matches must be wildcard-free and exhaustive over the Opcode enum"
    }

    fn explain(&self) -> &'static str {
        "Compiled traces are replayed by the bytecode VM \
         (`cadapt_trace::bytecode`), and the corpus CRC pins guarantee a \
         program byte-stream decodes to exactly the access sequence the \
         kernel produced. A `_ => …` arm in an opcode match breaks that \
         guarantee silently: add a fifth opcode, forget one dispatch site, \
         and the wildcard swallows it — the VM decodes the new opcode as a \
         no-op or an early stop, and the first symptom is a wrong replay \
         far from the cause. This rule requires, in the VM module \
         (`bytecode.rs`): (1) an `Opcode` enum as the single opcode \
         vocabulary; (2) every `match` whose arms mention `Opcode::…` to \
         be wildcard-free (no `_` or binding catch-all arm) and exhaustive \
         (every declared variant appears in some arm), so the compiler and \
         this lint both force new opcodes through every dispatch site; \
         (3) raw opcode-byte patterns (`OP_*` constants or byte literals) \
         confined to the one funnel `Opcode::decode`, which must itself \
         mention every variant — unknown bytes surface there as a hard \
         decode error, not as silence. Fix: extend the enum, add the arm \
         at every flagged site, and keep byte-level knowledge inside \
         `decode`/`encode`. Waivers are possible but suspect: a waived \
         dispatch hole is exactly the bug class this rule exists for."
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path.ends_with("/bytecode.rs") && !is_test_or_bin_path(rel_path)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let mut flag = |line: u32, message: String| {
            if file.in_cfg_test(line) {
                return;
            }
            out.push(Diagnostic {
                rule: "vm-dispatch",
                path: file.rel_path.clone(),
                line,
                message,
            });
        };

        // (1) The opcode vocabulary must be an enum in this file.
        let Some(op_enum) = file.items.enums.iter().find(|e| e.name == "Opcode") else {
            flag(
                1,
                "bytecode VM has no `Opcode` enum: opcode dispatch cannot be \
                 checked for exhaustiveness; define the vocabulary as \
                 `enum Opcode` and match on it"
                    .to_string(),
            );
            return;
        };
        let variants: Vec<&str> = op_enum.variants.iter().map(|(n, _)| n.as_str()).collect();

        for f in &file.items.fns {
            let decode = is_decode(f);
            // (3) `decode` must mention every variant in its body.
            if decode {
                if let Some((lo, hi)) = f.body {
                    let body: BTreeSet<&str> = file
                        .lexed
                        .tokens
                        .get(lo..hi)
                        .unwrap_or_default()
                        .iter()
                        .map(|t| t.text.as_str())
                        .collect();
                    let missing: Vec<&str> = variants
                        .iter()
                        .copied()
                        .filter(|v| !body.contains(v))
                        .collect();
                    if !missing.is_empty() {
                        flag(
                            f.line,
                            format!(
                                "`Opcode::decode` never produces variant(s) {}: \
                                 unknown or unhandled bytes must fail loudly, and \
                                 every opcode must be decodable",
                                missing.join(", ")
                            ),
                        );
                    }
                }
            }
            for m in &f.events.matches {
                let mentions_opcode = m.arms.iter().any(|a| a.pat.iter().any(|t| t == "Opcode"));
                let mentions_raw = m
                    .arms
                    .iter()
                    .any(|a| a.pat.iter().any(|t| t.starts_with("OP_") || t == "opcode"));
                // (3) raw byte dispatch outside the funnel.
                if mentions_raw && !mentions_opcode && !decode {
                    flag(
                        m.line,
                        format!(
                            "raw opcode-byte dispatch in `{}`; byte-level knowledge \
                             belongs in `Opcode::decode` — match on `Opcode` here \
                             so new opcodes cannot silently fall through",
                            f.name
                        ),
                    );
                }
                if !mentions_opcode || decode {
                    // Inside `decode` the trailing catch-all is the one
                    // place unknown bytes are allowed to funnel to.
                    continue;
                }
                // (2a) wildcard-free.
                for a in &m.arms {
                    if a.is_catch_all() {
                        flag(
                            a.line,
                            format!(
                                "catch-all arm in opcode dispatch (in `{}`); a new \
                                 opcode would silently take this arm — enumerate \
                                 every `Opcode::…` variant instead",
                                f.name
                            ),
                        );
                    }
                }
                // (2b) exhaustive over the declared variants.
                let seen: BTreeSet<&str> = m
                    .arms
                    .iter()
                    .flat_map(|a| a.pat.iter().map(String::as_str))
                    .collect();
                let missing: Vec<&str> = variants
                    .iter()
                    .copied()
                    .filter(|v| !seen.contains(v))
                    .collect();
                if !missing.is_empty() {
                    flag(
                        m.line,
                        format!(
                            "opcode dispatch in `{}` does not mention variant(s) \
                             {}; every dispatch site must handle every opcode",
                            f.name,
                            missing.join(", ")
                        ),
                    );
                }
            }
        }
    }
}
