//! The rule registry.
//!
//! Each rule has a stable id, a one-line summary (`cadapt-lint list`) and
//! a long explanation tying it to the determinism / accounting invariant
//! it protects (`cadapt-lint explain`). Rules come in two shapes:
//! **file rules** scan one token stream / item tree at a time
//! ([`Rule::check`]), and **workspace rules** run once over the whole
//! parsed workspace and its call graph ([`Rule::check_workspace`]) —
//! that's where path-sensitive analyses like `panic-reach` live. Rules
//! see tokens and the item tree, never types; each one documents the
//! heuristic it uses and the waiver escape hatch.

mod counter_balance;
mod crate_header;
mod cursor_materialize;
mod float_eq;
mod float_ord;
mod lossy_cast;
mod net_confine;
mod nondet_source;
mod panic_reach;
mod rng_discipline;
mod vm_dispatch;

use crate::diag::Diagnostic;
use crate::graph::WorkspaceModel;
use crate::source::SourceFile;

/// A single lint rule.
pub trait Rule {
    /// Stable kebab-case identifier, used in waivers and JSON output.
    fn id(&self) -> &'static str;
    /// One-line summary for `cadapt-lint list`.
    fn summary(&self) -> &'static str;
    /// Long-form explanation for `cadapt-lint explain <rule>`: what the
    /// rule flags, which invariant it protects, and how to fix or waive.
    fn explain(&self) -> &'static str;
    /// Whether the rule flags sites in this workspace-relative path.
    fn applies(&self, rel_path: &str) -> bool;
    /// Scan one file, appending diagnostics. File rules implement this;
    /// the default does nothing.
    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let _ = (file, out);
    }
    /// Run once over the whole workspace model (all parsed files plus the
    /// call graph). Workspace rules implement this; the default does
    /// nothing. Implementations must gate flagged sites on
    /// [`Rule::applies`] and `in_cfg_test` themselves.
    fn check_workspace(&self, ws: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
        let _ = (ws, out);
    }
}

/// All registered rules, in reporting order.
#[must_use]
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(float_eq::FloatEq),
        Box::new(float_ord::FloatOrd),
        Box::new(panic_reach::PanicReach),
        Box::new(lossy_cast::LossyCast),
        Box::new(nondet_source::NondetSource),
        Box::new(net_confine::NetConfine),
        Box::new(crate_header::CrateHeader),
        Box::new(rng_discipline::RngDiscipline),
        Box::new(counter_balance::CounterBalance),
        Box::new(vm_dispatch::VmDispatch),
        Box::new(cursor_materialize::CursorMaterialize),
    ]
}

/// Rule ids that the waiver machinery itself emits. They are valid in
/// error listings but cannot be waived and cannot appear in `allow()`.
pub const META_RULES: [&str; 2] = ["stale-waiver", "malformed-waiver"];

/// True when `rel_path` lives under one of the accounting crates whose
/// arithmetic feeds I/O totals and progress ledgers.
#[must_use]
pub fn in_accounting_crate(rel_path: &str) -> bool {
    ["crates/core/", "crates/recursion/", "crates/paging/"]
        .iter()
        .any(|p| rel_path.starts_with(p))
}

/// True for paths that are test or bench collateral rather than library
/// code: `tests/`, `benches/`, `examples/` directories, binary roots.
#[must_use]
pub fn is_test_or_bin_path(rel_path: &str) -> bool {
    rel_path.contains("/tests/")
        || rel_path.contains("/benches/")
        || rel_path.contains("/examples/")
        || rel_path.contains("/src/bin/")
        || rel_path.ends_with("/main.rs")
        || rel_path.ends_with("/build.rs")
}
