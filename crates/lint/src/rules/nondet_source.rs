//! `nondet-source`: no wall-clock, OS randomness, or hash-order
//! collections in result-affecting code.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::{is_test_or_bin_path, Rule};
use crate::source::SourceFile;

/// Flags `Instant::now`, `SystemTime`, `thread_rng`, and
/// `HashMap`/`HashSet` mentions in library code.
pub struct NondetSource;

impl Rule for NondetSource {
    fn id(&self) -> &'static str {
        "nondet-source"
    }

    fn summary(&self) -> &'static str {
        "Instant::now/SystemTime/thread_rng/HashMap/HashSet in result-affecting code"
    }

    fn explain(&self) -> &'static str {
        "Every run record must be reproducible bit-for-bit from (params, \
         seed): that is the property the golden records pin and the \
         smoothed-analysis experiments assume. Wall clocks \
         (`Instant::now`, `SystemTime`) and OS entropy (`thread_rng`) \
         break it outright; `HashMap`/`HashSet` break it lazily — their \
         iteration order is randomised per process, so the first `for` \
         loop over one (today or in a future refactor) makes results \
         schedule-dependent, exactly the failure mode parallel \
         cache-complexity analyses must exclude. This rule flags every \
         mention in library code, including imports. Fix: `BTreeMap`/ \
         `BTreeSet` (deterministic order), the seeded `rand_chacha` shim \
         for randomness. Sites that provably never iterate (e.g. a \
         point-probed LRU index) or that only feed wall-clock fields \
         excluded from golden comparison keep the type and take a waiver \
         saying exactly that."
    }

    fn applies(&self, rel_path: &str) -> bool {
        !is_test_or_bin_path(rel_path)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let toks = &file.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || file.in_cfg_test(t.line) {
                continue;
            }
            let what = match t.text.as_str() {
                "HashMap" | "HashSet" => {
                    format!("`{}` (iteration order is per-process random)", t.text)
                }
                "SystemTime" => "`SystemTime` (wall clock)".to_string(),
                "thread_rng" => "`thread_rng` (OS entropy)".to_string(),
                "Instant" => {
                    let is_now = matches!(toks.get(i + 1), Some(n) if n.is_punct("::"))
                        && matches!(toks.get(i + 2), Some(n) if n.is_ident("now"));
                    if !is_now {
                        continue;
                    }
                    "`Instant::now` (wall clock)".to_string()
                }
                _ => continue,
            };
            out.push(Diagnostic {
                rule: self.id(),
                path: file.rel_path.clone(),
                line: t.line,
                message: format!(
                    "{what} in result-affecting code; use BTreeMap/BTreeSet or a \
                     seeded RNG, or waive with why results cannot depend on it"
                ),
            });
        }
    }
}
