//! `nondet-source`: no wall-clock, OS randomness, hash-order collections,
//! or ad-hoc worker threads in result-affecting code.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::{is_test_or_bin_path, Rule};
use crate::source::SourceFile;

/// The one module allowed to spawn worker threads: the deterministic
/// trial fan-out engine, whose trial-ordered reduction is what makes
/// threaded results reproducible in the first place.
const APPROVED_ENGINE: &str = "crates/analysis/src/parallel.rs";

/// The one module allowed wall-clock reads and service threads: the job
/// daemon, whose deadline watcher and worker pool live *outside* the
/// result path — every job result it records is produced by the
/// deterministic engine and journalled byte-for-byte.
const APPROVED_SERVICE: &str = "crates/serve/src/daemon.rs";

/// Flags `Instant::now`, `SystemTime`, `thread_rng`,
/// `HashMap`/`HashSet`, and ad-hoc thread fan-out (`thread::spawn`,
/// `.spawn(..)`, `crossbeam`) in library code.
pub struct NondetSource;

impl Rule for NondetSource {
    fn id(&self) -> &'static str {
        "nondet-source"
    }

    fn summary(&self) -> &'static str {
        "Instant::now/SystemTime/thread_rng/HashMap/HashSet/ad-hoc spawn in result-affecting code"
    }

    fn explain(&self) -> &'static str {
        "Every run record must be reproducible bit-for-bit from (params, \
         seed): that is the property the golden records pin and the \
         smoothed-analysis experiments assume. Wall clocks \
         (`Instant::now`, `SystemTime`) and OS entropy (`thread_rng`) \
         break it outright; `HashMap`/`HashSet` break it lazily — their \
         iteration order is randomised per process, so the first `for` \
         loop over one (today or in a future refactor) makes results \
         schedule-dependent, exactly the failure mode parallel \
         cache-complexity analyses must exclude. Ad-hoc worker threads \
         (`thread::spawn`, scope `.spawn(..)`, `crossbeam`) break it the \
         same way: an unordered reduction makes aggregates depend on the \
         OS schedule. This rule flags every mention in library code, \
         including imports. Fix: `BTreeMap`/`BTreeSet` (deterministic \
         order), the seeded `rand_chacha` shim for randomness, and \
         `cadapt_analysis::parallel` — the one approved engine, whose \
         trial-ordered reduction is bit-identical at any thread count — \
         for fan-out. Two modules are carved out by construction: the \
         fan-out engine itself, and the job daemon \
         (`crates/serve/src/daemon.rs`), which may spawn service threads \
         and read `Instant::now` for deadline enforcement because job \
         *results* there come solely from the deterministic engine and \
         cross the journal before anything observes them. Sites that \
         provably never iterate (e.g. a point-probed LRU index) or that \
         only feed wall-clock fields excluded from golden comparison keep \
         the type and take a waiver saying exactly that."
    }

    fn applies(&self, rel_path: &str) -> bool {
        !is_test_or_bin_path(rel_path)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let toks = &file.lexed.tokens;
        // The fan-out engine may spawn; everything else routes through it.
        let approved_engine = file.rel_path == APPROVED_ENGINE;
        // The daemon may spawn service threads and read the clock for
        // deadlines; its job results come from the deterministic engine.
        let approved_service = file.rel_path == APPROVED_SERVICE;
        const DETERMINISM_FIX: &str = "use BTreeMap/BTreeSet or a seeded RNG";
        const THREADING_FIX: &str =
            "route fan-out through cadapt_analysis::parallel (trial-ordered reduction)";
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || file.in_cfg_test(t.line) {
                continue;
            }
            let (what, fix) = match t.text.as_str() {
                "HashMap" | "HashSet" => (
                    format!("`{}` (iteration order is per-process random)", t.text),
                    DETERMINISM_FIX,
                ),
                "SystemTime" => ("`SystemTime` (wall clock)".to_string(), DETERMINISM_FIX),
                "thread_rng" => ("`thread_rng` (OS entropy)".to_string(), DETERMINISM_FIX),
                "Instant" => {
                    let is_now = matches!(toks.get(i + 1), Some(n) if n.is_punct("::"))
                        && matches!(toks.get(i + 2), Some(n) if n.is_ident("now"));
                    if !is_now || approved_service {
                        continue;
                    }
                    ("`Instant::now` (wall clock)".to_string(), DETERMINISM_FIX)
                }
                "crossbeam" => {
                    if approved_engine {
                        continue;
                    }
                    (
                        "`crossbeam` (ad-hoc worker threads)".to_string(),
                        THREADING_FIX,
                    )
                }
                "spawn" => {
                    // Only invocations (`thread::spawn`, `scope.spawn`)
                    // fan out work; defining an item named `spawn` or
                    // `spawn_label` does not.
                    let invoked = i > 0
                        && matches!(toks.get(i - 1), Some(p) if p.is_punct("::") || p.is_punct("."));
                    if approved_engine || approved_service || !invoked {
                        continue;
                    }
                    (
                        "`spawn` (ad-hoc worker threads, unordered reduction)".to_string(),
                        THREADING_FIX,
                    )
                }
                _ => continue,
            };
            out.push(Diagnostic {
                rule: self.id(),
                path: file.rel_path.clone(),
                line: t.line,
                message: format!(
                    "{what} in result-affecting code; {fix}, or waive with \
                     why results cannot depend on it"
                ),
            });
        }
    }
}
