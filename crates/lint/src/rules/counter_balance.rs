//! `counter-balance`: execution counters move only through the ledger.

use crate::diag::Diagnostic;
use crate::graph::WorkspaceModel;
use crate::rules::{is_test_or_bin_path, Rule};
use std::collections::BTreeSet;

/// The one module allowed to mutate counter fields directly: the
/// accounting ledger itself.
pub const APPROVED_LEDGER: &str = "crates/core/src/counters.rs";

/// Crates whose code feeds the I/O / progress ledgers and is therefore
/// in scope for direct-mutation checks.
const SCOPED: &[&str] = &[
    "crates/core/",
    "crates/recursion/",
    "crates/paging/",
    "crates/trace/",
];

/// Fallback counter-field names, used when the workspace under analysis
/// does not contain the `CounterSnapshot` declaration (single-file runs,
/// fixtures). Kept in sync with `crates/core/src/counters.rs` by the
/// self-lint test.
const FALLBACK_FIELDS: &[&str] = &[
    "boxes_advanced",
    "cursor_steps",
    "ios_charged",
    "cache_hits",
    "cache_evictions",
];

/// Flags direct writes to execution-counter fields outside the approved
/// accounting helpers.
pub struct CounterBalance;

impl Rule for CounterBalance {
    fn id(&self) -> &'static str {
        "counter-balance"
    }

    fn summary(&self) -> &'static str {
        "execution-counter fields mutated outside the accounting helpers"
    }

    fn explain(&self) -> &'static str {
        "The paper's theorems are claims about exact counts — boxes \
         advanced, cursor steps, I/Os charged, cache hits and evictions — \
         and the golden records pin those counts byte-for-byte. Every \
         counter therefore moves through the accounting helpers in \
         `cadapt_core::counters` (`count_io`, `count_boxes`, \
         `count_cursor_steps`, `count_cache_hit`, …), which keep the \
         thread-local ledger and the snapshot struct in step. A stray \
         `snap.ios_charged += 1` in a kernel bypasses the ledger: totals \
         drift from the analytical model, and the divergence only shows up \
         as a golden mismatch long after the commit that caused it. This \
         rule reads the `CounterSnapshot` field names from the workspace \
         itself and flags any assignment to one of them (`=`, `+=`, …) in \
         library code under `crates/{core,recursion,paging,trace}`, \
         except inside the ledger module (`crates/core/src/counters.rs`). \
         `#[cfg(test)]` items and test collateral are exempt. Fix: call \
         the matching `count_*` helper; if a genuinely new accounting \
         channel is needed, add a helper to the ledger first, or waive \
         with a justification naming why the ledger must be bypassed."
    }

    fn applies(&self, rel_path: &str) -> bool {
        !is_test_or_bin_path(rel_path)
            && rel_path != APPROVED_LEDGER
            && SCOPED.iter().any(|p| rel_path.starts_with(p))
    }

    fn check_workspace(&self, ws: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
        // Counter-field names come from the workspace's own
        // `CounterSnapshot` declaration when present.
        let mut fields: BTreeSet<String> = BTreeSet::new();
        for file in &ws.files {
            for s in &file.items.structs {
                if s.name == "CounterSnapshot" {
                    fields.extend(s.fields.iter().map(|f| f.name.clone()));
                }
            }
        }
        if fields.is_empty() {
            fields.extend(FALLBACK_FIELDS.iter().map(|s| (*s).to_string()));
        }

        for file in &ws.files {
            if !self.applies(&file.rel_path) {
                continue;
            }
            for f in &file.items.fns {
                for set in &f.events.field_sets {
                    if fields.contains(&set.field) && !file.in_cfg_test(set.line) {
                        out.push(Diagnostic {
                            rule: self.id(),
                            path: file.rel_path.clone(),
                            line: set.line,
                            message: format!(
                                "counter field `{}` mutated directly (in `{}`); \
                                 route it through the accounting helpers in \
                                 cadapt_core::counters so the ledger and the \
                                 snapshot stay in step",
                                set.field, f.name
                            ),
                        });
                    }
                }
            }
        }
    }
}
