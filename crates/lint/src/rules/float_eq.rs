//! `float-eq`: no `==` / `!=` against float literals.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::{is_test_or_bin_path, Rule};
use crate::source::SourceFile;

/// Flags `==` / `!=` where either operand is a float literal.
pub struct FloatEq;

impl Rule for FloatEq {
    fn id(&self) -> &'static str {
        "float-eq"
    }

    fn summary(&self) -> &'static str {
        "exact ==/!= against a float literal; compare to_bits() or restructure"
    }

    fn explain(&self) -> &'static str {
        "PR 2's headline guarantee is that batched and per-box advancement \
         produce bit-identical totals, and the golden records pin exact \
         bytes. Exact float equality is the canonical way to silently lose \
         that property: a comparison that holds on one code path can fail \
         after an algebraically-equivalent reassociation on another. This \
         rule flags `==`/`!=` where either side is a float literal (the \
         lexer cannot do type inference, so float-typed variables compared \
         to each other are out of scope — clippy::float_cmp covers those). \
         Fix: compare `f.to_bits()` when you mean bit-identity, restructure \
         the guard (e.g. match on a domain enum) when you mean a sentinel, \
         or waive with a justification explaining why exact equality is \
         well-defined at this site (e.g. the value is only ever assigned \
         the literal 0.0 and never computed)."
    }

    fn applies(&self, rel_path: &str) -> bool {
        !is_test_or_bin_path(rel_path)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let toks = &file.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if !(t.is_punct("==") || t.is_punct("!=")) {
                continue;
            }
            if file.in_cfg_test(t.line) {
                continue;
            }
            let prev_float = i
                .checked_sub(1)
                .and_then(|p| toks.get(p))
                .is_some_and(|n| n.kind == TokenKind::Float);
            let next_float = matches!(toks.get(i + 1), Some(n) if n.kind == TokenKind::Float);
            // `x == -1.0`: a unary minus in front of the literal.
            let neg_float = matches!(toks.get(i + 1), Some(n) if n.is_punct("-"))
                && matches!(toks.get(i + 2), Some(n2) if n2.kind == TokenKind::Float);
            if prev_float || next_float || neg_float {
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "exact `{}` against a float literal; compare to_bits() for \
                         bit-identity, restructure the sentinel, or waive with a \
                         justification",
                        t.text
                    ),
                });
            }
        }
    }
}
