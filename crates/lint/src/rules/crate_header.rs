//! `crate-header`: every crate root carries the agreed lint header.

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;

/// Checks that `crates/*/src/lib.rs` declares
/// `#![forbid(unsafe_code)]` (or `deny`) and `#![warn(missing_docs)]`
/// (or stricter).
pub struct CrateHeader;

impl Rule for CrateHeader {
    fn id(&self) -> &'static str {
        "crate-header"
    }

    fn summary(&self) -> &'static str {
        "crate root must #![forbid(unsafe_code)] and #![warn(missing_docs)]"
    }

    fn explain(&self) -> &'static str {
        "The workspace-wide guarantees (no unsafe, documented public API) \
         are only workspace-wide if every crate root opts in — a new crate \
         added without the header block silently weakens them. This rule \
         requires every `crates/*/src/lib.rs` to contain both \
         `#![forbid(unsafe_code)]` (deny also accepted) and \
         `#![warn(missing_docs)]` (deny/forbid also accepted). The \
         `[workspace.lints]` table enforces the same at compile time; the \
         header keeps the contract visible in the file itself and guards \
         against a crate omitting `[lints] workspace = true`. There is no \
         sensible waiver: new crates take the header."
    }

    fn applies(&self, rel_path: &str) -> bool {
        // Exactly crates/<name>/src/lib.rs
        let parts: Vec<&str> = rel_path.split('/').collect();
        matches!(parts.as_slice(), ["crates", _, "src", "lib.rs"])
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let mut has_unsafe_header = false;
        let mut has_docs_header = false;
        let toks = &file.lexed.tokens;
        // Inner attribute shape: `#` `!` `[` level `(` lint `)` `]`
        for w in toks.windows(7) {
            if !(w[0].is_punct("#") && w[1].is_punct("!") && w[2].is_punct("[")) {
                continue;
            }
            let level = &w[3];
            let open = &w[4];
            let lint = &w[5];
            let close = &w[6];
            if !(open.is_punct("(") && close.is_punct(")")) {
                continue;
            }
            if lint.is_ident("unsafe_code") && (level.is_ident("forbid") || level.is_ident("deny"))
            {
                has_unsafe_header = true;
            }
            if lint.is_ident("missing_docs")
                && (level.is_ident("warn") || level.is_ident("deny") || level.is_ident("forbid"))
            {
                has_docs_header = true;
            }
        }
        let mut missing = Vec::new();
        if !has_unsafe_header {
            missing.push("#![forbid(unsafe_code)]");
        }
        if !has_docs_header {
            missing.push("#![warn(missing_docs)]");
        }
        if !missing.is_empty() {
            out.push(Diagnostic {
                rule: self.id(),
                path: file.rel_path.clone(),
                line: 1,
                message: format!("crate root is missing {}", missing.join(" and ")),
            });
        }
    }
}
