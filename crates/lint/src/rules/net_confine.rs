//! `net-confine`: network endpoints live in the service crate and
//! nowhere else.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::{is_test_or_bin_path, Rule};
use crate::source::SourceFile;

/// The one crate allowed to open sockets: the job service, whose daemon
/// front end is the workspace's single network boundary.
const APPROVED_CRATE_PREFIX: &str = "crates/serve/";

/// Flags `TcpListener`, `TcpStream`, `UdpSocket`, `UnixListener`, and
/// `UnixStream` in library code outside `crates/serve`.
pub struct NetConfine;

impl Rule for NetConfine {
    fn id(&self) -> &'static str {
        "net-confine"
    }

    fn summary(&self) -> &'static str {
        "TcpListener/TcpStream/UdpSocket outside the service crate (crates/serve)"
    }

    fn explain(&self) -> &'static str {
        "Every run record is a pure function of (params, seed); the one \
         place the outside world may reach in is the job service's \
         NDJSON-over-TCP front end, where every byte crosses a typed \
         protocol parser and every state transition crosses the \
         CRC-enveloped journal before it takes effect. A socket opened \
         anywhere else — an engine module phoning home with progress, an \
         experiment fetching an input, a debug backdoor listener — \
         bypasses both boundaries: it injects untyped, unjournaled, \
         schedule-dependent state into code whose results the goldens pin \
         bit-for-bit, and it widens the crash-safety audit surface from \
         one crate to the whole workspace. This rule flags every mention \
         of `TcpListener`, `TcpStream`, `UdpSocket`, `UnixListener`, or \
         `UnixStream` (including imports) in library code outside \
         `crates/serve/`; binaries, tests, and benches stay exempt so \
         CLIs and harnesses can drive the daemon as clients. Fix: route \
         the interaction through `cadapt-serve`'s protocol (submit a job, \
         poll `status`, read `results`), or move the endpoint into the \
         service crate where the journal and admission control cover it. \
         A site that provably never exchanges result-affecting data may \
         keep the type and take a waiver saying exactly that."
    }

    fn applies(&self, rel_path: &str) -> bool {
        !is_test_or_bin_path(rel_path) && !rel_path.starts_with(APPROVED_CRATE_PREFIX)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for t in &file.lexed.tokens {
            if t.kind != TokenKind::Ident || file.in_cfg_test(t.line) {
                continue;
            }
            match t.text.as_str() {
                "TcpListener" | "TcpStream" | "UdpSocket" | "UnixListener" | "UnixStream" => {}
                _ => continue,
            }
            out.push(Diagnostic {
                rule: self.id(),
                path: file.rel_path.clone(),
                line: t.line,
                message: format!(
                    "`{}` outside the service crate: sockets bypass the \
                     typed protocol and the write-ahead journal; route \
                     through cadapt-serve (or move the endpoint into \
                     crates/serve), or waive with why no result-affecting \
                     data crosses it",
                    t.text
                ),
            });
        }
    }
}
