//! `cursor-materialize`: no eager materialisation inside the
//! streaming-cursor modules whose contract is O(1) resident state.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::Rule;
use crate::source::SourceFile;

/// The modules that advertise the constant-memory streaming contract:
/// the cursor trait and combinators, the contention scenarios built on
/// them, the two run-draining drivers (execution and trace replay), the
/// streaming trace summariser, and the experiment that pins the claim.
/// A `.collect()`/`.to_vec()` in any of these is a pipeline quietly
/// buffering what it promised to stream.
const STREAMING_MODULES: [&str; 6] = [
    "crates/core/src/cursor.rs",
    "crates/profiles/src/scenario.rs",
    "crates/recursion/src/run.rs",
    "crates/paging/src/replay.rs",
    "crates/trace/src/summary.rs",
    "crates/bench/src/experiments/e16_streaming_contention.rs",
];

/// Flags `.collect(..)` and `.to_vec()` invocations in the streaming
/// modules listed in [`STREAMING_MODULES`].
pub struct CursorMaterialize;

impl Rule for CursorMaterialize {
    fn id(&self) -> &'static str {
        "cursor-materialize"
    }

    fn summary(&self) -> &'static str {
        ".collect(..)/.to_vec() inside the constant-memory streaming-cursor modules"
    }

    fn explain(&self) -> &'static str {
        "The streaming-cursor layer exists so contention pipelines run in \
         O(1) resident state at any length — BENCH_9's flat-peak-memory \
         assertion and E16's gigabyte-scale replays depend on it. One \
         `.collect::<Vec<_>>()` or `.to_vec()` on a run stream silently \
         re-materialises the profile and turns the constant-memory claim \
         into a function of pipeline length, the exact failure the cursor \
         refactor removed. This rule flags every `.collect(..)` and \
         `.to_vec()` invocation in the modules that carry the streaming \
         contract (cursor combinators, scenarios, the run-draining \
         drivers, the trace summariser, E16). Fix: keep the data a \
         cursor — chain combinators, fold as you drain, or push rows \
         into the bounded report types. Genuinely O(1)-or-O(tenants) \
         setup work (a fixed menu, one slot per tenant, an explicitly \
         `retaining` history) keeps the call and takes a waiver saying \
         why the allocation cannot grow with pipeline length."
    }

    fn applies(&self, rel_path: &str) -> bool {
        STREAMING_MODULES.contains(&rel_path)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let toks = &file.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || file.in_cfg_test(t.line) {
                continue;
            }
            let what = match t.text.as_str() {
                "collect" => "`.collect(..)`",
                "to_vec" => "`.to_vec()`",
                _ => continue,
            };
            // Only method invocations materialise; an item *named*
            // `collect` does not.
            let invoked = i > 0 && matches!(toks.get(i - 1), Some(p) if p.is_punct("."));
            if !invoked {
                continue;
            }
            out.push(Diagnostic {
                rule: self.id(),
                path: file.rel_path.clone(),
                line: t.line,
                message: format!(
                    "{what} in a streaming-cursor module buffers what the \
                     pipeline promised to stream; keep it a cursor (chain \
                     combinators, fold while draining), or waive with why \
                     the allocation is bounded independent of pipeline \
                     length"
                ),
            });
        }
    }
}
