//! `float-ord`: no `partial_cmp` in library code; order floats with
//! `total_cmp`.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::{is_test_or_bin_path, Rule};
use crate::source::SourceFile;

/// Flags `.partial_cmp(` / `partial_cmp` comparator references in library
/// code outside `#[cfg(test)]`.
pub struct FloatOrd;

impl Rule for FloatOrd {
    fn id(&self) -> &'static str {
        "float-ord"
    }

    fn summary(&self) -> &'static str {
        "partial_cmp in library code; use f64::total_cmp (total, NaN-safe)"
    }

    fn explain(&self) -> &'static str {
        "Sorting or maximising by `partial_cmp` forces a decision at every \
         NaN: `.unwrap()` panics, `unwrap_or(Equal)` silently produces an \
         order that depends on the input permutation — and either way the \
         result is not a total order, so two runs that visit candidates in \
         different orders can disagree on the winner. That breaks the \
         bit-identical determinism the golden records and the analytic \
         cache model's equivalence proofs rely on (the analytic module \
         compares potentials and speedup ratios; a permutation-dependent \
         sort there would un-pin the goldens). This rule flags the \
         `partial_cmp` identifier — method calls and comparator references \
         alike — in library sources; tests, benches, examples, and binary \
         roots are exempt. Fix: `f64::total_cmp` (total over all floats, \
         IEEE 754 totalOrder, no Option); for non-float `PartialOrd` types \
         prefer `Ord::cmp`, or waive with a justification for why the \
         domain excludes incomparable values."
    }

    fn applies(&self, rel_path: &str) -> bool {
        !is_test_or_bin_path(rel_path)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let toks = &file.lexed.tokens;
        for t in toks {
            if t.kind != TokenKind::Ident || t.text != "partial_cmp" {
                continue;
            }
            if file.in_cfg_test(t.line) {
                continue;
            }
            out.push(Diagnostic {
                rule: self.id(),
                path: file.rel_path.clone(),
                line: t.line,
                message: "`partial_cmp` in library code; use `f64::total_cmp` (or `Ord::cmp`) \
                          for a total, NaN-safe order, or waive with the domain argument that \
                          excludes incomparable values"
                    .to_string(),
            });
        }
    }
}
