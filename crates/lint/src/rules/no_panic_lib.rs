//! `no-panic-lib`: no `unwrap`/`expect`/`panic!`/`todo!` in library code.

use crate::diag::Diagnostic;
use crate::rules::{is_test_or_bin_path, Rule};
use crate::source::SourceFile;

/// Flags panicking calls in library code outside `#[cfg(test)]`.
pub struct NoPanicLib;

impl Rule for NoPanicLib {
    fn id(&self) -> &'static str {
        "no-panic-lib"
    }

    fn summary(&self) -> &'static str {
        "unwrap/expect/panic!/todo! in library code outside tests"
    }

    fn explain(&self) -> &'static str {
        "The engine is embedded in long-running drivers (the bench harness, \
         the scheduler, downstream users of the `cadapt` facade). A panic \
         in library code turns a recoverable modelling error into a process \
         abort — and, worse, panics hide in paths the goldens never \
         exercise. This rule flags `.unwrap()`, `.expect(…)`, `panic!(…)` \
         and `todo!(…)` in library sources; `tests/`, `benches/`, \
         `examples/`, binary roots, and `#[cfg(test)]` items are exempt. \
         Fix: return the crate error type, use `unwrap_or`/`match`, or — \
         for genuine internal invariants whose violation means the \
         accounting is already wrong — keep the panic and waive it with a \
         justification naming the invariant. `assert!`/`debug_assert!` are \
         deliberately allowed: stated invariants are good. Since the \
         fault-tolerance rework the experiment harness crate \
         (`crates/bench`) is covered like any other library: its fallible \
         paths return `BenchError` and only `main.rs` (a binary root, \
         exempt by path) maps errors to exit codes."
    }

    fn applies(&self, rel_path: &str) -> bool {
        !is_test_or_bin_path(rel_path)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let toks = &file.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            let flagged = match t.text.as_str() {
                // method calls: `.unwrap()` / `.expect(`
                "unwrap" | "expect" => {
                    t.kind == crate::lexer::TokenKind::Ident
                        && i > 0
                        && toks[i - 1].is_punct(".")
                        && matches!(toks.get(i + 1), Some(n) if n.is_punct("("))
                }
                // macros: `panic!(` / `todo!(`
                "panic" | "todo" => {
                    t.kind == crate::lexer::TokenKind::Ident
                        && matches!(toks.get(i + 1), Some(n) if n.is_punct("!"))
                }
                _ => false,
            };
            if flagged && !file.in_cfg_test(t.line) {
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line: t.line,
                    message: format!(
                        "`{}` in library code; return the crate error type or waive \
                         with the invariant that makes this unreachable",
                        t.text
                    ),
                });
            }
        }
    }
}
