//! `lossy-cast`: no `as` casts to integer types in the accounting crates.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::{in_accounting_crate, is_test_or_bin_path, Rule};
use crate::source::SourceFile;

/// Integer target types an `as` cast can silently truncate or re-sign to.
const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Flags `expr as <int-type>` inside the accounting crates.
pub struct LossyCast;

impl Rule for LossyCast {
    fn id(&self) -> &'static str {
        "lossy-cast"
    }

    fn summary(&self) -> &'static str {
        "`as <int>` cast in accounting crates (core/recursion/paging)"
    }

    fn explain(&self) -> &'static str {
        "I/O totals, progress counts, and box geometry live in u64/u128 \
         (`Blocks`, `Io`, `Leaves`); an `as` cast silently wraps on \
         overflow and silently truncates float→int, which corrupts the \
         accounting the paper's theorems (and our golden records) depend \
         on — analytical cache models live or die by exact counting. This \
         rule flags every `as <integer-type>` in crates/core, \
         crates/recursion, and crates/paging (test code exempt). The lexer \
         cannot see the source type, so provably-lossless widenings are \
         flagged too — write them as `T::from(x)` / `Io::from(x)`, which \
         the compiler checks. For narrowing, use the checked helpers in \
         `cadapt_core::cast` (`usize_from_u64`, `u64_from_usize`, \
         `u32_from_usize`, `u64_from_f64`, …), which panic loudly on overflow \
         instead of wrapping. Sites where wrapping is genuinely intended \
         (none are known) would need a waiver with a justification."
    }

    fn applies(&self, rel_path: &str) -> bool {
        in_accounting_crate(rel_path) && !is_test_or_bin_path(rel_path)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let toks = &file.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident("as") {
                continue;
            }
            let Some(target) = toks.get(i + 1) else {
                continue;
            };
            if target.kind != TokenKind::Ident || !INT_TYPES.contains(&target.text.as_str()) {
                continue;
            }
            // `use foo as u32` cannot occur (keywords); `as` after `use`
            // renames, but renaming *to* a primitive type name is not
            // possible, so every hit here is a cast.
            if file.in_cfg_test(t.line) {
                continue;
            }
            out.push(Diagnostic {
                rule: self.id(),
                path: file.rel_path.clone(),
                line: t.line,
                message: format!(
                    "`as {}` in accounting code; use `{}::from` for lossless widening \
                     or a `cadapt_core::cast` checked helper for narrowing",
                    target.text, target.text
                ),
            });
        }
    }
}
