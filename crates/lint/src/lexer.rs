//! A small hand-rolled Rust lexer: just enough token structure for the
//! lint rules, with exact line numbers and full comment/string awareness.
//!
//! The lexer deliberately does **not** attempt full fidelity with rustc
//! (no shebang handling, no `c"…"` C-strings, no float-suffix edge cases
//! like `1.` before a method call — which rustc rejects anyway). What it
//! guarantees is the property the rules depend on: nothing inside a
//! comment, string, char literal, or raw string ever surfaces as a code
//! token, and every token knows the 1-based line it starts on.

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, stripped of `r#`).
    Ident,
    /// Integer literal (decimal, hex, octal, binary), suffix included.
    Int,
    /// Float literal (has a fractional part, exponent, or float suffix).
    Float,
    /// String, byte-string, raw-string, or char literal.
    Literal,
    /// Lifetime such as `'a` (also `'static`).
    Lifetime,
    /// Punctuation / operator, possibly multi-character (`==`, `::`, `->`).
    Punct,
}

/// One token of Rust source.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text exactly as written (raw idents keep their `r#`).
    pub text: String,
    /// 1-based line number the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this token is an identifier with exactly this text.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is punctuation with exactly this text.
    #[must_use]
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// A comment with its position, used for waiver parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the delimiters (`// …` or `/* … */`).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when nothing but whitespace precedes the comment on its line.
    pub own_line: bool,
}

/// Lexer output: the token stream plus the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order (line and block, doc comments included).
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. Never fails: unrecognised bytes are skipped so that a
/// half-written fixture still produces a useful stream.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    line_has_code: bool,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            line_has_code: false,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Consume and return the byte at the cursor. At end of input this is
    /// a no-op returning 0: callers that blindly consume an escape or a
    /// literal's content byte (`string_body`, `char_body`) must not push
    /// the cursor past the buffer, or token slices would overrun.
    fn bump(&mut self) -> u8 {
        let Some(&b) = self.bytes.get(self.pos) else {
            return 0;
        };
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_has_code = false;
        }
        b
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.out.tokens.push(Token { kind, text, line });
        self.line_has_code = true;
    }

    fn run(mut self) -> Lexed {
        while self.pos < self.bytes.len() {
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'r' | b'b' if self.maybe_raw_or_byte_literal() => {}
                b'"' => self.string_literal(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        let own_line = !self.line_has_code;
        while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        self.out.comments.push(Comment {
            text: String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned(),
            line,
            own_line,
        });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        let own_line = !self.line_has_code;
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            text: String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned(),
            line,
            own_line,
        });
    }

    /// Handle `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'`, and raw
    /// identifiers `r#ident`. Returns true if it consumed anything.
    fn maybe_raw_or_byte_literal(&mut self) -> bool {
        let b0 = self.peek(0);
        // b"…" / b'…'
        if b0 == b'b' {
            match self.peek(1) {
                b'"' => {
                    let start = self.pos;
                    let line = self.line;
                    self.bump();
                    self.string_body();
                    self.push(TokenKind::Literal, start, line);
                    return true;
                }
                b'\'' => {
                    let start = self.pos;
                    let line = self.line;
                    self.bump(); // b
                    self.char_body();
                    self.push(TokenKind::Literal, start, line);
                    return true;
                }
                b'r' if matches!(self.peek(2), b'"' | b'#') => {
                    let start = self.pos;
                    let line = self.line;
                    self.bump();
                    self.bump();
                    self.raw_string_body();
                    self.push(TokenKind::Literal, start, line);
                    return true;
                }
                _ => return false,
            }
        }
        // r"…" / r#"…"# / r#ident
        if b0 == b'r' {
            match self.peek(1) {
                b'"' => {
                    let start = self.pos;
                    let line = self.line;
                    self.bump();
                    self.raw_string_body();
                    self.push(TokenKind::Literal, start, line);
                    return true;
                }
                b'#' => {
                    // Count hashes; a quote after them means raw string,
                    // an identifier character means raw identifier.
                    let mut ahead = 1;
                    while self.peek(ahead) == b'#' {
                        ahead += 1;
                    }
                    if self.peek(ahead) == b'"' {
                        let start = self.pos;
                        let line = self.line;
                        self.bump();
                        self.raw_string_body();
                        self.push(TokenKind::Literal, start, line);
                    } else {
                        // raw identifier r#foo
                        let start = self.pos;
                        let line = self.line;
                        self.bump(); // r
                        self.bump(); // #
                        while is_ident_continue(self.peek(0)) {
                            self.bump();
                        }
                        self.push(TokenKind::Ident, start, line);
                    }
                    return true;
                }
                _ => return false,
            }
        }
        false
    }

    /// Consume `#…#"…"#…#` with the cursor on the first `#` or the quote.
    fn raw_string_body(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != b'"' {
            return;
        }
        self.bump();
        loop {
            if self.pos >= self.bytes.len() {
                return;
            }
            if self.bump() == b'"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(0) == b'#' {
                    matched += 1;
                    self.bump();
                }
                if matched == hashes {
                    return;
                }
            }
        }
    }

    fn string_literal(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.string_body();
        self.push(TokenKind::Literal, start, line);
    }

    /// Consume a `"…"` body with escapes; cursor on the opening quote.
    fn string_body(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'"' => return,
                _ => {}
            }
        }
    }

    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        let line = self.line;
        // Lifetime: 'ident not closed by a quote. Char: anything else.
        if is_ident_start(self.peek(1)) && self.peek(1) != b'\\' {
            // Find the end of the identifier run.
            let mut ahead = 2;
            while is_ident_continue(self.peek(ahead)) {
                ahead += 1;
            }
            if self.peek(ahead) != b'\'' {
                // Lifetime.
                self.bump(); // '
                while is_ident_continue(self.peek(0)) {
                    self.bump();
                }
                self.push(TokenKind::Lifetime, start, line);
                return;
            }
        }
        // Char literal.
        self.char_body();
        self.push(TokenKind::Literal, start, line);
    }

    /// Consume a char-literal body with the cursor on the opening quote:
    /// escapes (`'\''`, `'\\'`, `'\x41'`, `'\u{1F600}'`) and multi-byte
    /// UTF-8 scalars. The scan never crosses a newline, so an unpaired
    /// quote damages at most the rest of its own line.
    fn char_body(&mut self) {
        self.bump(); // opening quote
        if self.peek(0) == b'\\' {
            self.bump();
            // The escaped character itself ('\'' and '\\' end right after
            // it); longer escapes (\x41, \u{…}) run until the quote.
            self.bump();
        } else if self.peek(0) != b'\'' {
            self.bump(); // first content byte (may start a UTF-8 scalar)
        }
        while self.pos < self.bytes.len() && self.peek(0) != b'\'' && self.peek(0) != b'\n' {
            self.bump();
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        let line = self.line;
        let mut float = false;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.bump();
            self.bump();
            while matches!(self.peek(0), b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F' | b'_') {
                self.bump();
            }
        } else {
            while matches!(self.peek(0), b'0'..=b'9' | b'_') {
                self.bump();
            }
            // Fractional part: a dot followed by a digit (so `0..n` and
            // `x.method()` stay integers).
            if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
                float = true;
                self.bump();
                while matches!(self.peek(0), b'0'..=b'9' | b'_') {
                    self.bump();
                }
            }
            // Exponent.
            if matches!(self.peek(0), b'e' | b'E')
                && (self.peek(1).is_ascii_digit()
                    || (matches!(self.peek(1), b'+' | b'-') && self.peek(2).is_ascii_digit()))
            {
                float = true;
                self.bump();
                if matches!(self.peek(0), b'+' | b'-') {
                    self.bump();
                }
                while matches!(self.peek(0), b'0'..=b'9' | b'_') {
                    self.bump();
                }
            }
        }
        // Suffix: u64, f64, usize…  A float suffix forces Float.
        if is_ident_start(self.peek(0)) {
            let suffix_start = self.pos;
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            let suffix = &self.bytes[suffix_start..self.pos];
            if suffix == b"f32" || suffix == b"f64" {
                float = true;
            }
        }
        self.push(
            if float {
                TokenKind::Float
            } else {
                TokenKind::Int
            },
            start,
            line,
        );
    }

    fn ident(&mut self) {
        let start = self.pos;
        let line = self.line;
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        self.push(TokenKind::Ident, start, line);
    }

    fn punct(&mut self) {
        let start = self.pos;
        let line = self.line;
        let b0 = self.peek(0);
        let b1 = self.peek(1);
        let b2 = self.peek(2);
        let len = match (b0, b1, b2) {
            (b'.', b'.', b'=') | (b'<', b'<', b'=') | (b'>', b'>', b'=') | (b'.', b'.', b'.') => 3,
            (b'=', b'=', _)
            | (b'!', b'=', _)
            | (b'<', b'=', _)
            | (b'>', b'=', _)
            | (b'&', b'&', _)
            | (b'|', b'|', _)
            | (b':', b':', _)
            | (b'-', b'>', _)
            | (b'=', b'>', _)
            | (b'.', b'.', _)
            | (b'<', b'<', _)
            | (b'>', b'>', _)
            | (b'+', b'=', _)
            | (b'-', b'=', _)
            | (b'*', b'=', _)
            | (b'/', b'=', _)
            | (b'%', b'=', _)
            | (b'^', b'=', _)
            | (b'&', b'=', _)
            | (b'|', b'=', _) => 2,
            _ => 1,
        };
        for _ in 0..len {
            self.bump();
        }
        self.push(TokenKind::Punct, start, line);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let lexed = lex("let x = \"a == b\"; // y == 0.0\n/* z != 1.0 */ let y = 2;");
        assert!(!lexed.tokens.iter().any(|t| t.is_punct("==")));
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokenKind::Float));
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lexed = lex("let s = r#\"unwrap() == 0.0 \"# ; let t = 1;");
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("t")));
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = kinds("a == 0.0; b == 1; 0..4u64; x.0; 1e3; 2.5f64; 3f64");
        let floats: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(floats, ["0.0", "1e3", "2.5f64", "3f64"]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn multichar_punct_and_lines() {
        let lexed = lex("a\n  == b\n!= c");
        let eq = lexed.tokens.iter().find(|t| t.is_punct("==")).expect("==");
        assert_eq!(eq.line, 2);
        let ne = lexed.tokens.iter().find(|t| t.is_punct("!=")).expect("!=");
        assert_eq!(ne.line, 3);
    }

    #[test]
    fn escaped_quote_char_literal_does_not_derail() {
        // '\'' ends at its real closing quote; the code after it lexes.
        let toks = kinds("let c = '\\''; let after = 1;");
        assert!(toks.iter().any(|(_, s)| s == "after"), "{toks:?}");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn escaped_byte_char_literal() {
        // b'\x41' is one literal; the trailing code still surfaces.
        let toks = kinds("let b = b'\\x41'; let tail = 2;");
        assert!(toks.iter().any(|(_, s)| s == "tail"), "{toks:?}");
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokenKind::Literal && s == "b'\\x41'"));
    }

    #[test]
    fn unterminated_char_stops_at_newline() {
        // A stray quote damages at most its own line.
        let toks = kinds("let bad = '(;\nlet good = 3;");
        assert!(toks.iter().any(|(_, s)| s == "good"), "{toks:?}");
    }

    #[test]
    fn unicode_char_literal_and_escape_u() {
        let toks = kinds("let e = '\u{e9}'; let u = '\\u{1F600}'; let z = 4;");
        assert!(toks.iter().any(|(_, s)| s == "z"), "{toks:?}");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn truncated_escape_at_eof_does_not_overrun() {
        // A string or char literal whose escape is cut off by EOF must
        // not push the cursor past the buffer (the token slice would
        // then overrun). Found by the proptest fuzz suite.
        for src in ["\"unterminated \\", "'\\", "b'\\", "let x = \"a\\"] {
            let lexed = lex(src);
            for t in &lexed.tokens {
                assert!(!t.text.is_empty(), "{src:?} -> {t:?}");
            }
        }
    }

    #[test]
    fn lone_quote_at_eof_does_not_overrun() {
        let lexed = lex("let q = '");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("q")));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("x")));
        assert_eq!(lexed.comments.len(), 1);
    }

    #[test]
    fn own_line_detection() {
        let lexed = lex("let a = 1; // trailing\n// own line\nlet b = 2;");
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[1].own_line);
    }
}
