//! SARIF 2.1.0 rendering.
//!
//! [SARIF](https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html)
//! is the interchange format code-scanning UIs ingest; CI uploads this
//! next to the first-party JSON report. The document is hand-rolled (the
//! analyzer stays dependency-free) and emits the minimal valid subset:
//! one run, one driver, a `rules` array (`id` + short/full descriptions)
//! and one `result` per diagnostic with `ruleId`, `ruleIndex`, `level`,
//! `message.text` and a `physicalLocation` carrying the workspace-relative
//! `artifactLocation.uri` and a 1-based `region.startLine`.
//!
//! `tests/sarif.rs` validates the output against the 2.1.0 schema
//! requirements (via the vendored `serde_json` shim) and pins the schema
//! URI so drift is loud.

use crate::diag::{json_string, Diagnostic};
use crate::rules::{registry, META_RULES};

/// The schema URI embedded in every report (pinned by tests).
pub const SCHEMA_URI: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Render a full SARIF 2.1.0 document for `diags`.
#[must_use]
pub fn render_sarif(diags: &[Diagnostic]) -> String {
    // Stable rule table: registry order, then the meta rules.
    let rules = registry();
    let mut ids: Vec<(&'static str, String, String)> = rules
        .iter()
        .map(|r| (r.id(), r.summary().to_string(), r.explain().to_string()))
        .collect();
    for m in META_RULES {
        ids.push((
            m,
            format!("{m} (waiver hygiene)"),
            "Emitted by the waiver machinery itself; see CONTRIBUTING.md.".to_string(),
        ));
    }

    let mut out = String::from("{\n  \"$schema\": ");
    json_string(&mut out, SCHEMA_URI);
    out.push_str(",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n");
    out.push_str(
        "      \"tool\": {\n        \"driver\": {\n          \"name\": \"cadapt-lint\",\n",
    );
    out.push_str("          \"informationUri\": \"https://github.com/cadapt/cadapt\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, (id, summary, explain)) in ids.iter().enumerate() {
        out.push_str("            {\"id\": ");
        json_string(&mut out, id);
        out.push_str(", \"shortDescription\": {\"text\": ");
        json_string(&mut out, summary);
        out.push_str("}, \"fullDescription\": {\"text\": ");
        json_string(&mut out, explain);
        out.push_str("}}");
        if i + 1 < ids.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let rule_index = ids
            .iter()
            .position(|(id, _, _)| *id == d.rule)
            .map_or(-1i64, |p| p as i64);
        out.push_str("        {\"ruleId\": ");
        json_string(&mut out, d.rule);
        out.push_str(&format!(", \"ruleIndex\": {rule_index}"));
        out.push_str(", \"level\": \"error\", \"message\": {\"text\": ");
        json_string(&mut out, &d.message);
        out.push_str("}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": ");
        json_string(&mut out, &d.path);
        out.push_str(&format!(
            "}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
            d.line.max(1)
        ));
        if i + 1 < diags.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_well_formed() {
        let s = render_sarif(&[]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"results\": [\n      ]"));
        assert!(s.contains(SCHEMA_URI));
    }

    #[test]
    fn result_carries_location_and_rule_index() {
        let s = render_sarif(&[Diagnostic {
            rule: "float-eq",
            path: "crates/core/src/x.rs".into(),
            line: 12,
            message: "m \"q\"".into(),
        }]);
        assert!(s.contains("\"ruleId\": \"float-eq\""));
        assert!(s.contains("\"ruleIndex\": 0"));
        assert!(s.contains("\"startLine\": 12"));
        assert!(s.contains("\"uri\": \"crates/core/src/x.rs\""));
        assert!(s.contains("m \\\"q\\\""));
    }
}
