//! Diagnostics and their text/JSON rendering.
//!
//! JSON is emitted by hand (the analyzer is dependency-free on purpose:
//! it must build before — and independently of — everything it checks,
//! vendored shims included). The schema is stable and consumed by CI:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "diagnostics": [
//!     { "rule": "float-eq", "path": "crates/core/src/report.rs",
//!       "line": 54, "message": "…" }
//!   ],
//!   "count": 1
//! }
//! ```

/// One finding: a rule violation (or a waiver problem) at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (e.g. `float-eq`).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Render as a single `path:line: [rule] message` text line.
    #[must_use]
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Render the full JSON report for a diagnostic list.
#[must_use]
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("    {\"rule\": ");
        json_string(&mut out, d.rule);
        out.push_str(", \"path\": ");
        json_string(&mut out, &d.path);
        out.push_str(&format!(", \"line\": {}, \"message\": ", d.line));
        json_string(&mut out, &d.message);
        out.push('}');
        if i + 1 < diags.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&format!("  ],\n  \"count\": {}\n}}\n", diags.len()));
    out
}

/// Append `s` as a JSON string literal (quotes and escapes included).
pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_special_characters() {
        let diags = vec![Diagnostic {
            rule: "float-eq",
            path: "a/b.rs".into(),
            line: 3,
            message: "quote \" backslash \\ newline \n".into(),
        }];
        let json = render_json(&diags);
        assert!(json.contains("\\\""));
        assert!(json.contains("\\\\"));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"count\": 1"));
    }

    #[test]
    fn text_rendering_is_grep_friendly() {
        let d = Diagnostic {
            rule: "lossy-cast",
            path: "crates/core/src/x.rs".into(),
            line: 10,
            message: "m".into(),
        };
        assert_eq!(d.render_text(), "crates/core/src/x.rs:10: [lossy-cast] m");
    }
}
