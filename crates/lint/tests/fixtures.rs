//! Fixture-corpus tests: every rule has one fixture that must trip it at
//! exact (rule, line) positions and one that must come back clean, plus a
//! self-lint test asserting the workspace itself carries no diagnostics.

use cadapt_lint::{lint_source, lint_workspace};
use std::path::Path;

/// Read a fixture from `tests/fixtures/` and lint it under `rel_path`
/// (rule scoping keys off the path, so fixtures choose their own).
fn lint_fixture(name: &str, rel_path: &str) -> Vec<(&'static str, u32)> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    lint_source(rel_path, &src)
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

const LIB_PATH: &str = "crates/demo/src/module.rs";
const ACCOUNTING_PATH: &str = "crates/core/src/module.rs";
const ROOT_PATH: &str = "crates/demo/src/lib.rs";

#[test]
fn float_eq_fail() {
    assert_eq!(
        lint_fixture("fail/float_eq.rs", LIB_PATH),
        [("float-eq", 4), ("float-eq", 8)]
    );
}

#[test]
fn float_eq_pass() {
    assert_eq!(lint_fixture("pass/float_eq.rs", LIB_PATH), []);
}

#[test]
fn float_ord_fail() {
    assert_eq!(
        lint_fixture("fail/float_ord.rs", LIB_PATH),
        [("float-ord", 6), ("float-ord", 10), ("float-ord", 14)]
    );
}

#[test]
fn float_ord_pass() {
    assert_eq!(lint_fixture("pass/float_ord.rs", LIB_PATH), []);
}

#[test]
fn float_ord_is_scoped_to_library_code() {
    for path in [
        "crates/demo/tests/t.rs",
        "crates/demo/benches/b.rs",
        "crates/bench/src/main.rs",
    ] {
        assert_eq!(lint_fixture("fail/float_ord.rs", path), [], "{path}");
    }
}

#[test]
fn analytic_module_is_covered_by_float_ord_and_lossy_cast() {
    // The analytic cache model's contract depends on both rules: its
    // fault arithmetic must use the checked cast helpers (it lives in an
    // accounting crate) and any float ordering must be total. Pin the
    // exact path so a future move out of crates/paging cannot silently
    // drop either obligation.
    const ANALYTIC_PATH: &str = "crates/paging/src/analytic.rs";
    assert_eq!(
        lint_fixture("fail/float_ord.rs", ANALYTIC_PATH),
        [("float-ord", 6), ("float-ord", 10), ("float-ord", 14)]
    );
    assert_eq!(
        lint_fixture("fail/lossy_cast.rs", ANALYTIC_PATH),
        [("lossy-cast", 5), ("lossy-cast", 9), ("lossy-cast", 13)]
    );
}

#[test]
fn panic_reach_fail() {
    // unwrap in the entry itself, a computed index one call deep, and a
    // panic! two calls deep — all on paths from `entry`.
    assert_eq!(
        lint_fixture("fail/panic_reach.rs", LIB_PATH),
        [("panic-reach", 4), ("panic-reach", 8), ("panic-reach", 14),]
    );
}

#[test]
fn panic_reach_pass() {
    // The unwrap and indexing live in a private fn no entry calls: the
    // call graph proves them unreachable, so nothing is flagged.
    assert_eq!(lint_fixture("pass/panic_reach.rs", LIB_PATH), []);
}

#[test]
fn panic_reach_diagnostic_carries_the_call_path() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/fail/panic_reach.rs");
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    let diags = cadapt_lint::lint_source(LIB_PATH, &src);
    let deep = diags
        .iter()
        .find(|d| d.line == 14)
        .expect("panic! site flagged");
    // Shortest path from the nearest entry, rendered in the message.
    assert!(
        deep.message.contains("entry -> ") && deep.message.contains("scale"),
        "no call path in: {}",
        deep.message
    );
}

#[test]
fn panic_reach_is_scoped_to_library_code() {
    // The same panicking fixture is fine as a test, bench, or binary root
    // (cadapt-bench's main.rs is exempt that way: it is the one place
    // errors become exit codes).
    for path in [
        "crates/demo/tests/t.rs",
        "crates/demo/benches/b.rs",
        "crates/demo/src/bin/tool.rs",
        "crates/bench/src/main.rs",
    ] {
        assert_eq!(lint_fixture("fail/panic_reach.rs", path), [], "{path}");
    }
}

#[test]
fn panic_reach_covers_the_bench_harness_library() {
    // Since the fault-tolerance rework the bench crate's library half is
    // held to the same standard as every other crate.
    for path in [
        "crates/bench/src/harness/check.rs",
        "crates/bench/src/experiments/e1_worst_case_gap.rs",
        "crates/bench/src/faults.rs",
    ] {
        assert_eq!(
            lint_fixture("fail/panic_reach.rs", path),
            [("panic-reach", 4), ("panic-reach", 8), ("panic-reach", 14),],
            "{path}"
        );
    }
}

#[test]
fn rng_discipline_fail() {
    // Field store, construction, re-aim, clone, and return-type escape.
    assert_eq!(
        lint_fixture("fail/rng_discipline.rs", LIB_PATH),
        [
            ("rng-discipline", 4),
            ("rng-discipline", 8),
            ("rng-discipline", 9),
            ("rng-discipline", 10),
            ("rng-discipline", 15),
        ]
    );
}

#[test]
fn rng_discipline_pass() {
    assert_eq!(lint_fixture("pass/rng_discipline.rs", LIB_PATH), []);
}

#[test]
fn rng_discipline_engine_may_mint_but_not_leak() {
    // Inside the approved engine, construction / re-aiming / cloning are
    // allowed — but the escape hatches (return type, field store) are
    // still flagged: even the engine must not let a stream out.
    assert_eq!(
        lint_fixture("fail/rng_discipline.rs", "crates/analysis/src/parallel.rs"),
        [("rng-discipline", 4), ("rng-discipline", 15)]
    );
}

#[test]
fn counter_balance_fail() {
    assert_eq!(
        lint_fixture("fail/counter_balance.rs", ACCOUNTING_PATH),
        [("counter-balance", 4), ("counter-balance", 5)]
    );
}

#[test]
fn counter_balance_pass() {
    assert_eq!(lint_fixture("pass/counter_balance.rs", ACCOUNTING_PATH), []);
}

#[test]
fn counter_balance_is_scoped_to_accounting_crates_minus_the_ledger() {
    // Outside the accounting crates the rule does not apply, and the
    // ledger module itself is the one approved mutation site.
    for path in [LIB_PATH, "crates/core/src/counters.rs"] {
        assert_eq!(lint_fixture("fail/counter_balance.rs", path), [], "{path}");
    }
}

#[test]
fn vm_dispatch_fail() {
    // decode missing a variant, a dispatch missing a variant, a
    // catch-all arm, and raw byte dispatch outside the funnel.
    assert_eq!(
        lint_fixture("fail/vm_dispatch.rs", "crates/trace/src/bytecode.rs"),
        [
            ("vm-dispatch", 10),
            ("vm-dispatch", 20),
            ("vm-dispatch", 23),
            ("vm-dispatch", 30),
        ]
    );
}

#[test]
fn vm_dispatch_requires_an_opcode_enum() {
    assert_eq!(
        lint_fixture(
            "fail/vm_dispatch_no_enum.rs",
            "crates/trace/src/bytecode.rs"
        ),
        [("vm-dispatch", 1)]
    );
}

#[test]
fn vm_dispatch_pass() {
    assert_eq!(
        lint_fixture("pass/vm_dispatch.rs", "crates/trace/src/bytecode.rs"),
        []
    );
}

#[test]
fn vm_dispatch_is_scoped_to_the_vm_module() {
    assert_eq!(lint_fixture("fail/vm_dispatch.rs", LIB_PATH), []);
}

#[test]
fn lossy_cast_fail() {
    assert_eq!(
        lint_fixture("fail/lossy_cast.rs", ACCOUNTING_PATH),
        [("lossy-cast", 5), ("lossy-cast", 9), ("lossy-cast", 13)]
    );
}

#[test]
fn lossy_cast_pass() {
    assert_eq!(lint_fixture("pass/lossy_cast.rs", ACCOUNTING_PATH), []);
}

#[test]
fn lossy_cast_is_scoped_to_accounting_crates() {
    // Outside crates/{core,recursion,paging} the rule does not apply.
    assert_eq!(lint_fixture("fail/lossy_cast.rs", LIB_PATH), []);
    // Inside, all three accounting crates are covered.
    for path in [
        "crates/recursion/src/module.rs",
        "crates/paging/src/module.rs",
    ] {
        assert_eq!(
            lint_fixture("fail/lossy_cast.rs", path),
            [("lossy-cast", 5), ("lossy-cast", 9), ("lossy-cast", 13)],
            "{path}"
        );
    }
}

#[test]
fn nondet_source_fail() {
    assert_eq!(
        lint_fixture("fail/nondet_source.rs", LIB_PATH),
        [
            ("nondet-source", 3),
            ("nondet-source", 5),
            ("nondet-source", 6),
            ("nondet-source", 14),
            ("nondet-source", 18),
            ("nondet-source", 22),
            ("nondet-source", 23),
        ]
    );
}

#[test]
fn nondet_source_threading_is_allowed_only_in_the_engine() {
    // Linted as the approved fan-out engine, the same fixture keeps its
    // HashMap/Instant diagnostics but loses the threading ones.
    assert_eq!(
        lint_fixture("fail/nondet_source.rs", "crates/analysis/src/parallel.rs"),
        [
            ("nondet-source", 3),
            ("nondet-source", 5),
            ("nondet-source", 6),
            ("nondet-source", 14),
        ]
    );
}

#[test]
fn nondet_source_daemon_may_spawn_and_read_the_clock() {
    // Linted as the job daemon, the fixture loses the `Instant::now` and
    // `spawn` diagnostics (deadline enforcement and service threads are
    // its job; results come from the deterministic engine and cross the
    // journal) but keeps the HashMap ones — and `crossbeam` stays
    // flagged: the daemon gets std threads, not an ad-hoc runtime.
    assert_eq!(
        lint_fixture("fail/nondet_source.rs", "crates/serve/src/daemon.rs"),
        [
            ("nondet-source", 3),
            ("nondet-source", 5),
            ("nondet-source", 6),
            ("nondet-source", 22),
        ]
    );
}

#[test]
fn nondet_source_pass() {
    assert_eq!(lint_fixture("pass/nondet_source.rs", LIB_PATH), []);
}

#[test]
fn net_confine_fail() {
    // An imported listener, its use in a signature and a bind, an
    // outbound stream, and a datagram socket — all outside crates/serve.
    assert_eq!(
        lint_fixture("fail/net_confine.rs", LIB_PATH),
        [
            ("net-confine", 3),
            ("net-confine", 5),
            ("net-confine", 6),
            ("net-confine", 10),
            ("net-confine", 14),
        ]
    );
}

#[test]
fn net_confine_pass() {
    assert_eq!(lint_fixture("pass/net_confine.rs", LIB_PATH), []);
}

#[test]
fn net_confine_allows_the_service_crate() {
    // Inside crates/serve the rule does not apply at all — the daemon and
    // its protocol client helpers are the approved network boundary.
    for path in ["crates/serve/src/daemon.rs", "crates/serve/src/protocol.rs"] {
        assert_eq!(lint_fixture("fail/net_confine.rs", path), [], "{path}");
    }
}

#[test]
fn net_confine_is_scoped_to_library_code() {
    // Binaries, tests, and benches drive the daemon as clients.
    for path in [
        "crates/demo/tests/t.rs",
        "crates/demo/benches/b.rs",
        "crates/bench/src/main.rs",
    ] {
        assert_eq!(lint_fixture("fail/net_confine.rs", path), [], "{path}");
    }
}

#[test]
fn cursor_materialize_fail() {
    // A drained-then-collected run stream and a `.to_vec()` snapshot.
    assert_eq!(
        lint_fixture("fail/cursor_materialize.rs", "crates/core/src/cursor.rs"),
        [("cursor-materialize", 10), ("cursor-materialize", 14)]
    );
}

#[test]
fn cursor_materialize_pass() {
    // Fold-while-draining, an item named `collect`, and a waived
    // per-tenant setup all come back clean.
    assert_eq!(
        lint_fixture("pass/cursor_materialize.rs", "crates/core/src/cursor.rs"),
        []
    );
}

#[test]
fn cursor_materialize_covers_every_streaming_module() {
    // The streaming contract spans five crates; pin the exact paths so a
    // rename cannot silently drop a module from coverage.
    for path in [
        "crates/core/src/cursor.rs",
        "crates/profiles/src/scenario.rs",
        "crates/recursion/src/run.rs",
        "crates/paging/src/replay.rs",
        "crates/trace/src/summary.rs",
        "crates/bench/src/experiments/e16_streaming_contention.rs",
    ] {
        assert_eq!(
            lint_fixture("fail/cursor_materialize.rs", path),
            [("cursor-materialize", 10), ("cursor-materialize", 14)],
            "{path}"
        );
    }
}

#[test]
fn cursor_materialize_is_scoped_to_streaming_modules() {
    // Ordinary library code may collect freely — the rule protects the
    // streaming modules' memory contract, not allocation in general.
    for path in [LIB_PATH, ACCOUNTING_PATH, "crates/core/src/profile.rs"] {
        assert_eq!(
            lint_fixture("fail/cursor_materialize.rs", path),
            [],
            "{path}"
        );
    }
}

#[test]
fn crate_header_fail() {
    assert_eq!(
        lint_fixture("fail/crate_header.rs", ROOT_PATH),
        [("crate-header", 1)]
    );
}

#[test]
fn crate_header_pass() {
    assert_eq!(lint_fixture("pass/crate_header.rs", ROOT_PATH), []);
}

#[test]
fn crate_header_only_applies_to_crate_roots() {
    assert_eq!(lint_fixture("fail/crate_header.rs", LIB_PATH), []);
}

#[test]
fn stale_waiver_fail() {
    assert_eq!(
        lint_fixture("fail/stale_waiver.rs", LIB_PATH),
        [("stale-waiver", 3)]
    );
}

#[test]
fn malformed_waiver_fail() {
    // Each bad waiver is reported AND fails to suppress its violation.
    assert_eq!(
        lint_fixture("fail/malformed_waiver.rs", LIB_PATH),
        [
            ("malformed-waiver", 4),
            ("float-eq", 5),
            ("malformed-waiver", 9),
            ("float-eq", 10),
        ]
    );
}

#[test]
fn waiver_pass() {
    // Both placements suppress their violation and neither is stale.
    assert_eq!(lint_fixture("pass/waiver.rs", LIB_PATH), []);
}

#[test]
fn every_rule_documents_itself() {
    // `explain <rule>` is the waiver-review workflow's entry point: every
    // registered rule must carry a distinct id, a one-line summary, and a
    // real explanation (not a stub).
    let rules = cadapt_lint::registry();
    let mut ids = std::collections::BTreeSet::new();
    for rule in &rules {
        assert!(ids.insert(rule.id()), "duplicate rule id {}", rule.id());
        assert!(!rule.summary().is_empty(), "{} has no summary", rule.id());
        assert!(
            rule.explain().len() > 200,
            "{} explain() is too thin to guide a fix",
            rule.id()
        );
    }
    // The dataflow rules and the streaming-contract rule are registered.
    for id in [
        "panic-reach",
        "rng-discipline",
        "counter-balance",
        "vm-dispatch",
        "cursor-materialize",
        "net-confine",
    ] {
        assert!(ids.contains(id), "{id} missing from registry");
    }
    // The lexical predecessor is gone: panic-reach replaced it.
    assert!(!ids.contains("no-panic-lib"));
}

#[test]
fn workspace_is_clean() {
    // The repo itself must lint clean: every violation is either fixed or
    // carries a justified waiver, and no waiver is stale.
    let root = cadapt_lint::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the lint crate");
    let diags = lint_workspace(&root).expect("workspace readable");
    assert!(
        diags.is_empty(),
        "workspace has {} diagnostics:\n{}",
        diags.len(),
        diags
            .iter()
            .map(cadapt_lint::Diagnostic::render_text)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
