//! Structural validation of the SARIF 2.1.0 emitter: the report must
//! parse as JSON and satisfy the schema's required shape — `version`,
//! `runs[].tool.driver` with a `rules` array, and `results[]` whose
//! `ruleId`/`ruleIndex` agree with that array and whose locations carry
//! 1-based `startLine`s. (The official JSON schema is not vendored; these
//! assertions encode its required properties for the subset we emit.)

use cadapt_lint::{lint_source, registry, render_sarif};
use serde_json::Value;

/// Object-field lookup (the vendored `Value` has no `get` inherent).
fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.as_object()?.get(key)
}

/// Descend through nested object keys.
fn path<'a>(v: &'a Value, keys: &[&str]) -> Option<&'a Value> {
    keys.iter().try_fold(v, |v, k| get(v, k))
}

fn report_for(src: &str, rel_path: &str) -> Value {
    let diags = lint_source(rel_path, src);
    assert!(!diags.is_empty(), "fixture should produce diagnostics");
    serde_json::from_str(&render_sarif(&diags)).expect("SARIF output is valid JSON")
}

#[test]
fn sarif_has_the_required_toplevel_shape() {
    let report = report_for(
        "pub fn f(residual: f64) -> bool { residual == 0.0 }\n",
        "crates/demo/src/module.rs",
    );
    assert_eq!(
        get(&report, "version").and_then(Value::as_str),
        Some("2.1.0")
    );
    let schema = get(&report, "$schema")
        .and_then(Value::as_str)
        .expect("$schema present");
    assert!(schema.contains("sarif-schema-2.1.0"), "{schema}");
    let runs = get(&report, "runs")
        .and_then(Value::as_array)
        .expect("runs");
    assert_eq!(runs.len(), 1);
    let driver = path(&runs[0], &["tool", "driver"]).expect("tool.driver");
    assert_eq!(
        get(driver, "name").and_then(Value::as_str),
        Some("cadapt-lint")
    );
}

#[test]
fn sarif_rules_cover_the_registry_and_results_index_into_them() {
    // Trips two distinct rules: float-eq (literal comparison) and
    // panic-reach (computed index in a public fn).
    let src =
        "pub fn f(a: f64, xs: &[u64], k: usize) -> u64 { if a == 0.5 { xs[k + 1] } else { 0 } }\n";
    let report = report_for(src, "crates/demo/src/module.rs");
    let runs = get(&report, "runs")
        .and_then(Value::as_array)
        .expect("runs");
    let rules = path(&runs[0], &["tool", "driver", "rules"])
        .and_then(Value::as_array)
        .expect("driver.rules");
    let ids: Vec<&str> = rules
        .iter()
        .map(|r| get(r, "id").and_then(Value::as_str).expect("rule id"))
        .collect();
    // Every registered rule and both meta-rules are declared.
    for rule in registry() {
        assert!(ids.contains(&rule.id()), "{} missing", rule.id());
    }
    for meta in cadapt_lint::rules::META_RULES {
        assert!(ids.contains(&meta), "{meta} missing");
    }
    // Every rule entry carries descriptions (what renders in viewers).
    for r in rules {
        assert!(get(r, "shortDescription").is_some());
        assert!(get(r, "fullDescription").is_some());
    }

    let results = get(&runs[0], "results")
        .and_then(Value::as_array)
        .expect("results");
    assert!(!results.is_empty());
    for res in results {
        let rule_id = get(res, "ruleId").and_then(Value::as_str).expect("ruleId");
        let idx = get(res, "ruleIndex")
            .and_then(Value::as_u64)
            .expect("ruleIndex");
        // ruleIndex must point at the matching rules[] entry.
        assert_eq!(
            ids.get(usize::try_from(idx).expect("index fits")),
            Some(&rule_id)
        );
        assert_eq!(get(res, "level").and_then(Value::as_str), Some("error"));
        let msg = path(res, &["message", "text"])
            .and_then(Value::as_str)
            .expect("message.text");
        assert!(!msg.is_empty());
        let locs = get(res, "locations")
            .and_then(Value::as_array)
            .expect("locations");
        assert_eq!(locs.len(), 1);
        let phys = get(&locs[0], "physicalLocation").expect("physicalLocation");
        let uri = path(phys, &["artifactLocation", "uri"])
            .and_then(Value::as_str)
            .expect("artifactLocation.uri");
        assert_eq!(uri, "crates/demo/src/module.rs");
        let start = path(phys, &["region", "startLine"])
            .and_then(Value::as_u64)
            .expect("region.startLine");
        assert!(start >= 1, "SARIF lines are 1-based");
    }
}

#[test]
fn sarif_with_no_findings_is_an_empty_results_run() {
    let report: Value =
        serde_json::from_str(&render_sarif(&[])).expect("empty report is valid JSON");
    let runs = get(&report, "runs")
        .and_then(Value::as_array)
        .expect("runs");
    let results = get(&runs[0], "results")
        .and_then(Value::as_array)
        .expect("results");
    assert!(results.is_empty());
}
