//! Fuzz net under the lexer → parser → rules pipeline: the analyzer must
//! never panic on any input (it lints itself, so a crash would both hide
//! violations and fail CI opaquely), and every span it reports must point
//! inside the input.
//!
//! The generator concatenates fragments chosen to stress the known hard
//! cases: unterminated strings and block comments, escaped char literals,
//! raw strings, unbalanced brackets, multi-byte identifiers, truncated
//! waiver comments, and token sequences that look like the constructs the
//! parser scans for (paths, matches, struct literals, turbofish).

use cadapt_lint::lexer::lex;
use cadapt_lint::parse::parse;
use proptest::prelude::*;

fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("pub fn f(xs: &[u64], k: usize) -> u64 { xs[k + 1] }\n".to_string()),
        Just("struct S { rng: ChaCha8Rng, n: u64 }\n".to_string()),
        Just("impl Tr for S { fn m(&self) { self.n += 1; } }\n".to_string()),
        Just("match op { Opcode::Leaf => 0, _ => 1 }\n".to_string()),
        Just("use a::{b::{c, d}, e as f, *};\n".to_string()),
        Just("// cadapt-lint: allow(float-eq) -- a justification\n".to_string()),
        Just("// cadapt-lint: allow(".to_string()),
        Just("\"unterminated ".to_string()),
        Just("'c".to_string()),
        Just("'\\''".to_string()),
        Just("b'\\x7f'".to_string()),
        Just("r#\"raw \" inside\"#".to_string()),
        Just("/* unterminated block".to_string()),
        Just("{ [ ( } ] )".to_string()),
        Just("}}}} >>>> <<<<".to_string()),
        Just("let x = v.iter::<T>().map(|y| y[i * 2]);\n".to_string()),
        Just("x . 0 . . .. ..= => -> :: 0xFF_u64 1e 0.\n".to_string()),
        Just("émoji 🦀 ident_日本語\n".to_string()),
        Just("#[cfg(test)]\nmod tests {".to_string()),
        Just("macro_rules! m { () => {} }\n".to_string()),
        Just("trait T { fn d(&self) {} fn n(&self); }\n".to_string()),
        Just("enum Opcode { A = 0x00, B }\n".to_string()),
        Just("x.f(".to_string()),
        Just("\\".to_string()),
        Just("\u{0}".to_string()),
        Just("\n\n".to_string()),
    ]
}

fn soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(fragment(), 0..40).prop_map(|parts| parts.concat())
}

/// Upper bound on any valid 1-based line number in `src`.
fn line_bound(src: &str) -> u32 {
    u32::try_from(src.split('\n').count()).unwrap_or(u32::MAX)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer never panics, and every token/comment carries an
    /// in-bounds 1-based line.
    #[test]
    fn lexer_spans_stay_in_bounds(src in soup()) {
        let bound = line_bound(&src);
        let lexed = lex(&src);
        for t in &lexed.tokens {
            prop_assert!(t.line >= 1 && t.line <= bound, "token line {} of {bound}", t.line);
            prop_assert!(!t.text.is_empty());
        }
        for c in &lexed.comments {
            prop_assert!(c.line >= 1 && c.line <= bound, "comment line {} of {bound}", c.line);
        }
    }

    /// The item-tree parser never panics on any token stream, and every
    /// fact it records — items, body spans, scanned events — stays inside
    /// the input.
    #[test]
    fn parser_spans_stay_in_bounds(src in soup()) {
        let bound = line_bound(&src);
        let lexed = lex(&src);
        let items = parse(&lexed.tokens);
        let ok = |line: u32| line >= 1 && line <= bound;
        for f in &items.fns {
            prop_assert!(ok(f.line), "fn line {}", f.line);
            if let Some((lo, hi)) = f.body {
                prop_assert!(lo <= hi && hi <= lexed.tokens.len(), "body {lo}..{hi}");
            }
            for c in &f.events.calls {
                prop_assert!(ok(c.line) && !c.segments.is_empty());
            }
            for m in &f.events.methods {
                prop_assert!(ok(m.line) && !m.name.is_empty());
            }
            for mac in &f.events.macros {
                prop_assert!(ok(mac.line));
            }
            for ix in &f.events.indexes {
                prop_assert!(ok(ix.line));
            }
            for set in &f.events.field_sets {
                prop_assert!(ok(set.line));
            }
            for m in &f.events.matches {
                prop_assert!(ok(m.line));
                for a in &m.arms {
                    prop_assert!(ok(a.line));
                }
            }
        }
        for s in &items.structs {
            prop_assert!(ok(s.line));
            for fld in &s.fields {
                prop_assert!(ok(fld.line));
            }
        }
        for e in &items.enums {
            prop_assert!(ok(e.line));
        }
    }

    /// The whole pipeline — lex, parse, call graph, every rule, waiver
    /// application — survives garbage under each scoping-relevant path
    /// and reports only in-bounds lines.
    #[test]
    fn full_pipeline_never_panics(src in soup(), which in 0usize..4) {
        let paths = [
            "crates/core/src/lib.rs",
            "crates/analysis/src/parallel.rs",
            "crates/trace/src/bytecode.rs",
            "crates/demo/src/module.rs",
        ];
        let bound = line_bound(&src);
        for d in cadapt_lint::lint_source(paths[which], &src) {
            // Waivers may target "the next code line" one past a trailing
            // comment, so allow bound + 1.
            prop_assert!(d.line >= 1 && d.line <= bound.saturating_add(1));
            prop_assert!(!d.message.is_empty());
        }
    }
}
