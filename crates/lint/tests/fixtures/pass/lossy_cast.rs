//! Fixture: accounting-safe conversions (linted under an accounting-crate
//! path such as crates/core/src/...).

pub fn widen(x: u32) -> u64 {
    u64::from(x)
}

pub fn narrow(x: u64) -> usize {
    usize::try_from(x).unwrap_or(usize::MAX)
}

/// Casts to floats are not accounting casts (totals stay integral).
pub fn ratio(num: u64, den: u64) -> f64 {
    num as f64 / den as f64
}

#[cfg(test)]
mod tests {
    #[test]
    fn as_is_fine_in_tests() {
        let n = 40_u64;
        assert_eq!(n as usize, 40);
    }
}
