//! Total, funneled dispatch: the shape the VM must keep.

pub enum Opcode {
    Leaf,
    Access,
}

impl Opcode {
    pub fn decode(b: u8) -> Option<Opcode> {
        match b {
            0x00 => Some(Opcode::Leaf),
            0x01 => Some(Opcode::Access),
            _ => None,
        }
    }
}

pub fn step(op: Opcode) -> u32 {
    match op {
        Opcode::Leaf => 0,
        Opcode::Access => 1,
    }
}
