//! Fixture: a crate root (linted as crates/<name>/src/lib.rs) carrying the
//! workspace lint header block.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The one item.
pub fn f() -> u32 {
    1
}
