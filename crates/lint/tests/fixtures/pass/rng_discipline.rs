//! Caller-provided randomness threads through generically — allowed.

pub fn sample<R: Rng>(rng: &mut R) -> u64 {
    rng.gen_range(0..10)
}

pub fn mix(seed: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}
