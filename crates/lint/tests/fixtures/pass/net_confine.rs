//! Fixture: library code that talks to the daemon the approved way —
//! through the typed protocol, never by opening a socket itself.

pub struct JobHandle {
    pub id: u64,
}

/// Render a submit line for the service's NDJSON protocol; some other
/// layer (a binary, a test harness, or crates/serve itself) owns the
/// actual connection.
pub fn submit_line(id: u64) -> String {
    format!("{{\"op\":\"status\",\"id\":{id}}}")
}

/// Names that merely *contain* the socket types are fine — only the
/// endpoint idents themselves cross the service boundary.
pub fn tcp_stream_count() -> usize {
    0
}

#[cfg(test)]
mod tests {
    /// Tests may exercise sockets: harnesses drive the daemon as clients.
    #[test]
    fn loopback() {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        assert!(l.local_addr().is_ok());
    }
}
