//! Fixture: the accepted ways to compare floats.

/// Tolerance comparison: no exact literal equality.
pub fn converged(residual: f64) -> bool {
    residual.abs() < f64::EPSILON
}

/// Bit-identity via to_bits: exact, but not a float comparison.
pub fn bit_identical(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

/// A deliberate sentinel carries a waiver with its justification.
pub fn is_sentinel(x: f64) -> bool {
    // cadapt-lint: allow(float-eq) -- sentinel: -1.0 is assigned verbatim, never computed
    x == -1.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_equality_is_fine_in_tests() {
        assert!(super::converged(0.0));
        let y = 2.0_f64;
        assert!(y == 2.0);
    }
}
