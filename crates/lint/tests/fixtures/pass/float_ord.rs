//! Fixture: the accepted ways to order floats.

/// Total order over all f64 values — no Option, no NaN decision.
pub fn best(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(|a, b| a.total_cmp(b))
}

/// Deterministic sort by the IEEE 754 total order.
pub fn sort_scores(xs: &mut [f64]) {
    xs.sort_by(f64::total_cmp);
}

/// Integer keys use Ord directly.
pub fn sort_by_key(xs: &mut [(u32, f64)]) {
    xs.sort_by_key(|&(k, _)| k);
}

/// A waived use carries the domain argument.
pub fn ranked(xs: &mut [f64]) {
    // cadapt-lint: allow(float-ord) -- domain: inputs are box sizes cast from u64, NaN cannot occur
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

#[cfg(test)]
mod tests {
    #[test]
    fn partial_cmp_is_fine_in_tests() {
        assert_eq!(1.0_f64.partial_cmp(&2.0), Some(std::cmp::Ordering::Less));
    }
}
