//! Panic sites only where no public entry can reach them.

pub fn entry(xs: &[u64]) -> Option<u64> {
    xs.first().copied()
}

fn dead(xs: &[u64]) -> u64 {
    let v = xs[0];
    v.checked_mul(2).unwrap()
}
