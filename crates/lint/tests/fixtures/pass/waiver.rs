//! Fixture: both waiver placements, each suppressing a live violation.

/// Trailing waiver: suppresses its own line.
pub fn trailing(x: f64) -> bool {
    x == 0.5 // cadapt-lint: allow(float-eq) -- sentinel: 0.5 is assigned verbatim, never computed
}

/// Own-line waiver: suppresses the next code-bearing line.
pub fn own_line(x: f64) -> bool {
    // cadapt-lint: allow(float-eq) -- sentinel: 0.25 is assigned verbatim, never computed
    x == 0.25
}
