//! Fixture: library code that fails into error values, not aborts.

pub fn first(xs: &[u32]) -> Result<u32, &'static str> {
    xs.first().copied().ok_or("empty slice")
}

pub fn parse(s: &str) -> Option<u32> {
    s.parse().ok()
}

/// An invariant-backed panic carries a waiver naming the invariant.
pub fn checked(xs: &[u32]) -> u32 {
    // cadapt-lint: allow(no-panic-lib) -- invariant: callers guarantee xs is non-empty
    *xs.first().expect("non-empty by contract")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::first(&[7]).unwrap(), 7);
    }
}
