//! Counters move only through the ledger helpers.

pub fn record(n: u64) {
    count_boxes(1);
    count_io(n);
}
