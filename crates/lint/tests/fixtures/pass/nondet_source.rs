//! Fixture: deterministic collections and seeded randomness.

use std::collections::BTreeMap;

pub fn histogram(xs: &[u64]) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new();
    for &x in xs {
        *out.entry(x).or_insert(0) += 1;
    }
    out
}

/// Mentioning the `Instant` type without calling `now()` is fine — only
/// reading the wall clock is nondeterministic.
pub fn describe(t: std::time::Instant) -> String {
    format!("{t:?}")
}

/// Items merely *named* after spawning are fine — only invoking
/// `::spawn` / `.spawn` through a path or receiver fans out work.
pub fn spawn_label() -> &'static str {
    "spawn"
}
