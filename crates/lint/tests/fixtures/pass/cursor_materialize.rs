//! Fixture: streaming-friendly idioms in a streaming-cursor module.

use cadapt_core::RunCursor;

/// Folding while draining keeps resident state O(1).
pub fn total_boxes<C: RunCursor>(cursor: &mut C) -> u64 {
    let mut total = 0u64;
    while let Ok(Some(run)) = cursor.next_run() {
        total = total.saturating_add(run.repeat);
    }
    total
}

/// An item merely *named* `collect` is not an invocation.
pub fn collect() -> u64 {
    7
}

/// Waived per-tenant setup: one slot per tenant, independent of
/// pipeline length.
pub fn tenant_slots(n: usize) -> Vec<Option<u64>> {
    (0..n).map(|_| None).collect() // cadapt-lint: allow(cursor-materialize) -- one slot per tenant, bounded by the tenant count, not pipeline length
}
