//! Fixture: network endpoints opened outside the service crate.

use std::net::TcpListener;

pub fn backdoor() -> std::io::Result<TcpListener> {
    TcpListener::bind("127.0.0.1:0")
}

pub fn phone_home(addr: &str) {
    let _ = std::net::TcpStream::connect(addr);
}

pub fn beacon() {
    let _ = std::net::UdpSocket::bind("127.0.0.1:0");
}
