//! Fixture: eager materialisation in a streaming-cursor module.

use cadapt_core::{BoxRun, RunCursor};

pub fn drain_all<C: RunCursor>(cursor: &mut C) -> Vec<BoxRun> {
    let mut runs = Vec::new();
    while let Ok(Some(run)) = cursor.next_run() {
        runs.push(run);
    }
    runs.iter().cloned().collect::<Vec<_>>()
}

pub fn snapshot(sizes: &[u64]) -> Vec<u64> {
    sizes.to_vec()
}
