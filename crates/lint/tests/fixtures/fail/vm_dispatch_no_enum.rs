//! A VM module with no opcode vocabulary at all.

pub fn step(b: u8) -> u32 {
    u32::from(b)
}
