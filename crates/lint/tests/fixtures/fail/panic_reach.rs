//! A public entry reaches a private helper chain that panics.

pub fn entry(xs: &[u64], k: usize) -> u64 {
    helper(xs, k).unwrap()
}

fn helper(xs: &[u64], k: usize) -> Option<u64> {
    let v = xs[k + 1];
    Some(v + scale(k))
}

fn scale(k: usize) -> u64 {
    if k > 64 {
        panic!("scale out of range");
    }
    1
}
