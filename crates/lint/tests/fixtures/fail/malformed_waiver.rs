//! Fixture: waivers that do not follow the syntax contract.

pub fn no_justification(x: f64) -> bool {
    // cadapt-lint: allow(float-eq)
    x == 0.0
}

pub fn unknown_rule(x: f64) -> bool {
    // cadapt-lint: allow(flote-eq) -- typo in the rule name
    x == 1.0
}
