//! Fixture: bare `as` integer casts in accounting code (linted under an
//! accounting-crate path such as crates/core/src/...).

pub fn narrow(x: u64) -> usize {
    x as usize
}

pub fn widen(x: u32) -> u64 {
    x as u64
}

pub fn truncate_float(x: f64) -> u64 {
    x as u64
}
