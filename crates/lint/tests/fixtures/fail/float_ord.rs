//! Fixture: partial_cmp-based float ordering in library code.

pub fn best(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
}

pub fn sort_scores(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Less));
}

pub fn comparator_reference(xs: &mut [(u32, f64)]) {
    xs.sort_by(|a, b| f64::partial_cmp(&a.1, &b.1).map_or(std::cmp::Ordering::Equal, |o| o));
}
