//! Fixture: nondeterminism sources in result-affecting code.

use std::collections::HashMap;

pub fn histogram(xs: &[u64]) -> HashMap<u64, u64> {
    let mut out = HashMap::new();
    for &x in xs {
        *out.entry(x).or_insert(0) += 1;
    }
    out
}

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn fan_out() -> u64 {
    let handle = std::thread::spawn(|| 1 + 1);
    handle.join().unwrap_or(0)
}

pub fn scoped(scope: &crossbeam::thread::Scope<'_>) {
    let _ = scope.spawn(|_| 2);
}
