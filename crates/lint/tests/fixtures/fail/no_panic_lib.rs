//! Fixture: panicking constructs in library code.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("not a number")
}

pub fn unreachable_branch(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => panic!("impossible"),
    }
}

pub fn unfinished() {
    todo!()
}
