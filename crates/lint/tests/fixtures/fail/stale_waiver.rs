//! Fixture: a waiver whose excused violation no longer exists.

// cadapt-lint: allow(float-eq) -- the comparison this excused was removed
pub fn converged(residual: f64) -> bool {
    residual.abs() < f64::EPSILON
}
