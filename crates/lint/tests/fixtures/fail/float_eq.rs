//! Fixture: exact comparison against a float literal in library code.

pub fn converged(residual: f64) -> bool {
    residual == 0.0
}

pub fn not_started(progress: f64) -> bool {
    progress != 1.0
}
