//! RNG minting, re-aiming, cloning, and escapes outside the engine.

pub struct TrialState {
    rng: ChaCha8Rng,
}

pub fn mint(seed: u64) -> u64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rng.set_stream(7);
    let fork = rng.clone();
    drop(fork);
    0
}

pub fn escape(seed: u64) -> ChaCha8Rng {
    make(seed)
}
