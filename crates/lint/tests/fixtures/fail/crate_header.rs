//! Fixture: a crate root (linted as crates/<name>/src/lib.rs) missing the
//! workspace lint header block.

pub fn f() -> u32 {
    1
}
