//! Direct counter mutation bypassing the accounting ledger.

pub fn tamper(snap: &mut CounterSnapshot) {
    snap.boxes_advanced += 1;
    snap.ios_charged = 99;
}
