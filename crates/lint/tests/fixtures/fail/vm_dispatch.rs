//! Dispatch holes the vm-dispatch rule must catch.

pub enum Opcode {
    Leaf,
    Access,
    Run,
}

impl Opcode {
    pub fn decode(b: u8) -> Option<Opcode> {
        match b {
            0x00 => Some(Opcode::Leaf),
            0x01 => Some(Opcode::Access),
            _ => None,
        }
    }
}

pub fn wildcard(op: Opcode) -> u32 {
    match op {
        Opcode::Leaf => 0,
        Opcode::Access => 1,
        _ => 2,
    }
}

const OP_RUN: u8 = 0x02;

pub fn raw(b: u8) -> bool {
    match b {
        OP_RUN => true,
        _ => false,
    }
}
