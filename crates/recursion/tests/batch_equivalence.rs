//! Differential proptests for the run-length fast path: advancing a run of
//! `k` identical boxes in closed form must be indistinguishable from `k`
//! per-box advancements — same cursor state (fingerprint), same outcome
//! totals, and the exact same instrumentation counter deltas.

// Test-only code: unwraps abort the test, which is the right failure mode.
#![allow(clippy::unwrap_used)]

use cadapt_core::counters::Recording;
use cadapt_recursion::{AbcParams, ClosedForms, ExecCursor, ScanLayout};
use proptest::prelude::*;

fn any_params() -> impl Strategy<Value = AbcParams> {
    (
        prop_oneof![
            Just((8u64, 4u64)),
            Just((7, 4)),
            Just((3, 2)),
            Just((2, 4)),
            Just((4, 4))
        ],
        prop_oneof![Just(0.0f64), Just(0.5), Just(1.0)],
        prop_oneof![
            Just(ScanLayout::End),
            Just(ScanLayout::Start),
            Just(ScanLayout::Split)
        ],
        1u64..=2,
    )
        .prop_map(|((a, b), c, layout, base)| {
            AbcParams::new(a, b, c, base).unwrap().with_layout(layout)
        })
}

/// Mirror pair of cursors over the same closed forms.
fn mirror(params: AbcParams, depth: u32) -> (ExecCursor, ExecCursor) {
    let n = params.canonical_size(depth);
    let cf = ClosedForms::for_size(params, n).unwrap();
    (ExecCursor::new(cf.clone()), ExecCursor::new(cf))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Simplified model: `advance_boxes_simplified(s, k)` ==
    /// `k × advance_box_simplified(s)` in state, totals, and counters.
    #[test]
    fn simplified_batch_equals_per_box(
        params in any_params(),
        depth in 2u32..=3,
        ops in proptest::collection::vec((1u64..=600, 1u64..=40), 1..12),
    ) {
        let (mut batch, mut reference) = mirror(params, depth);
        for (s, k) in ops {
            let rec = Recording::start();
            let out = batch.advance_boxes_simplified(s, k);
            let batch_counters = rec.finish();

            let rec = Recording::start();
            let (mut used, mut progress, mut consumed) = (0u128, 0u128, 0u64);
            for _ in 0..k {
                if reference.is_done() {
                    break;
                }
                let o = reference.advance_box_simplified(s);
                used += o.used;
                progress += o.progress;
                consumed += 1;
            }
            let ref_counters = rec.finish();

            prop_assert_eq!(out.consumed, consumed, "s={} k={}", s, k);
            prop_assert_eq!(out.used, used, "s={} k={}", s, k);
            prop_assert_eq!(out.progress, progress, "s={} k={}", s, k);
            prop_assert_eq!(out.done, reference.is_done());
            prop_assert_eq!(batch.fingerprint(), reference.fingerprint(), "s={} k={}", s, k);
            prop_assert_eq!(batch_counters, ref_counters, "s={} k={}", s, k);
            if out.done {
                break;
            }
        }
    }

    /// Capacity model: `advance_boxes_capacity(x, γ, k)` ==
    /// `k × advance_box_capacity(x, γ)` in state, totals, and counters.
    #[test]
    fn capacity_batch_equals_per_box(
        params in any_params(),
        depth in 2u32..=3,
        cost_factor in 1u64..=2,
        ops in proptest::collection::vec((1u64..=600, 1u64..=40), 1..12),
    ) {
        let (mut batch, mut reference) = mirror(params, depth);
        for (s, k) in ops {
            let rec = Recording::start();
            let out = batch.advance_boxes_capacity(s, cost_factor, k);
            let batch_counters = rec.finish();

            let rec = Recording::start();
            let (mut used, mut progress, mut consumed) = (0u128, 0u128, 0u64);
            for _ in 0..k {
                if reference.is_done() {
                    break;
                }
                let o = reference.advance_box_capacity(s, cost_factor);
                used += o.used;
                progress += o.progress;
                consumed += 1;
            }
            let ref_counters = rec.finish();

            prop_assert_eq!(out.consumed, consumed, "s={} k={} γ={}", s, k, cost_factor);
            prop_assert_eq!(out.used, used, "s={} k={} γ={}", s, k, cost_factor);
            prop_assert_eq!(out.progress, progress, "s={} k={} γ={}", s, k, cost_factor);
            prop_assert_eq!(out.done, reference.is_done());
            prop_assert_eq!(
                batch.fingerprint(),
                reference.fingerprint(),
                "s={} k={} γ={}", s, k, cost_factor
            );
            prop_assert_eq!(batch_counters, ref_counters, "s={} k={} γ={}", s, k, cost_factor);
            if out.done {
                break;
            }
        }
    }

    /// Interleaving the two models' batch calls on one cursor also mirrors
    /// the interleaved per-box calls (the cursor is model-agnostic state).
    #[test]
    fn mixed_model_batches_mirror_per_box(
        params in any_params(),
        ops in proptest::collection::vec(
            (proptest::bool::ANY, 1u64..=300, 1u64..=20),
            1..10,
        ),
    ) {
        let (mut batch, mut reference) = mirror(params, 3);
        for (capacity, s, k) in ops {
            let out = if capacity {
                batch.advance_boxes_capacity(s, 1, k)
            } else {
                batch.advance_boxes_simplified(s, k)
            };
            let mut consumed = 0u64;
            for _ in 0..k {
                if reference.is_done() {
                    break;
                }
                if capacity {
                    reference.advance_box_capacity(s, 1);
                } else {
                    reference.advance_box_simplified(s);
                }
                consumed += 1;
            }
            prop_assert_eq!(out.consumed, consumed);
            prop_assert_eq!(batch.fingerprint(), reference.fingerprint());
            if out.done {
                break;
            }
        }
    }
}

/// Pinned non-proptest regression: a deep tree with a size that triggers the
/// multi-sibling collapse (End layout, empty mid chunks) on every level.
#[test]
fn deep_constant_run_collapses_and_matches() {
    let params = AbcParams::mm_scan();
    let n = params.canonical_size(6);
    let cf = ClosedForms::for_size(params, n).unwrap();
    let mut batch = ExecCursor::new(cf.clone());
    let mut reference = ExecCursor::new(cf);
    let rec = Recording::start();
    let out = batch.advance_boxes_simplified(16, 1_000_000);
    let batch_counters = rec.finish();
    let rec = Recording::start();
    let (mut used, mut progress, mut consumed) = (0u128, 0u128, 0u64);
    while consumed < 1_000_000 && !reference.is_done() {
        let o = reference.advance_box_simplified(16);
        used += o.used;
        progress += o.progress;
        consumed += 1;
    }
    let ref_counters = rec.finish();
    assert_eq!(out.consumed, consumed);
    assert_eq!(out.used, used);
    assert_eq!(out.progress, progress);
    assert_eq!(batch.fingerprint(), reference.fingerprint());
    assert_eq!(batch_counters, ref_counters);
}
