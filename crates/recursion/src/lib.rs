//! # cadapt-recursion — (a, b, c)-regular algorithms as executable objects
//!
//! An *(a, b, c)-regular* algorithm (Definition 2 of the paper) recursively
//! splits a problem of size n blocks into `a` subproblems of size n/b, plus a
//! linear scan of size n^c; the base case is O(1) blocks. This crate turns
//! that definition into something that can be *run* against a square profile:
//!
//! * [`AbcParams`] — the parameters (a, b, c), the base-case size, and the
//!   placement of scan work around the recursive calls, with named presets
//!   for the classical algorithms the paper discusses (MM-Scan, MM-Inplace,
//!   Strassen, cache-oblivious DP, the Gaussian-elimination paradigm).
//! * [`ClosedForms`] — exact per-level leaf counts, scan lengths, and serial
//!   times T(n) = a·T(n/b) + scan(n).
//! * [`ExecCursor`] — a lazy cursor into the (enormous) execution: it
//!   advances *per box* in O(a · depth) time using the closed forms — or a
//!   whole *run* of equal boxes in closed form (bit-identical totals) —
//!   never materialising the recursion tree.
//! * [`ExecModel`] — the two box-consumption semantics: the paper's §4
//!   *simplified caching model* (used by the theory) and a *block-capacity*
//!   charging model (the faithful constant-factor generalisation).
//! * [`run_on_profile`] — the driver: feed boxes from a
//!   [`BoxSource`](cadapt_core::BoxSource), collect an
//!   [`AdaptivityReport`](cadapt_core::AdaptivityReport).
//! * [`probe`] — empirical potential measurement (Lemma 1 validation).
//! * [`no_catchup`] — the No-Catch-up Lemma (Lemma 2) as an executable
//!   predicate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod closed_form;
pub mod cursor;
pub mod model;
pub mod no_catchup;
pub mod params;
pub mod probe;
pub mod run;
pub mod walk;

pub use cache::{closed_forms_for, cursor_for};
pub use closed_form::ClosedForms;
pub use cursor::{BatchOutcome, BoxOutcome, ExecCursor};
pub use model::ExecModel;
pub use params::{AbcParams, ScanLayout};
pub use run::{
    run_cursor_on_profile, run_cursor_with_ledger, run_on_profile, run_with_ledger, RunConfig,
    RunError,
};
