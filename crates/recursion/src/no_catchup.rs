//! The No-Catch-up Lemma (Lemma 2) as an executable predicate.
//!
//! *Delaying the start of an algorithm can never help it finish earlier.*
//! Formally: fix a square sequence S = (□_1, …, □_k). If running S from
//! reference position r_i ends at r_j, then running S from any earlier
//! r_{i'} (i' < i) ends at some r_{j'} with j' ≤ j.
//!
//! The lemma is a primitive of every robustness proof in §4 of the paper
//! (it is what lets a perturbed profile "re-synchronise" with the
//! algorithm). Here it becomes a property we can test directly against the
//! execution models: [`final_positions`] runs the same box sequence from two
//! start offsets and returns the two final serial positions;
//! [`no_catchup_holds`] checks the earlier start does not finish later.

use crate::model::ExecModel;
use crate::params::AbcParams;
use cadapt_core::{Blocks, CoreError, Io};

/// Run `boxes` from serial offsets `start_early ≤ start_late` and return the
/// final serial positions (earlier start first).
///
/// # Errors
///
/// Propagates [`CoreError`] for a non-canonical `n`.
///
/// # Panics
///
/// Panics if `start_early > start_late`.
pub fn final_positions(
    params: AbcParams,
    n: Blocks,
    boxes: &[Blocks],
    start_early: Io,
    start_late: Io,
    model: ExecModel,
) -> Result<(Io, Io), CoreError> {
    assert!(start_early <= start_late, "offsets must be ordered");
    // One cache probe per run: each lookup replays the construction
    // counters, so totals match per-run fresh construction exactly.
    let run = |start: Io| -> Result<Io, CoreError> {
        let mut cursor = crate::cache::cursor_for(params, n)?;
        let _ = cursor.advance_accesses(start);
        for &b in boxes {
            if cursor.is_done() {
                break;
            }
            let _ = model.advance(&mut cursor, b);
        }
        Ok(cursor.serial_position())
    };
    Ok((run(start_early)?, run(start_late)?))
}

/// Does the No-Catch-up Lemma hold for this instance? (It always should;
/// a `false` here is a bug in the execution model.)
///
/// # Errors
///
/// Propagates [`CoreError`] for a non-canonical `n`.
pub fn no_catchup_holds(
    params: AbcParams,
    n: Blocks,
    boxes: &[Blocks],
    start_early: Io,
    start_late: Io,
    model: ExecModel,
) -> Result<bool, CoreError> {
    let (early, late) = final_positions(params, n, boxes, start_early, start_late, model)?;
    Ok(early <= late)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn trivial_instance() {
        assert!(no_catchup_holds(
            AbcParams::mm_scan(),
            64,
            &[4, 16, 4],
            0,
            100,
            ExecModel::Simplified,
        )
        .unwrap());
    }

    #[test]
    fn equal_starts_tie() {
        let (a, b) = final_positions(
            AbcParams::mm_scan(),
            64,
            &[16, 16],
            50,
            50,
            ExecModel::Simplified,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn no_catchup_simplified(
            boxes in proptest::collection::vec(
                prop_oneof![Just(1u64), Just(2), Just(4), Just(16), Just(64), 1u64..100],
                1..40,
            ),
            s1 in 0u64..1000,
            s2 in 0u64..1000,
        ) {
            let (early, late) = (s1.min(s2), s1.max(s2));
            prop_assert!(no_catchup_holds(
                AbcParams::mm_scan(),
                64,
                &boxes,
                Io::from(early),
                Io::from(late),
                ExecModel::Simplified,
            ).unwrap());
        }

        #[test]
        fn no_catchup_capacity(
            boxes in proptest::collection::vec(1u64..200, 1..40),
            s1 in 0u64..1000,
            s2 in 0u64..1000,
        ) {
            let (early, late) = (s1.min(s2), s1.max(s2));
            prop_assert!(no_catchup_holds(
                AbcParams::mm_scan(),
                64,
                &boxes,
                Io::from(early),
                Io::from(late),
                ExecModel::capacity(),
            ).unwrap());
        }

        #[test]
        fn no_catchup_other_params(
            boxes in proptest::collection::vec(1u64..64, 1..30),
            s1 in 0u64..500,
            s2 in 0u64..500,
        ) {
            let (early, late) = (s1.min(s2), s1.max(s2));
            for params in [AbcParams::strassen(), AbcParams::co_dp()] {
                let n = params.canonical_size(4);
                prop_assert!(no_catchup_holds(
                    params,
                    n,
                    &boxes,
                    Io::from(early),
                    Io::from(late),
                    ExecModel::Simplified,
                ).unwrap());
            }
        }
    }
}
