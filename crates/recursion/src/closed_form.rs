//! Exact closed forms for (a, b, c)-regular executions.
//!
//! The execution cursor never materialises the recursion tree; instead it
//! jumps over whole subtrees using the per-level tables computed here:
//! subtree leaf counts, scan lengths, and serial times
//! T(k) = a · T(k−1) + scan(size(k)) with T(0) = base.

use crate::params::AbcParams;
use cadapt_core::{cast, Blocks, CoreError, Io, Leaves};

/// Per-level tables for a problem of canonical size n = base · b^K.
///
/// Level k refers to subproblems of size base · b^k; level K is the root and
/// level 0 the base case.
#[derive(Debug, Clone)]
pub struct ClosedForms {
    params: AbcParams,
    /// size[k] = base · b^k.
    sizes: Vec<Blocks>,
    /// leaves[k] = a^k: base cases in a level-k subtree.
    leaves: Vec<Leaves>,
    /// scan[k] = scan_len(size[k]): total scan accesses of one level-k node.
    scans: Vec<u64>,
    /// time[k] = serial accesses of a level-k subtree.
    times: Vec<Io>,
}

impl ClosedForms {
    /// Build tables for a problem of size `n` blocks.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if `n` is not a canonical size
    /// (base · b^k) for `params`, or if a table entry overflows.
    pub fn for_size(params: AbcParams, n: Blocks) -> Result<Self, CoreError> {
        let depth = params
            .depth_of(n)
            .ok_or_else(|| CoreError::InvalidParameter {
                name: "n",
                message: format!(
                    "{n} is not a canonical problem size (base {} times a power of {})",
                    params.base(),
                    params.b()
                ),
            })?;
        let levels = cast::usize_from_u32(depth) + 1;
        let mut sizes: Vec<Blocks> = Vec::with_capacity(levels);
        let mut leaves: Vec<Leaves> = Vec::with_capacity(levels);
        let mut scans: Vec<u64> = Vec::with_capacity(levels);
        let mut times: Vec<Io> = Vec::with_capacity(levels);
        let overflow = |what: &'static str| CoreError::InvalidParameter {
            name: "n",
            message: format!("{what} overflows at n = {n}"),
        };
        for k in 0..levels {
            let size = params.canonical_size(cast::u32_from_usize(k));
            sizes.push(size);
            let leaf: Leaves = if k == 0 {
                1
            } else {
                leaves[k - 1] // cadapt-lint: allow(panic-reach) -- k > 0 in this arm and level k-1 was pushed on the previous iteration
                    .checked_mul(Leaves::from(params.a()))
                    .ok_or_else(|| overflow("leaf count"))?
            };
            leaves.push(leaf);
            let scan = params.scan_len(size);
            scans.push(scan);
            let time: Io = if k == 0 {
                // A base case of `base` blocks performs `base` accesses.
                Io::from(params.base())
            } else {
                times[k - 1] // cadapt-lint: allow(panic-reach) -- k > 0 in this arm and level k-1 was pushed on the previous iteration
                    .checked_mul(Io::from(params.a()))
                    .and_then(|t| t.checked_add(Io::from(scan)))
                    .ok_or_else(|| overflow("serial time"))?
            };
            times.push(time);
        }
        Ok(ClosedForms {
            params,
            sizes,
            leaves,
            scans,
            times,
        })
    }

    /// The parameters these tables were built for.
    #[must_use]
    pub fn params(&self) -> &AbcParams {
        &self.params
    }

    /// Root depth K (number of recursion levels below the root).
    #[must_use]
    pub fn depth(&self) -> u32 {
        cast::u32_from_usize(self.sizes.len() - 1)
    }

    /// Problem size at level k.
    #[must_use]
    pub fn size(&self, k: u32) -> Blocks {
        self.sizes[cast::usize_from_u32(k)] // cadapt-lint: allow(panic-reach) -- deliberate loud contract: k <= depth(), a caller passing a deeper level is a logic bug
    }

    /// Root problem size n.
    #[must_use]
    pub fn root_size(&self) -> Blocks {
        // cadapt-lint: allow(panic-reach) -- invariant: for_size always builds at least one level
        *self.sizes.last().expect("tables are never empty")
    }

    /// Base cases in one level-k subtree: a^k.
    #[must_use]
    pub fn leaves(&self, k: u32) -> Leaves {
        self.leaves[cast::usize_from_u32(k)] // cadapt-lint: allow(panic-reach) -- deliberate loud contract: k <= depth(), a caller passing a deeper level is a logic bug
    }

    /// Base cases in the whole problem: a^K.
    #[must_use]
    pub fn total_leaves(&self) -> Leaves {
        // cadapt-lint: allow(panic-reach) -- invariant: for_size always builds at least one level
        *self.leaves.last().expect("tables are never empty")
    }

    /// Total scan accesses of one level-k node (not counting descendants).
    #[must_use]
    pub fn scan(&self, k: u32) -> u64 {
        self.scans[cast::usize_from_u32(k)] // cadapt-lint: allow(panic-reach) -- deliberate loud contract: k <= depth(), a caller passing a deeper level is a logic bug
    }

    /// Serial accesses of a level-k subtree: T(k) = a·T(k−1) + scan(k).
    #[must_use]
    pub fn time(&self, k: u32) -> Io {
        self.times[cast::usize_from_u32(k)] // cadapt-lint: allow(panic-reach) -- deliberate loud contract: k <= depth(), a caller passing a deeper level is a logic bug
    }

    /// Serial accesses of the whole problem.
    #[must_use]
    pub fn total_time(&self) -> Io {
        // cadapt-lint: allow(panic-reach) -- invariant: for_size always builds at least one level
        *self.times.last().expect("tables are never empty")
    }

    /// The largest level whose subtree size is ≤ `s` blocks, or `None` if
    /// even a base case exceeds `s`. This is the level a size-s box
    /// "completes to the end of" under the §4 simplified model.
    #[must_use]
    pub fn level_fitting(&self, s: Blocks) -> Option<u32> {
        if s < self.sizes[0] {
            return None;
        }
        // sizes are strictly increasing; linear scan is fine (≤ ~40 levels).
        let mut level = 0u32;
        for (k, &size) in self.sizes.iter().enumerate().skip(1) {
            if size <= s {
                level = cast::u32_from_usize(k);
            } else {
                break;
            }
        }
        Some(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm_scan_tables() {
        let p = AbcParams::mm_scan();
        let cf = ClosedForms::for_size(p, 64).unwrap();
        assert_eq!(cf.depth(), 3);
        assert_eq!(cf.size(0), 1);
        assert_eq!(cf.size(3), 64);
        assert_eq!(cf.leaves(3), 512); // 8^3
        assert_eq!(cf.total_leaves(), 512);
        // T(0)=1, T(1)=8·1+4=12, T(2)=8·12+16=112, T(3)=8·112+64=960.
        assert_eq!(cf.time(0), 1);
        assert_eq!(cf.time(1), 12);
        assert_eq!(cf.time(2), 112);
        assert_eq!(cf.total_time(), 960);
        assert_eq!(cf.scan(3), 64);
    }

    #[test]
    fn mm_inplace_tables() {
        let p = AbcParams::mm_inplace();
        let cf = ClosedForms::for_size(p, 16).unwrap();
        // T(0)=1, T(1)=8+1=9, T(2)=72+1=73. Scans are Θ(1).
        assert_eq!(cf.scan(2), 1);
        assert_eq!(cf.time(2), 73);
        assert_eq!(cf.leaves(2), 64);
    }

    #[test]
    fn non_canonical_size_rejected() {
        let p = AbcParams::mm_scan();
        assert!(ClosedForms::for_size(p, 60).is_err());
        assert!(ClosedForms::for_size(p, 0).is_err());
    }

    #[test]
    fn respects_base() {
        let p = AbcParams::mm_scan().with_base(4);
        let cf = ClosedForms::for_size(p, 64).unwrap();
        assert_eq!(cf.depth(), 2);
        assert_eq!(cf.size(0), 4);
        // T(0) = 4 (base blocks -> 4 accesses), T(1) = 8·4+16 = 48,
        // T(2) = 8·48 + 64 = 448.
        assert_eq!(cf.total_time(), 448);
        assert_eq!(cf.total_leaves(), 64);
    }

    #[test]
    fn level_fitting() {
        let p = AbcParams::mm_scan();
        let cf = ClosedForms::for_size(p, 64).unwrap();
        assert_eq!(cf.level_fitting(0), None);
        assert_eq!(cf.level_fitting(1), Some(0));
        assert_eq!(cf.level_fitting(3), Some(0));
        assert_eq!(cf.level_fitting(4), Some(1));
        assert_eq!(cf.level_fitting(63), Some(2));
        assert_eq!(cf.level_fitting(64), Some(3));
        assert_eq!(cf.level_fitting(1 << 40), Some(3)); // clamped at root
    }

    #[test]
    fn deep_tables_do_not_overflow_u128() {
        // n = 4^20 with (8,4,1): leaves 8^20 ≈ 1.15e18, time ~ n^1.5 — all
        // comfortably inside u128.
        let p = AbcParams::mm_scan();
        let n = 4u64.pow(20);
        let cf = ClosedForms::for_size(p, n).unwrap();
        assert_eq!(cf.total_leaves(), 8u128.pow(20));
        assert!(cf.total_time() > cf.total_leaves());
    }

    #[test]
    fn time_matches_recursive_definition_strassen() {
        let p = AbcParams::strassen();
        let cf = ClosedForms::for_size(p, 256).unwrap();
        // Independent recursive evaluation.
        fn t(p: &AbcParams, n: u64) -> u128 {
            if n == p.base() {
                u128::from(p.base())
            } else {
                u128::from(p.a()) * t(p, n / p.b()) + u128::from(p.scan_len(n))
            }
        }
        assert_eq!(cf.total_time(), t(&p, 256));
    }
}
