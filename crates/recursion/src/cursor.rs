//! The lazy execution cursor.
//!
//! [`ExecCursor`] tracks a position inside the execution of an
//! (a, b, c)-regular algorithm without materialising the recursion tree:
//! the position is the stack of tree nodes from the root to the pending
//! access, and every operation advances it using the
//! [`ClosedForms`] tables, skipping whole subtrees in
//! O(1) each. Worst-case executions at benchmark sizes have billions of
//! accesses and millions of boxes; each box costs O(a · depth).
//!
//! ## Node anatomy
//!
//! A level-k node (size base · b^k) executes, in order: scan chunk 0,
//! child 0, scan chunk 1, child 1, …, child a−1, scan chunk a, where the
//! chunk lengths come from [`AbcParams::scan_chunk`](crate::AbcParams) (for
//! the default `End` layout all scan work is in chunk a). A level-0 node is
//! a base case: a single run of `base` accesses, modelled as one chunk and
//! zero children.
//!
//! ## Box semantics
//!
//! The two ways a box advances the cursor — the §4 *simplified caching
//! model* ([`ExecCursor::advance_box_simplified`]) and the *block-capacity*
//! charging model ([`ExecCursor::advance_box_capacity`]) — are documented on
//! the methods and selected via [`ExecModel`](crate::ExecModel).

use crate::closed_form::ClosedForms;
use crate::params::AbcParams;
use cadapt_core::{cast, Blocks, Io, Leaves};
use std::sync::Arc;

/// One node on the path from the root to the pending access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frame {
    /// Level of this node (0 = base case, depth = root).
    k: u32,
    /// Current slot: chunk `slot` runs before child `slot`; slot = a is the
    /// final chunk. Base cases only have slot 0.
    slot: u64,
    /// Accesses completed within chunk `slot`.
    chunk_done: u64,
}

impl Frame {
    fn fresh(k: u32) -> Frame {
        Frame {
            k,
            slot: 0,
            chunk_done: 0,
        }
    }
}

/// What one box achieved against the cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoxOutcome {
    /// I/Os of the box the algorithm consumed.
    pub used: Io,
    /// Base cases completed (at least partly) within the box.
    pub progress: Leaves,
    /// Did the root complete during this box?
    pub done: bool,
}

/// What a *run* of identical boxes achieved against the cursor
/// ([`ExecCursor::advance_boxes_simplified`] and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Boxes actually consumed: the requested count, or fewer when the
    /// root completed mid-run.
    pub consumed: u64,
    /// Total I/Os used across the consumed boxes.
    pub used: Io,
    /// Total base cases completed across the consumed boxes.
    pub progress: Leaves,
    /// Did the root complete during the run?
    pub done: bool,
}

/// Tables derived from the [`ClosedForms`] at cursor construction — pure
/// functions of (params, n), shared between every cursor over the same
/// problem (the process-wide cache in [`crate::cache`] hands them out
/// behind an [`Arc`] so per-trial cursor construction is two refcount
/// bumps plus the initial descent, not a table rebuild).
#[derive(Debug)]
struct DerivedTables {
    /// Suffix sums of chunk lengths per level: `chunk_suffix[k][s]` =
    /// Σ_{j ≥ s} chunk_len(k, j).
    chunk_suffix: Vec<Vec<u64>>,
    /// `descent[k]` = frames [`ExecCursor::normalize`] pushes when it
    /// enters a fresh level-k subtree (1 + the chain through empty leading
    /// chunks).
    descent: Vec<u64>,
    /// `mid_chunks_zero[k]` = the scan chunks *between* children (slots
    /// 1..a−1) are all empty at level k, so completing one child descends
    /// straight into the next — the condition for batching sibling
    /// completions in closed form. Always true for the `End`/`Start`
    /// layouts; false at `Split` levels with nonzero scans.
    mid_chunks_zero: Vec<bool>,
}

/// A lazy position inside an (a, b, c)-regular execution.
#[derive(Debug, Clone)]
pub struct ExecCursor {
    cf: Arc<ClosedForms>,
    /// Path from root (index 0) to the innermost started node. Empty stack
    /// means the execution has completed.
    stack: Vec<Frame>,
    /// Derived per-level tables, shared across cursors of one problem.
    tables: Arc<DerivedTables>,
}

impl ExecCursor {
    /// A cursor at the very start of a problem of size `cf.root_size()`.
    #[must_use]
    pub fn new(cf: ClosedForms) -> Self {
        Self::from_arc(Arc::new(cf))
    }

    /// As [`ExecCursor::new`], but sharing an already-built table set —
    /// the entry point the process-wide [`crate::cache`] uses so repeated
    /// trials over the same (params, n) skip the table construction.
    #[must_use]
    pub fn from_arc(cf: Arc<ClosedForms>) -> Self {
        let params = *cf.params();
        let mut chunk_suffix = Vec::with_capacity(cast::usize_from_u32(cf.depth()) + 1);
        for k in 0..=cf.depth() {
            let slots = Self::slots_at(&params, k);
            let mut suffix = vec![0u64; cast::usize_from_u64(slots) + 1];
            for s in (0..slots).rev() {
                // cadapt-lint: allow(panic-reach) -- suffix has slots+1 entries, so s and s+1 are both in-bounds for s < slots
                suffix[cast::usize_from_u64(s)] = suffix[cast::usize_from_u64(s) + 1]
                    + Self::chunk_len_static(&params, &cf, k, s);
            }
            chunk_suffix.push(suffix);
        }
        let mut descent = vec![1u64];
        for k in 1..=cf.depth() {
            let through = if Self::chunk_len_static(&params, &cf, k, 0) == 0 {
                descent[cast::usize_from_u32(k) - 1] // cadapt-lint: allow(panic-reach) -- k >= 1 here and descent holds one entry per level below k
            } else {
                0
            };
            descent.push(1 + through);
        }
        let mid_chunks_zero: Vec<bool> = (0..=cf.depth())
            .map(|k| {
                k >= 1 && {
                    let suffix = &chunk_suffix[cast::usize_from_u32(k)]; // cadapt-lint: allow(panic-reach) -- chunk_suffix was filled for every k in 0..=depth above
                    suffix[1] == suffix[cast::usize_from_u64(params.a())] // cadapt-lint: allow(panic-reach) -- for k >= 1 there are a >= 2 slots, so indices 1 and a are in-bounds
                }
            })
            .collect();
        let root = Frame::fresh(cf.depth());
        let mut cursor = ExecCursor {
            cf,
            stack: vec![root],
            tables: Arc::new(DerivedTables {
                chunk_suffix,
                descent,
                mid_chunks_zero,
            }),
        };
        cursor.normalize();
        cursor
    }

    /// The shared closed-form tables, for cache storage.
    #[must_use]
    pub fn shared_forms(&self) -> Arc<ClosedForms> {
        Arc::clone(&self.cf)
    }

    fn params(&self) -> &AbcParams {
        self.cf.params()
    }

    /// The closed-form tables this cursor runs over.
    #[must_use]
    pub fn closed_forms(&self) -> &ClosedForms {
        &self.cf
    }

    /// Number of chunk slots at level k (a + 1 for internal, 1 for leaves).
    #[inline]
    fn slots_at(params: &AbcParams, k: u32) -> u64 {
        if k == 0 {
            1
        } else {
            params.a() + 1
        }
    }

    /// Number of children at level k (a for internal, 0 for leaves).
    #[inline]
    fn children_at(&self, k: u32) -> u64 {
        if k == 0 {
            0
        } else {
            self.params().a()
        }
    }

    #[inline]
    fn chunk_len_static(params: &AbcParams, cf: &ClosedForms, k: u32, slot: u64) -> u64 {
        if k == 0 {
            // The base case is one run of `base` accesses.
            params.base()
        } else {
            params.scan_chunk(cf.size(k), slot)
        }
    }

    #[inline]
    fn chunk_len(&self, k: u32, slot: u64) -> u64 {
        Self::chunk_len_static(self.params(), &self.cf, k, slot)
    }

    /// Has the root completed?
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.stack.is_empty()
    }

    /// Level of the innermost node containing the pending access.
    /// `None` when done.
    #[must_use]
    pub fn current_level(&self) -> Option<u32> {
        self.stack.last().map(|f| f.k)
    }

    /// Size (blocks) of the innermost node containing the pending access.
    #[must_use]
    pub fn current_node_size(&self) -> Option<Blocks> {
        self.current_level().map(|k| self.cf.size(k))
    }

    /// Descend / pop until the bottom frame points at a pending access
    /// (chunk_done < chunk_len), or the stack empties (done).
    ///
    /// Inlined for the common fast exit: an already-normalized cursor takes
    /// the first-iteration `chunk_done < clen` return.
    #[inline]
    fn normalize(&mut self) {
        loop {
            let Some(f) = self.stack.last().copied() else {
                return;
            };
            let clen = self.chunk_len(f.k, f.slot);
            if f.chunk_done < clen {
                return;
            }
            if f.slot < self.children_at(f.k) {
                // Chunk `slot` finished; enter child `slot`.
                cadapt_core::counters::count_cursor_steps(1);
                self.stack.push(Frame::fresh(f.k - 1));
                continue;
            }
            // Final chunk finished: node complete.
            self.pop_and_advance_parent();
        }
    }

    /// Pop the bottom frame and move its parent to the next slot.
    fn pop_and_advance_parent(&mut self) {
        cadapt_core::counters::count_cursor_steps(1);
        self.stack.pop();
        if let Some(p) = self.stack.last_mut() {
            p.slot += 1;
            p.chunk_done = 0;
        }
    }

    /// Serial accesses remaining from the current position to the end of
    /// the subtree whose frame sits at `idx` in the stack (inclusive).
    fn remaining_in_subtree(&self, idx: usize) -> Io {
        let mut rem: Io = 0;
        let bottom = self.stack.len() - 1;
        for (i, f) in self.stack.iter().enumerate().skip(idx) {
            let children = self.children_at(f.k);
            if i == bottom {
                // Rest of the current chunk, all later chunks, and all
                // children not yet entered (indices ≥ slot).
                let chunks = Io::from(
                    self.tables.chunk_suffix[cast::usize_from_u32(f.k)] // cadapt-lint: allow(panic-reach) -- stack frames keep k <= depth, the table's index range
                        [cast::usize_from_u64(f.slot)], // cadapt-lint: allow(panic-reach) -- frames keep slot <= slots_at(k) and the suffix row has slots+1 entries
                ) - Io::from(f.chunk_done);
                let kids =
                    Io::from(children - f.slot) * if f.k > 0 { self.cf.time(f.k - 1) } else { 0 };
                rem += chunks + kids;
            } else {
                // An ancestor: child `slot` is in progress (accounted
                // deeper); count chunks after slot and children after slot.
                let chunks = Io::from(
                    self.tables.chunk_suffix[cast::usize_from_u32(f.k)] // cadapt-lint: allow(panic-reach) -- stack frames keep k <= depth, the table's index range
                        [cast::usize_from_u64(f.slot) + 1], // cadapt-lint: allow(panic-reach) -- an ancestor frame has slot < slots_at(k), so slot+1 is within the slots+1-entry row
                );
                let kids = Io::from(children - f.slot - 1) * self.cf.time(f.k - 1);
                rem += chunks + kids;
            }
        }
        rem
    }

    /// Base cases remaining (not yet fully completed) in the subtree whose
    /// frame sits at `idx` (inclusive of a partially-done leaf).
    fn leaves_remaining_in_subtree(&self, idx: usize) -> Leaves {
        let mut rem: Leaves = 0;
        let bottom = self.stack.len() - 1;
        for (i, f) in self.stack.iter().enumerate().skip(idx) {
            let children = self.children_at(f.k);
            if i == bottom {
                if f.k == 0 {
                    // The pending leaf itself.
                    rem += 1;
                } else {
                    rem += Leaves::from(children - f.slot) * self.cf.leaves(f.k - 1);
                }
            } else {
                rem += Leaves::from(children - f.slot - 1) * self.cf.leaves(f.k - 1);
            }
        }
        rem
    }

    /// Serial accesses remaining to complete the whole problem.
    #[must_use]
    pub fn remaining_time(&self) -> Io {
        if self.stack.is_empty() {
            0
        } else {
            self.remaining_in_subtree(0)
        }
    }

    /// The serial index of the pending access (0 = start of execution,
    /// total time = done). Strictly increases under every advancement
    /// operation — the coordinate used by the No-Catch-up Lemma.
    #[must_use]
    pub fn serial_position(&self) -> Io {
        self.cf.total_time() - self.remaining_time()
    }

    /// Base cases not yet completed in the whole problem.
    #[must_use]
    pub fn leaves_remaining(&self) -> Leaves {
        if self.stack.is_empty() {
            0
        } else {
            self.leaves_remaining_in_subtree(0)
        }
    }

    /// Advance by `t` serial accesses (or to completion, whichever first).
    ///
    /// Returns (accesses actually consumed, base cases completed). Used for
    /// positioning the cursor at arbitrary offsets (potential probes,
    /// no-catch-up experiments) and for ideal-cache baselines; box-driven
    /// advancement uses the `advance_box_*` methods instead.
    pub fn advance_accesses(&mut self, t: Io) -> (Io, Leaves) {
        let mut left = t;
        let mut progress: Leaves = 0;
        while left > 0 {
            let Some(f) = self.stack.last().copied() else {
                break;
            };
            let clen = self.chunk_len(f.k, f.slot);
            if f.chunk_done < clen {
                let avail = Io::from(clen - f.chunk_done);
                let take = avail.min(left);
                // cadapt-lint: allow(panic-reach) -- invariant: the cursor stack is non-empty until the run completes
                let bottom = self.stack.last_mut().expect("nonempty");
                bottom.chunk_done += cast::u64_from_u128(take);
                left -= take;
                if f.k == 0 && bottom.chunk_done == clen {
                    progress += 1;
                }
                continue;
            }
            if f.slot < self.children_at(f.k) {
                // About to enter child `slot`: skip it whole if it fits.
                let sub = self.cf.time(f.k - 1);
                if sub <= left {
                    left -= sub;
                    progress += self.cf.leaves(f.k - 1);
                    // cadapt-lint: allow(panic-reach) -- invariant: the cursor stack is non-empty until the run completes
                    let bottom = self.stack.last_mut().expect("nonempty");
                    bottom.slot += 1;
                    bottom.chunk_done = 0;
                    cadapt_core::counters::count_cursor_steps(1);
                } else {
                    cadapt_core::counters::count_cursor_steps(1);
                    self.stack.push(Frame::fresh(f.k - 1));
                }
                continue;
            }
            self.pop_and_advance_parent();
        }
        self.normalize();
        (t - left, progress)
    }

    /// Consume one box of size `s` under the paper's §4 **simplified
    /// caching model**:
    ///
    /// * if the pending access lies in a subproblem of size ≤ s, the box
    ///   completes execution to the end of the *largest* enclosing problem
    ///   of size ≤ s (the "problem of size s containing it" when s is a
    ///   canonical size; the root if the whole problem fits), and goes no
    ///   further;
    /// * otherwise the pending access is scan work of a node larger than s
    ///   (or base-case work when s < base): the box advances
    ///   min(s, rest of the current chunk) accesses.
    ///
    /// Each box performs exactly one of these actions, matching §4.
    pub fn advance_box_simplified(&mut self, s: Blocks) -> BoxOutcome {
        self.normalize();
        let Some(f) = self.stack.last().copied() else {
            return BoxOutcome {
                used: 0,
                progress: 0,
                done: true,
            };
        };
        if self.cf.size(f.k) <= s {
            // Complete the largest enclosing problem of size ≤ s.
            let j = self
                .cf
                .level_fitting(s)
                // cadapt-lint: allow(panic-reach) -- invariant: size(f.k) <= s guarantees level_fitting succeeds
                .expect("size(f.k) <= s implies a fitting level exists");
            let idx = cast::usize_from_u32(self.cf.depth() - j);
            let progress = self.leaves_remaining_in_subtree(idx);
            // I/O cost: the subtree's ≤ size(j) distinct blocks stream in
            // once and the rest is in-cache computation (free in the DAM).
            let used = Io::from(self.cf.size(j).min(s));
            cadapt_core::counters::count_cursor_steps(cast::u64_from_usize(self.stack.len() - idx));
            self.stack.truncate(idx);
            if !self.stack.is_empty() {
                // The frame formerly at `idx` was the child `slot` of the
                // frame now on top; move that parent past it.
                // cadapt-lint: allow(panic-reach) -- invariant: the cursor stack is non-empty until the run completes
                let p = self.stack.last_mut().expect("nonempty");
                p.slot += 1;
                p.chunk_done = 0;
            }
            self.normalize();
            BoxOutcome {
                used,
                progress,
                done: self.is_done(),
            }
        } else {
            // Scan (or undersized-box base-case) advancement.
            let clen = self.chunk_len(f.k, f.slot);
            let avail = Io::from(clen - f.chunk_done);
            let take = avail.min(Io::from(s));
            // cadapt-lint: allow(panic-reach) -- invariant: the cursor stack is non-empty until the run completes
            let bottom = self.stack.last_mut().expect("nonempty");
            bottom.chunk_done += cast::u64_from_u128(take);
            let progress = Leaves::from(f.k == 0 && bottom.chunk_done == clen);
            self.normalize();
            BoxOutcome {
                used: take,
                progress,
                done: self.is_done(),
            }
        }
    }

    /// Consume one box of size `x` under the **block-capacity charging
    /// model**: the box grants a budget of x I/Os (equivalently, x distinct
    /// blocks — the box is x tall and x wide and the cache is cleared at its
    /// start). The cursor spends the budget greedily in execution order:
    ///
    /// * completing the *remainder* of any enclosing subtree of size m
    ///   costs `min(cost_factor · m, remaining accesses)` budget — the
    ///   subtree's ≤ Θ(m) distinct blocks (Definition 2) stream into the
    ///   box's cache once and all further computation, scans included, hits
    ///   cache (I/Os are the only cost in the DAM). The cursor takes the
    ///   largest enclosing subtree that fits the remaining budget;
    /// * otherwise scan and base-case accesses stream at one budget each.
    ///
    /// Charging the remainder rather than only untouched subtrees is what
    /// keeps the model faithful: a subproblem interrupted by a box boundary
    /// can still be finished cheaply by a later large box, exactly as a
    /// real cache re-loads its working set.
    ///
    /// `cost_factor` models the constant in "a problem of size m completes
    /// in a box of size Θ(m)"; 1 is the natural choice, larger values are
    /// exercised by the model-ablation experiment.
    pub fn advance_box_capacity(&mut self, x: Blocks, cost_factor: u64) -> BoxOutcome {
        assert!(cost_factor >= 1, "cost factor must be at least 1");
        let budget = Io::from(x);
        let mut left = budget;
        let mut progress: Leaves = 0;
        while left > 0 && !self.stack.is_empty() {
            if let Some((idx, charge)) = self.jump_completable(left, cost_factor) {
                left -= charge;
                progress += self.leaves_remaining_in_subtree(idx);
                cadapt_core::counters::count_cursor_steps(cast::u64_from_usize(
                    self.stack.len() - idx,
                ));
                self.stack.truncate(idx);
                if let Some(p) = self.stack.last_mut() {
                    p.slot += 1;
                    p.chunk_done = 0;
                }
                self.normalize();
                continue;
            }
            // cadapt-lint: allow(panic-reach) -- invariant: the cursor stack is non-empty until the run completes
            let f = *self.stack.last().expect("nonempty");
            let clen = self.chunk_len(f.k, f.slot);
            if f.chunk_done < clen {
                // Scan / base-case accesses stream at one budget each.
                let avail = Io::from(clen - f.chunk_done);
                let take = avail.min(left);
                // cadapt-lint: allow(panic-reach) -- invariant: the cursor stack is non-empty until the run completes
                let bottom = self.stack.last_mut().expect("nonempty");
                bottom.chunk_done += cast::u64_from_u128(take);
                left -= take;
                if f.k == 0 && bottom.chunk_done == clen {
                    progress += 1;
                }
                continue;
            }
            if f.slot < self.children_at(f.k) {
                // The child was too large to complete whole: enter it and
                // charge its pieces individually.
                cadapt_core::counters::count_cursor_steps(1);
                self.stack.push(Frame::fresh(f.k - 1));
                continue;
            }
            self.pop_and_advance_parent();
        }
        self.normalize();
        BoxOutcome {
            used: budget - left,
            progress,
            done: self.is_done(),
        }
    }

    /// The highest stack index whose subtree remainder can be completed
    /// within `left` budget, with its charge
    /// min(cost_factor · size, remaining accesses).
    fn jump_completable(&self, left: Io, cost_factor: u64) -> Option<(usize, Io)> {
        for (i, f) in self.stack.iter().enumerate() {
            let working_set = Io::from(self.cf.size(f.k)) * Io::from(cost_factor);
            let charge = working_set.min(self.remaining_in_subtree(i));
            if charge <= left {
                return Some((i, charge));
            }
        }
        None
    }

    /// Consume a run of `count` identical boxes of size `s` under the
    /// simplified model, in O(depth + levels-completed) per *segment* of
    /// the run rather than per box.
    ///
    /// Semantically equivalent to `count` calls of
    /// [`ExecCursor::advance_box_simplified`] (stopping early if the root
    /// completes): the final cursor state, the `used`/`progress` totals,
    /// and the cursor-step counter deltas are all bit-identical — the
    /// batched segments charge, in closed form, exactly what the per-box
    /// path would have charged step by step. The differential proptests in
    /// `tests/batch_equivalence.rs` enforce this.
    ///
    /// The run splits into two kinds of segments:
    ///
    /// * **Jump segments** — the pending access sits in a subproblem of
    ///   size ≤ s. Each box completes one subtree at the fitting level j;
    ///   when the scan chunks between siblings are empty (`End`/`Start`
    ///   layouts), up to `a − slot` sibling completions collapse into one
    ///   closed-form state update.
    /// * **Scan segments** — the pending access is scan work of a larger
    ///   node: ⌈avail / s⌉ boxes drain the chunk, computed directly.
    pub fn advance_boxes_simplified(&mut self, s: Blocks, count: u64) -> BatchOutcome {
        debug_assert!(s >= 1, "boxes must be positive");
        let mut out = BatchOutcome {
            consumed: 0,
            used: 0,
            progress: 0,
            done: self.is_done(),
        };
        while out.consumed < count {
            let Some(f) = self.stack.last().copied() else {
                break;
            };
            if self.cf.size(f.k) <= s {
                // Jump segment: complete subtrees at the fitting level.
                let j = self
                    .cf
                    .level_fitting(s)
                    // cadapt-lint: allow(panic-reach) -- invariant: size(f.k) <= s guarantees level_fitting succeeds
                    .expect("size(f.k) <= s implies a fitting level exists");
                let idx = cast::usize_from_u32(self.cf.depth() - j);
                if idx == 0 {
                    // The whole problem fits in one box: same as per-box.
                    out.progress += self.leaves_remaining_in_subtree(0);
                    out.used += Io::from(self.cf.size(j).min(s));
                    out.consumed += 1;
                    cadapt_core::counters::count_cursor_steps(cast::u64_from_usize(
                        self.stack.len(),
                    ));
                    self.stack.clear();
                    break;
                }
                let d0 = cast::u64_from_usize(self.stack.len());
                let parent = self.stack[idx - 1]; // cadapt-lint: allow(panic-reach) -- idx >= 1 on this path (idx == 0 completed the root and broke above)
                let siblings_left = self.params().a() - parent.slot;
                // cadapt-lint: allow(panic-reach) -- frame levels stay <= depth, the table's index range
                let m = if self.tables.mid_chunks_zero[cast::usize_from_u32(parent.k)] {
                    siblings_left.min(count - out.consumed)
                } else {
                    1
                };
                // Box 1 completes the (possibly partial) current subtree;
                // boxes 2..m each complete one fresh sibling of leaves(j)
                // base cases. The cursor-step total telescopes: the first
                // truncation pops d0 − idx frames, and every later box
                // re-descends and re-pops the descent chain of level j.
                out.progress +=
                    self.leaves_remaining_in_subtree(idx) + Leaves::from(m - 1) * self.cf.leaves(j);
                out.used += Io::from(m) * Io::from(self.cf.size(j).min(s));
                out.consumed += m;
                let d = self.tables.descent[cast::usize_from_u32(j)]; // cadapt-lint: allow(panic-reach) -- j is a frame level <= depth and descent has depth+1 entries
                cadapt_core::counters::count_cursor_steps(
                    (d0 - cast::u64_from_usize(idx)) + 2 * (m - 1) * d,
                );
                self.stack.truncate(idx);
                // cadapt-lint: allow(panic-reach) -- invariant: idx >= 1, so the stack still holds the parent frame
                let p = self.stack.last_mut().expect("idx >= 1");
                p.slot += m;
                p.chunk_done = 0;
                self.normalize();
            } else {
                // Scan segment: boxes nibble s accesses each until the
                // chunk drains or the run is exhausted.
                let clen = self.chunk_len(f.k, f.slot);
                let avail = clen - f.chunk_done;
                let needed = avail.div_ceil(s);
                let left = count - out.consumed;
                if needed <= left {
                    out.used += Io::from(avail);
                    out.consumed += needed;
                    // cadapt-lint: allow(panic-reach) -- invariant: the cursor stack is non-empty until the run completes
                    let bottom = self.stack.last_mut().expect("nonempty");
                    bottom.chunk_done = clen;
                    if f.k == 0 {
                        out.progress += 1;
                    }
                    self.normalize();
                } else {
                    // The run ends mid-chunk: every box takes exactly s
                    // (left · s < avail, so no box hits the chunk end and
                    // the per-box normalize calls were all no-ops).
                    out.used += Io::from(left) * Io::from(s);
                    out.consumed += left;
                    // cadapt-lint: allow(panic-reach) -- invariant: the cursor stack is non-empty until the run completes
                    let bottom = self.stack.last_mut().expect("nonempty");
                    bottom.chunk_done += left * s;
                }
            }
        }
        out.done = self.is_done();
        out
    }

    /// Consume a run of `count` identical boxes of size `x` under the
    /// block-capacity charging model — the capacity sibling of
    /// [`ExecCursor::advance_boxes_simplified`], with the same bit-exact
    /// equivalence contract against `count` calls of
    /// [`ExecCursor::advance_box_capacity`].
    ///
    /// The fast path fires when the per-box model is in its steady cycle:
    /// the budget is an exact multiple q of the charge of a *fresh* subtree
    /// at the completable level j*, each box completes q such siblings, and
    /// every enclosing ancestor stays too expensive to complete throughout
    /// (`capacity_batch_step` checks all of this in O(depth²)).
    /// Positions outside the cycle — partial scans, leftover budgets,
    /// boundary crossings — fall back to the per-box method one box at a
    /// time, which is trivially equivalent.
    pub fn advance_boxes_capacity(
        &mut self,
        x: Blocks,
        cost_factor: u64,
        count: u64,
    ) -> BatchOutcome {
        assert!(cost_factor >= 1, "cost factor must be at least 1");
        let budget = Io::from(x);
        let mut out = BatchOutcome {
            consumed: 0,
            used: 0,
            progress: 0,
            done: self.is_done(),
        };
        while out.consumed < count && !self.stack.is_empty() {
            if let Some((m, q, jstar)) =
                self.capacity_batch_step(budget, cost_factor, count - out.consumed)
            {
                let istar = cast::usize_from_u32(self.cf.depth() - jstar);
                let d = self.tables.descent[cast::usize_from_u32(jstar)]; // cadapt-lint: allow(panic-reach) -- jstar is a frame level <= depth and descent has depth+1 entries
                out.progress += Leaves::from(m) * Leaves::from(q) * self.cf.leaves(jstar);
                out.used += Io::from(m) * budget;
                out.consumed += m;
                // m·q jumps of d pops each, and d pushes for every inline
                // re-descent except the last (reproduced by the real
                // normalize below).
                cadapt_core::counters::count_cursor_steps((2 * m * q - 1) * d);
                self.stack.truncate(istar);
                // cadapt-lint: allow(panic-reach) -- invariant: istar >= 1, so the stack still holds the parent frame
                let p = self.stack.last_mut().expect("istar >= 1");
                p.slot += m * q;
                p.chunk_done = 0;
                self.normalize();
            } else {
                let o = self.advance_box_capacity(x, cost_factor);
                out.used += o.used;
                out.progress += o.progress;
                out.consumed += 1;
                if o.done {
                    break;
                }
            }
        }
        out.done = self.is_done();
        out
    }

    /// Does the capacity-model steady cycle apply from the current
    /// position? Returns (boxes to batch, subtree completions per box,
    /// completed level); `None` sends the caller to the per-box fallback.
    fn capacity_batch_step(
        &self,
        budget: Io,
        cost_factor: u64,
        max_boxes: u64,
    ) -> Option<(u64, u64, u32)> {
        if budget == 0 {
            return None;
        }
        // The jump a per-box step would take with the full budget.
        let (istar, charge) = self.jump_completable(budget, cost_factor)?;
        if istar == 0 {
            return None; // completes the root: per-box handles termination
        }
        // The suffix below the jump must be an untouched descent chain, so
        // each completion is of a brand-new subtree with remainder T(j*)
        // and the position re-enters the identical state afterwards.
        if !self.stack[istar..]
            .iter()
            .all(|f| f.slot == 0 && f.chunk_done == 0)
        {
            return None;
        }
        let jstar = self.stack[istar].k;
        if !budget.is_multiple_of(charge) {
            return None; // leftover budget would start partial work
        }
        let q = cast::u64_from_u128(budget / charge);
        let parent = self.stack[istar - 1]; // cadapt-lint: allow(panic-reach) -- istar >= 1 (the istar == 0 case returned None above) and istar < stack.len()
                                            // cadapt-lint: allow(panic-reach) -- frame levels stay <= depth, the table's index range
        if !self.tables.mid_chunks_zero[cast::usize_from_u32(parent.k)] {
            return None; // sibling completions separated by scan chunks
        }
        let siblings_left = self.params().a() - parent.slot;
        if q > siblings_left {
            return None; // one box would cross the parent boundary
        }
        // Ancestor stability: at every jump decision the parent's
        // completion charge min(γ·size, remaining) must stay above the
        // remaining budget. γ·size(parent) > budget follows from
        // jump_completable picking istar; the remaining-accesses side is
        // tightest at the last completion of the last box:
        //   rem − ((M−1)q + q−1)·T(j*) > budget − (q−1)·charge.
        let time_j = self.cf.time(jstar);
        let rem_parent = self.remaining_in_subtree(istar - 1);
        let needed = budget + Io::from(q - 1) * (time_j - charge);
        if rem_parent <= needed {
            return None;
        }
        let slack = rem_parent - needed;
        let per_box = Io::from(q) * time_j;
        let m_bound = u64::try_from(1 + (slack - 1) / per_box).unwrap_or(u64::MAX);
        Some(((siblings_left / q).min(max_boxes).min(m_bound), q, jstar))
    }

    /// A compact fingerprint of the cursor position (for equality checks in
    /// tests): the (level, slot, chunk_done) triples of the stack.
    #[must_use]
    pub fn fingerprint(&self) -> Vec<(u32, u64, u64)> {
        let mut out = Vec::with_capacity(self.stack.len());
        out.extend(self.stack.iter().map(|f| (f.k, f.slot, f.chunk_done)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ScanLayout;

    fn cursor(params: AbcParams, n: Blocks) -> ExecCursor {
        ExecCursor::new(ClosedForms::for_size(params, n).unwrap())
    }

    #[test]
    fn fresh_cursor_state() {
        let c = cursor(AbcParams::mm_scan(), 64);
        assert!(!c.is_done());
        assert_eq!(c.serial_position(), 0);
        assert_eq!(c.remaining_time(), 960);
        assert_eq!(c.leaves_remaining(), 512);
        // Layout End: the first pending access is the leftmost leaf.
        assert_eq!(c.current_level(), Some(0));
    }

    #[test]
    fn advance_all_accesses_completes() {
        let mut c = cursor(AbcParams::mm_scan(), 64);
        let (used, progress) = c.advance_accesses(10_000);
        assert_eq!(used, 960);
        assert_eq!(progress, 512);
        assert!(c.is_done());
        assert_eq!(c.serial_position(), 960);
        assert_eq!(c.leaves_remaining(), 0);
    }

    #[test]
    fn advance_in_steps_matches_one_shot() {
        for step in [1u64, 3, 7, 13, 100] {
            let mut a = cursor(AbcParams::mm_scan(), 64);
            let mut b = cursor(AbcParams::mm_scan(), 64);
            let _ = a.advance_accesses(531);
            let mut left = 531u128;
            while left > 0 {
                let (used, _) = b.advance_accesses(Io::from(step).min(left));
                left -= Io::from(step).min(left).min(left);
                if used == 0 {
                    break;
                }
            }
            assert_eq!(a.fingerprint(), b.fingerprint(), "step size {step}");
            assert_eq!(a.serial_position(), b.serial_position());
        }
    }

    #[test]
    fn serial_position_is_monotone_under_small_steps() {
        let mut c = cursor(AbcParams::mm_scan(), 16);
        let mut prev = c.serial_position();
        loop {
            let (used, _) = c.advance_accesses(1);
            if used == 0 {
                break;
            }
            let pos = c.serial_position();
            assert_eq!(pos, prev + 1, "one access advances one serial step");
            prev = pos;
        }
        assert!(c.is_done());
    }

    #[test]
    fn progress_counts_every_leaf_once_via_accesses() {
        let mut c = cursor(AbcParams::co_dp(), 32);
        let total = c.closed_forms().total_leaves();
        let mut progress = 0;
        loop {
            let (used, p) = c.advance_accesses(7);
            progress += p;
            if used == 0 {
                break;
            }
        }
        assert_eq!(progress, total);
    }

    #[test]
    fn simplified_huge_box_completes_everything() {
        let mut c = cursor(AbcParams::mm_scan(), 64);
        let out = c.advance_box_simplified(64);
        assert!(out.done);
        assert_eq!(out.progress, 512);
        assert_eq!(out.used, 64); // the whole working set, once
        assert!(c.is_done());
    }

    #[test]
    fn simplified_box_completes_exactly_its_level() {
        // n = 64, box of size 16: completes the first size-16 subproblem,
        // leaving the cursor at the start of the second one.
        let mut c = cursor(AbcParams::mm_scan(), 64);
        let out = c.advance_box_simplified(16);
        assert!(!out.done);
        assert_eq!(out.progress, 64); // 8^2 leaves of a size-16 subtree
        assert_eq!(out.used, 16);
        // Serial position: one size-16 subtree = T(2) = 112 accesses.
        assert_eq!(c.serial_position(), 112);
    }

    #[test]
    fn simplified_box_in_scan_advances_scan_only() {
        // Complete all 8 children of the root (8 × T(2) = 896 accesses),
        // landing in the root's final scan of 64.
        let mut c = cursor(AbcParams::mm_scan(), 64);
        let _ = c.advance_accesses(896);
        assert_eq!(c.current_level(), Some(3)); // pending access in root scan
        let out = c.advance_box_simplified(16);
        assert_eq!(out.used, 16); // 16 scan accesses, not a jump
        assert_eq!(out.progress, 0);
        assert!(!out.done);
        // Three more size-16 boxes finish the scan.
        for _ in 0..3 {
            let _ = c.advance_box_simplified(16);
        }
        assert!(c.is_done());
    }

    #[test]
    fn simplified_non_power_box_rounds_down() {
        // Box of size 17 completes a size-16 subproblem (largest canonical
        // fit) and no more.
        let mut c = cursor(AbcParams::mm_scan(), 64);
        let out = c.advance_box_simplified(17);
        assert_eq!(out.progress, 64);
        assert_eq!(c.serial_position(), 112);
    }

    #[test]
    fn simplified_worst_case_profile_by_hand_n16() {
        // MM-Scan, n = 16. M_{8,4}(16) = 8 copies of M(4) then a box of 16,
        // M(4) = 8 boxes of 1 then a box of 4... with base = 1 the recursion
        // bottoms at boxes of size 1 completing single leaves.
        let mut c = cursor(AbcParams::mm_scan(), 16);
        let mut boxes = 0u64;
        // Per size-4 subproblem: 8 leaf boxes + 1 scan box of size 4.
        for _ in 0..8 {
            for _ in 0..8 {
                let out = c.advance_box_simplified(1);
                assert_eq!(out.progress, 1);
                boxes += 1;
            }
            let out = c.advance_box_simplified(4);
            assert_eq!(out.progress, 0, "size-4 box lands in the scan");
            assert_eq!(out.used, 4);
            boxes += 1;
        }
        // Root scan of 16 consumed by one box of 16.
        let out = c.advance_box_simplified(16);
        assert_eq!(out.used, 16);
        assert!(out.done);
        boxes += 1;
        assert_eq!(boxes, 8 * 9 + 1);
    }

    #[test]
    fn capacity_model_total_used_is_total_time() {
        // With cost_factor 1 and boxes of any size, Σ used = serial time of
        // everything not bulk-completed + bulk charges. For box = full
        // problem: one bulk charge of n.
        let mut c = cursor(AbcParams::mm_scan(), 64);
        let out = c.advance_box_capacity(64, 1);
        assert!(out.done);
        assert_eq!(out.used, 64);
        assert_eq!(out.progress, 512);
    }

    #[test]
    fn capacity_model_small_boxes_complete_leaves_exactly_once() {
        let mut c = cursor(AbcParams::mm_scan(), 16);
        let mut progress: Leaves = 0;
        let mut boxes = 0;
        while !c.is_done() {
            let out = c.advance_box_capacity(2, 1);
            progress += out.progress;
            boxes += 1;
            assert!(boxes < 10_000, "must terminate");
        }
        assert_eq!(progress, 64, "each leaf completes exactly once");
    }

    #[test]
    fn capacity_model_budget_splits_across_structures() {
        // n = 16, box of 8: bulk-completes two size-4 subtrees
        // (cost 4 + 4), leaving the cursor at child 2.
        let mut c = cursor(AbcParams::mm_scan(), 16);
        let out = c.advance_box_capacity(8, 1);
        assert_eq!(out.used, 8);
        assert_eq!(out.progress, 16); // two size-4 subtrees × 8 leaves
        assert_eq!(c.serial_position(), 2 * 12); // 2 × T(1)
    }

    #[test]
    fn capacity_cost_factor_slows_completion() {
        let mut cheap = cursor(AbcParams::mm_scan(), 64);
        let mut pricey = cursor(AbcParams::mm_scan(), 64);
        let mut cheap_boxes = 0u64;
        let mut pricey_boxes = 0u64;
        while !cheap.is_done() {
            let _ = cheap.advance_box_capacity(16, 1);
            cheap_boxes += 1;
        }
        while !pricey.is_done() {
            let _ = pricey.advance_box_capacity(16, 4);
            pricey_boxes += 1;
        }
        assert!(pricey_boxes > cheap_boxes);
    }

    #[test]
    fn scan_layout_start_begins_in_root_scan() {
        let p = AbcParams::mm_scan().with_layout(ScanLayout::Start);
        let c = cursor(p, 64);
        // First pending access is the root's upfront scan.
        assert_eq!(c.current_level(), Some(3));
    }

    #[test]
    fn split_layout_conserves_totals() {
        let p = AbcParams::mm_scan().with_layout(ScanLayout::Split);
        let mut c = cursor(p, 64);
        let total = c.closed_forms().total_time();
        let (used, progress) = c.advance_accesses(Io::MAX);
        assert_eq!(used, total);
        assert_eq!(progress, 512);
    }

    #[test]
    fn undersized_boxes_still_make_progress() {
        // Boxes smaller than the base case advance base-case work directly.
        let p = AbcParams::mm_scan().with_base(4);
        let mut c = cursor(p, 64);
        let mut boxes = 0u64;
        while !c.is_done() {
            let out = c.advance_box_simplified(2);
            assert!(out.used > 0 || out.done);
            boxes += 1;
            assert!(boxes < 100_000, "must terminate");
        }
        // 64 leaves × (4 accesses / ≤2 per box) ... just sanity: it finished.
        assert!(boxes >= 64);
    }

    #[test]
    fn simplified_progress_totals_leaves_when_boxes_at_least_base() {
        for s in [1u64, 4, 16, 64] {
            let mut c = cursor(AbcParams::mm_scan(), 64);
            let mut progress: Leaves = 0;
            let mut guard = 0;
            while !c.is_done() {
                progress += c.advance_box_simplified(s).progress;
                guard += 1;
                assert!(guard < 1_000_000);
            }
            assert_eq!(progress, 512, "box size {s}");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn any_params() -> impl Strategy<Value = AbcParams> {
            (
                prop_oneof![
                    Just((8u64, 4u64)),
                    Just((7, 4)),
                    Just((3, 2)),
                    Just((2, 4)),
                    Just((4, 4))
                ],
                prop_oneof![Just(0.0f64), Just(0.5), Just(1.0)],
                prop_oneof![
                    Just(ScanLayout::End),
                    Just(ScanLayout::Start),
                    Just(ScanLayout::Split)
                ],
                1u64..=2,
            )
                .prop_map(|((a, b), c, layout, base)| {
                    AbcParams::new(a, b, c, base).unwrap().with_layout(layout)
                })
        }

        /// One advancement operation.
        #[derive(Debug, Clone)]
        enum Op {
            Accesses(u64),
            Simplified(u64),
            Capacity(u64),
        }

        fn any_op() -> impl Strategy<Value = Op> {
            prop_oneof![
                (1u64..200).prop_map(Op::Accesses),
                (1u64..200).prop_map(Op::Simplified),
                (1u64..200).prop_map(Op::Capacity),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            /// Under any interleaving of the three advancement operations:
            /// the serial position is monotone, position + remaining is
            /// conserved, and leaves_remaining never increases.
            #[test]
            fn cursor_invariants_hold_under_mixed_ops(
                params in any_params(),
                ops in proptest::collection::vec(any_op(), 1..60),
            ) {
                let n = params.canonical_size(3);
                let cf = ClosedForms::for_size(params, n).unwrap();
                let total = cf.total_time();
                let total_leaves = cf.total_leaves();
                let mut cursor = ExecCursor::new(cf);
                let mut pos = cursor.serial_position();
                let mut leaves_left = cursor.leaves_remaining();
                prop_assert_eq!(pos, 0);
                prop_assert_eq!(leaves_left, total_leaves);
                for op in ops {
                    match op {
                        Op::Accesses(t) => {
                            let _ = cursor.advance_accesses(Io::from(t));
                        }
                        Op::Simplified(s) => {
                            let _ = cursor.advance_box_simplified(s);
                        }
                        Op::Capacity(x) => {
                            let _ = cursor.advance_box_capacity(x, 1);
                        }
                    }
                    let new_pos = cursor.serial_position();
                    let new_leaves = cursor.leaves_remaining();
                    prop_assert!(new_pos >= pos, "position went backwards");
                    prop_assert!(new_leaves <= leaves_left, "leaves reappeared");
                    prop_assert_eq!(
                        cursor.remaining_time() + new_pos,
                        total,
                        "position/remaining conservation"
                    );
                    pos = new_pos;
                    leaves_left = new_leaves;
                }
                if cursor.is_done() {
                    prop_assert_eq!(pos, total);
                    prop_assert_eq!(leaves_left, 0);
                }
            }

            /// Every execution terminates under constant boxes of any size,
            /// with total simplified/capacity progress equal to the leaf
            /// count (boxes ≥ base never split leaves).
            #[test]
            fn executions_terminate_and_conserve_progress(
                params in any_params(),
                box_size in 1u64..300,
            ) {
                let n = params.canonical_size(3);
                prop_assume!(box_size >= params.base());
                let cf = ClosedForms::for_size(params, n).unwrap();
                for use_capacity in [false, true] {
                    let mut cursor = ExecCursor::new(cf.clone());
                    let mut progress: Leaves = 0;
                    let mut guard = 0u64;
                    while !cursor.is_done() {
                        let out = if use_capacity {
                            cursor.advance_box_capacity(box_size, 1)
                        } else {
                            cursor.advance_box_simplified(box_size)
                        };
                        progress += out.progress;
                        guard += 1;
                        prop_assert!(guard < 2_000_000, "did not terminate");
                    }
                    prop_assert_eq!(progress, cf.total_leaves());
                }
            }

            /// advance_accesses in arbitrary chunks lands on the same
            /// fingerprint as one big advance.
            #[test]
            fn chunked_access_advance_is_path_independent(
                params in any_params(),
                cuts in proptest::collection::vec(1u64..500, 1..20),
            ) {
                let n = params.canonical_size(3);
                let cf = ClosedForms::for_size(params, n).unwrap();
                let total: Io = cuts.iter().map(|&c| Io::from(c)).sum();
                let mut chunked = ExecCursor::new(cf.clone());
                for c in &cuts {
                    let _ = chunked.advance_accesses(Io::from(*c));
                }
                let mut oneshot = ExecCursor::new(cf);
                let _ = oneshot.advance_accesses(total);
                prop_assert_eq!(chunked.fingerprint(), oneshot.fingerprint());
                prop_assert_eq!(chunked.serial_position(), oneshot.serial_position());
            }
        }
    }

    #[test]
    fn mm_inplace_tiny_scans() {
        // c = 0: scans are Θ(1); a box of size 4 completes size-4 subtrees
        // one after another via jumps, plus single-access scan nibbles.
        let mut c = cursor(AbcParams::mm_inplace(), 16);
        let mut progress = 0;
        let mut boxes = 0u64;
        while !c.is_done() {
            progress += c.advance_box_simplified(4).progress;
            boxes += 1;
            assert!(boxes < 1000);
        }
        assert_eq!(progress, 64);
        // 16 size-4 jumps + root-scan nibble(s): far fewer than leaf count.
        assert!(boxes <= 32, "got {boxes}");
    }
}
