//! Naive reference execution — an independent, O(tree-size)
//! re-implementation of both box models used to cross-validate
//! [`ExecCursor`](crate::ExecCursor).
//!
//! The cursor is heavily optimised (subtree skipping, closed-form jumps);
//! the implementations here instead materialise the execution explicitly —
//! [`enumerate_segments`] lists every scan chunk and base case with its tree
//! path — and simulate box consumption segment by segment. They are only
//! usable for small problems, which is exactly what tests need: any
//! divergence between the two implementations is a bug in one of them.

use crate::closed_form::ClosedForms;
use cadapt_core::{cast, BoxRecord, BoxSource, Io, Leaves};

/// One maximal run of consecutive accesses in the execution: either a scan
/// chunk of an internal node or a base case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Level of the node this segment belongs to.
    pub level: u32,
    /// Length in accesses (> 0; empty chunks are omitted).
    pub len: u64,
    /// Child indices from the root to the owning node (empty = the root).
    pub path: Vec<u64>,
    /// Is this a base case (as opposed to scan work)?
    pub is_base: bool,
}

/// Materialise the execution of a problem as its segment list, in order.
///
/// Only for small problems: the list has Θ(a^depth) entries.
#[must_use]
pub fn enumerate_segments(cf: &ClosedForms) -> Vec<Segment> {
    let mut out = Vec::new();
    let mut path = Vec::new();
    push_node(cf, cf.depth(), &mut path, &mut out);
    out
}

fn push_node(cf: &ClosedForms, k: u32, path: &mut Vec<u64>, out: &mut Vec<Segment>) {
    let params = cf.params();
    if k == 0 {
        out.push(Segment {
            level: 0,
            len: params.base(),
            path: path.clone(),
            is_base: true,
        });
        return;
    }
    for slot in 0..=params.a() {
        let len = params.scan_chunk(cf.size(k), slot);
        if len > 0 {
            out.push(Segment {
                level: k,
                len,
                path: path.clone(),
                is_base: false,
            });
        }
        if slot < params.a() {
            path.push(slot);
            push_node(cf, k - 1, path, out);
            path.pop();
        }
    }
}

/// Naive simplified-model run: returns the per-box records, in order.
///
/// Semantics mirror
/// [`ExecCursor::advance_box_simplified`](crate::ExecCursor::advance_box_simplified)
/// but are computed by walking the explicit segment list.
///
/// # Panics
///
/// Panics if `max_boxes` boxes do not complete the execution.
#[must_use]
pub fn naive_simplified_run<S: BoxSource>(
    cf: &ClosedForms,
    source: &mut S,
    max_boxes: u64,
) -> Vec<BoxRecord> {
    let segs = enumerate_segments(cf);
    let depth = cf.depth();
    let mut records = Vec::new();
    let mut pos = 0usize; // current segment
    let mut off = 0u64; // accesses done within it
    while pos < segs.len() {
        assert!(
            cast::u64_from_usize(records.len()) < max_boxes,
            "box budget exhausted"
        );
        let s = source.next_box();
        let seg = &segs[pos];
        if cf.size(seg.level) <= s {
            // Complete the largest enclosing problem of size ≤ s.
            // cadapt-lint: allow(panic-reach) -- invariant: cf.size(seg.level) <= s, so a fitting level exists
            let j = cf.level_fitting(s).expect("segment level fits");
            let prefix = cast::usize_from_u32(depth - j);
            let anchor = segs[pos].path[..prefix].to_vec();
            let mut progress: Leaves = 0;
            while pos < segs.len()
                && segs[pos].path.len() >= prefix
                && segs[pos].path[..prefix] == anchor[..]
            {
                progress += Leaves::from(segs[pos].is_base);
                pos += 1;
            }
            off = 0;
            records.push(BoxRecord {
                size: s,
                progress,
                used: Io::from(cf.size(j).min(s)),
            });
        } else {
            // Scan (or undersized-box base-case) advancement within the
            // current segment.
            let avail = seg.len - off;
            let take = avail.min(s);
            off += take;
            let mut progress: Leaves = 0;
            if off == seg.len {
                progress += Leaves::from(seg.is_base);
                pos += 1;
                off = 0;
            }
            records.push(BoxRecord {
                size: s,
                progress,
                used: Io::from(take),
            });
        }
    }
    records
}

/// Naive capacity-model run over the explicit segment list.
///
/// Semantics mirror
/// [`ExecCursor::advance_box_capacity`](crate::ExecCursor::advance_box_capacity):
/// at every step the run either
/// completes the remainder of the largest enclosing subtree whose charge
/// min(cost_factor · size, remaining accesses) fits the box's remaining
/// budget, or streams one run of accesses of the current segment. All
/// "remaining accesses" quantities are recomputed from the segment list
/// (quadratic, tests only).
///
/// # Panics
///
/// Panics if `max_boxes` boxes do not complete the execution.
#[must_use]
pub fn naive_capacity_run<S: BoxSource>(
    cf: &ClosedForms,
    source: &mut S,
    cost_factor: u64,
    max_boxes: u64,
) -> Vec<BoxRecord> {
    let segs = enumerate_segments(cf);
    let depth = cast::usize_from_u32(cf.depth());
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut off = 0u64;
    // Remaining accesses in the subtree rooted at the ancestor with path
    // prefix of length `prefix` over the current position.
    let remaining_in = |pos: usize, off: u64, prefix: usize| -> Io {
        let anchor = &segs[pos].path[..prefix.min(segs[pos].path.len())]; // cadapt-lint: allow(panic-reach) -- pos < segs.len() for every call (the walk stops at the last segment) and the range is clamped to the path length
        let mut total: Io = 0;
        for seg in &segs[pos..] {
            if seg.path.len() < prefix || seg.path[..prefix] != *anchor {
                break;
            }
            total += Io::from(seg.len);
        }
        total - Io::from(off)
    };
    while pos < segs.len() {
        assert!(
            cast::u64_from_usize(records.len()) < max_boxes,
            "box budget exhausted"
        );
        let size = source.next_box();
        let mut left = Io::from(size);
        let mut progress: Leaves = 0;
        'spend: while left > 0 && pos < segs.len() {
            // Jump rule: highest enclosing subtree whose remainder fits.
            // Ancestors correspond to path prefixes 0 (root) ..= path len;
            // a prefix of length p is a node at level depth − p. Prefixes
            // longer than the current segment's path do not denote
            // enclosing nodes.
            for prefix in 0..=segs[pos].path.len() {
                let level = cast::u32_from_usize(depth - prefix);
                let working_set = Io::from(cf.size(level)) * Io::from(cost_factor);
                let remaining = remaining_in(pos, off, prefix);
                let charge = working_set.min(remaining);
                if charge <= left {
                    left -= charge;
                    // Count base segments in the skipped remainder,
                    // including a partially-done current base segment.
                    let anchor = segs[pos].path[..prefix].to_vec();
                    while pos < segs.len()
                        && segs[pos].path.len() >= prefix
                        && segs[pos].path[..prefix] == anchor[..]
                    {
                        progress += Leaves::from(segs[pos].is_base);
                        pos += 1;
                    }
                    off = 0;
                    continue 'spend;
                }
            }
            // Stream within the current segment.
            let avail = Io::from(segs[pos].len - off);
            let take = avail.min(left);
            left -= take;
            off += cast::u64_from_u128(take);
            if off == segs[pos].len {
                progress += Leaves::from(segs[pos].is_base);
                pos += 1;
                off = 0;
            }
        }
        records.push(BoxRecord {
            size,
            progress,
            used: Io::from(size) - left,
        });
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::ExecCursor;
    use crate::params::{AbcParams, ScanLayout};
    use cadapt_core::profile::ConstantSource;
    use cadapt_core::Blocks;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// A box source drawing uniformly from a fixed set of sizes.
    struct RandomSource {
        rng: ChaCha8Rng,
        sizes: Vec<Blocks>,
    }

    impl BoxSource for RandomSource {
        fn next_box(&mut self) -> Blocks {
            self.sizes[self.rng.gen_range(0..self.sizes.len())]
        }
    }

    #[test]
    fn segment_lengths_sum_to_total_time() {
        for params in [
            AbcParams::mm_scan(),
            AbcParams::mm_inplace(),
            AbcParams::strassen(),
            AbcParams::co_dp(),
            AbcParams::mm_scan().with_layout(ScanLayout::Start),
            AbcParams::mm_scan().with_layout(ScanLayout::Split),
            AbcParams::mm_scan().with_base(4),
        ] {
            let n = params.canonical_size(3);
            let cf = ClosedForms::for_size(params, n).unwrap();
            let segs = enumerate_segments(&cf);
            let total: Io = segs.iter().map(|s| Io::from(s.len)).sum();
            assert_eq!(total, cf.total_time(), "{params}");
            let bases = segs.iter().filter(|s| s.is_base).count();
            assert_eq!(bases as u128, cf.total_leaves(), "{params}");
        }
    }

    #[test]
    fn segments_are_in_serial_order() {
        let cf = ClosedForms::for_size(AbcParams::mm_scan(), 64).unwrap();
        let segs = enumerate_segments(&cf);
        // Base cases appear in lexicographic path order.
        let base_paths: Vec<_> = segs
            .iter()
            .filter(|s| s.is_base)
            .map(|s| s.path.clone())
            .collect();
        let mut sorted = base_paths.clone();
        sorted.sort();
        assert_eq!(base_paths, sorted);
    }

    fn cursor_run_simplified<S: BoxSource>(cf: &ClosedForms, source: &mut S) -> Vec<BoxRecord> {
        let mut cursor = ExecCursor::new(cf.clone());
        let mut out = Vec::new();
        while !cursor.is_done() {
            let s = source.next_box();
            let o = cursor.advance_box_simplified(s);
            out.push(BoxRecord {
                size: s,
                progress: o.progress,
                used: o.used,
            });
            assert!(out.len() < 1_000_000);
        }
        out
    }

    fn cursor_run_capacity<S: BoxSource>(
        cf: &ClosedForms,
        source: &mut S,
        cost_factor: u64,
    ) -> Vec<BoxRecord> {
        let mut cursor = ExecCursor::new(cf.clone());
        let mut out = Vec::new();
        while !cursor.is_done() {
            let s = source.next_box();
            let o = cursor.advance_box_capacity(s, cost_factor);
            out.push(BoxRecord {
                size: s,
                progress: o.progress,
                used: o.used,
            });
            assert!(out.len() < 1_000_000);
        }
        out
    }

    fn all_test_params() -> Vec<AbcParams> {
        vec![
            AbcParams::mm_scan(),
            AbcParams::mm_inplace(),
            AbcParams::strassen(),
            AbcParams::co_dp(),
            AbcParams::a_equals_b(),
            AbcParams::a_below_b(),
            AbcParams::mm_scan().with_layout(ScanLayout::Start),
            AbcParams::mm_scan().with_layout(ScanLayout::Split),
            AbcParams::co_dp().with_layout(ScanLayout::Split),
            AbcParams::mm_scan().with_base(4),
        ]
    }

    #[test]
    fn cursor_matches_naive_simplified_constant_boxes() {
        for params in all_test_params() {
            let n = params.canonical_size(3);
            let cf = ClosedForms::for_size(params, n).unwrap();
            for s in [1u64, 2, params.base(), 4 * params.base(), n, 3 * n] {
                let naive = naive_simplified_run(&cf, &mut ConstantSource::new(s), 1_000_000);
                let fast = cursor_run_simplified(&cf, &mut ConstantSource::new(s));
                assert_eq!(naive, fast, "{params}, box {s}");
            }
        }
    }

    #[test]
    fn cursor_matches_naive_simplified_random_boxes() {
        for params in all_test_params() {
            let n = params.canonical_size(3);
            let cf = ClosedForms::for_size(params, n).unwrap();
            for seed in 0..10u64 {
                let sizes: Vec<Blocks> =
                    vec![1, 2, 3, params.base(), 4 * params.base(), n / 2, n, 2 * n];
                let mut a = RandomSource {
                    rng: ChaCha8Rng::seed_from_u64(seed),
                    sizes: sizes.clone(),
                };
                let mut b = RandomSource {
                    rng: ChaCha8Rng::seed_from_u64(seed),
                    sizes,
                };
                let naive = naive_simplified_run(&cf, &mut a, 1_000_000);
                let fast = cursor_run_simplified(&cf, &mut b);
                assert_eq!(naive, fast, "{params}, seed {seed}");
            }
        }
    }

    #[test]
    fn cursor_matches_naive_capacity() {
        for params in all_test_params() {
            let n = params.canonical_size(3);
            let cf = ClosedForms::for_size(params, n).unwrap();
            for cost_factor in [1u64, 2, 4] {
                for seed in 0..5u64 {
                    let sizes: Vec<Blocks> = vec![1, 2, params.base(), 8 * params.base(), n, 2 * n];
                    let mut a = RandomSource {
                        rng: ChaCha8Rng::seed_from_u64(seed),
                        sizes: sizes.clone(),
                    };
                    let mut b = RandomSource {
                        rng: ChaCha8Rng::seed_from_u64(seed),
                        sizes,
                    };
                    let naive = naive_capacity_run(&cf, &mut a, cost_factor, 1_000_000);
                    let fast = cursor_run_capacity(&cf, &mut b, cost_factor);
                    assert_eq!(naive, fast, "{params}, cf {cost_factor}, seed {seed}");
                }
            }
        }
    }

    #[test]
    fn naive_capacity_progress_totals_leaves() {
        let cf = ClosedForms::for_size(AbcParams::mm_scan(), 64).unwrap();
        let records = naive_capacity_run(&cf, &mut ConstantSource::new(5), 1, 1_000_000);
        let total: Leaves = records.iter().map(|r| r.progress).sum();
        assert_eq!(total, 512);
    }

    #[test]
    fn deeper_cross_check_simplified() {
        // One deeper instance (depth 4) to catch depth-related bugs.
        let params = AbcParams::mm_scan();
        let cf = ClosedForms::for_size(params, 256).unwrap();
        let mut a = RandomSource {
            rng: ChaCha8Rng::seed_from_u64(42),
            sizes: vec![1, 4, 16, 64, 256, 1024],
        };
        let mut b = RandomSource {
            rng: ChaCha8Rng::seed_from_u64(42),
            sizes: vec![1, 4, 16, 64, 256, 1024],
        };
        let naive = naive_simplified_run(&cf, &mut a, 10_000_000);
        let fast = cursor_run_simplified(&cf, &mut b);
        assert_eq!(naive, fast);
    }
}
