//! Selection of box-consumption semantics.

use crate::cursor::{BatchOutcome, BoxOutcome, ExecCursor};
use cadapt_core::Blocks;
use serde::{Deserialize, Serialize};

/// Which box semantics to run an execution under.
///
/// Both models agree up to constant factors (ablation E-model in
/// DESIGN.md); the theory of the paper is stated in terms of
/// [`ExecModel::Simplified`], while [`ExecModel::Capacity`] is the faithful
/// charging model used to sanity-check it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ExecModel {
    /// The §4 simplified caching model: each box performs exactly one
    /// action — complete the enclosing problem of its own size, or advance
    /// a larger problem's scan by its size.
    #[default]
    Simplified,
    /// The block-capacity charging model: a box of size x is a budget of x
    /// I/Os; fresh subtrees of size m complete for `cost_factor · m`, scan
    /// accesses cost 1 each.
    Capacity {
        /// The constant in "a problem of size m completes in a box of size
        /// Θ(m)". 1 is the natural choice.
        cost_factor: u64,
    },
}

impl ExecModel {
    /// The capacity model with the natural cost factor of 1.
    #[must_use]
    pub fn capacity() -> Self {
        ExecModel::Capacity { cost_factor: 1 }
    }

    /// Consume one box of size `s` from `cursor` under this model.
    pub fn advance(&self, cursor: &mut ExecCursor, s: Blocks) -> BoxOutcome {
        match *self {
            ExecModel::Simplified => cursor.advance_box_simplified(s),
            ExecModel::Capacity { cost_factor } => cursor.advance_box_capacity(s, cost_factor),
        }
    }

    /// Consume a run of `count` identical boxes of size `s` under this
    /// model (the run-length fast path; bit-identical to `count` calls of
    /// [`ExecModel::advance`]).
    pub fn advance_run(&self, cursor: &mut ExecCursor, s: Blocks, count: u64) -> BatchOutcome {
        match *self {
            ExecModel::Simplified => cursor.advance_boxes_simplified(s, count),
            ExecModel::Capacity { cost_factor } => {
                cursor.advance_boxes_capacity(s, cost_factor, count)
            }
        }
    }

    /// Short label for tables and logs.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            ExecModel::Simplified => "simplified".to_string(),
            ExecModel::Capacity { cost_factor } => format!("capacity(x{cost_factor})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::ClosedForms;
    use crate::params::AbcParams;

    #[test]
    fn dispatch_matches_direct_calls() {
        let cf = ClosedForms::for_size(AbcParams::mm_scan(), 64).unwrap();
        let mut via_model = ExecCursor::new(cf.clone());
        let mut direct = ExecCursor::new(cf);
        let out_a = ExecModel::Simplified.advance(&mut via_model, 16);
        let out_b = direct.advance_box_simplified(16);
        assert_eq!(out_a, out_b);
        assert_eq!(via_model.fingerprint(), direct.fingerprint());
    }

    #[test]
    fn labels() {
        assert_eq!(ExecModel::Simplified.label(), "simplified");
        assert_eq!(ExecModel::capacity().label(), "capacity(x1)");
        assert_eq!(
            ExecModel::Capacity { cost_factor: 3 }.label(),
            "capacity(x3)"
        );
    }

    #[test]
    fn default_is_simplified() {
        assert_eq!(ExecModel::default(), ExecModel::Simplified);
    }
}
