//! Empirical potential measurement (Lemma 1 validation, experiment E7).
//!
//! Lemma 1: the *potential* ρ(|□|) of a box — the maximum progress a box of
//! that size could ever make, over all positions in all executions — is
//! Θ(|□|^{log_b a}) for a > b, c = 1. [`empirical_potential`] measures the
//! maximum directly: drop a single box at many execution offsets and record
//! the best progress observed. The analysis crate compares the measured
//! curve against x^{log_b a}.

use crate::model::ExecModel;
use crate::params::AbcParams;
use cadapt_core::{Blocks, CoreError, Io, Leaves};
use rand::Rng;

/// Measured potential of one box size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PotentialSample {
    /// The box size probed.
    pub box_size: Blocks,
    /// Maximum progress observed over all probed offsets.
    pub max_progress: Leaves,
    /// Number of offsets probed.
    pub offsets: usize,
}

/// Measure the maximum progress a box of size `box_size` makes when dropped
/// at each of `offsets` (serial access indices) of an execution of `params`
/// on a problem of `n` blocks.
///
/// # Errors
///
/// Propagates [`CoreError`] when `n` is not a canonical size.
pub fn empirical_potential(
    params: AbcParams,
    n: Blocks,
    box_size: Blocks,
    model: ExecModel,
    offsets: &[Io],
) -> Result<PotentialSample, CoreError> {
    // Probe the cache per offset: each lookup replays the construction
    // counters, so totals match per-offset fresh construction exactly.
    let mut max_progress: Leaves = 0;
    for &offset in offsets {
        let mut cursor = crate::cache::cursor_for(params, n)?;
        let _ = cursor.advance_accesses(offset);
        if cursor.is_done() {
            continue;
        }
        let out = model.advance(&mut cursor, box_size);
        max_progress = max_progress.max(out.progress);
    }
    Ok(PotentialSample {
        box_size,
        max_progress,
        offsets: offsets.len(),
    })
}

/// Deterministic grid plus random offsets over an execution of `total`
/// accesses: 0, the boundaries of a coarse grid, and `random` uniform draws.
pub fn probe_offsets<R: Rng>(total: Io, grid: usize, random: usize, rng: &mut R) -> Vec<Io> {
    let mut out = Vec::with_capacity(grid + random + 1);
    out.push(0);
    for i in 1..grid {
        out.push(total * i as Io / grid as Io);
    }
    for _ in 0..random {
        // Io is u128; sample via two u64 halves to stay uniform.
        let r = (u128::from(rng.gen::<u64>()) << 64) | u128::from(rng.gen::<u64>());
        out.push(r % total.max(1));
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::ClosedForms;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn box_of_problem_size_achieves_full_leaf_count() {
        // A box of size n dropped at offset 0 completes the whole problem.
        let sample =
            empirical_potential(AbcParams::mm_scan(), 64, 64, ExecModel::Simplified, &[0]).unwrap();
        assert_eq!(sample.max_progress, 512);
    }

    #[test]
    fn potential_scales_like_x_to_log_b_a() {
        // Lemma 1: max progress of a size-x box is Θ(x^{3/2}) for (8,4,1).
        // With offsets at subproblem starts the bound is tight: a box of
        // size x completes a size-x subtree with x^{1.5} leaves.
        let params = AbcParams::mm_scan();
        let n = 256u64;
        let cf = ClosedForms::for_size(params, n).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let offsets = probe_offsets(cf.total_time(), 64, 64, &mut rng);
        for k in 0..=3u32 {
            let x = 4u64.pow(k);
            let sample =
                empirical_potential(params, n, x, ExecModel::Simplified, &offsets).unwrap();
            let expected = 8u128.pow(k); // leaves of a size-4^k subtree
            assert_eq!(
                sample.max_progress, expected,
                "box 4^{k} must complete exactly a size-4^{k} subtree at best"
            );
        }
    }

    #[test]
    fn offsets_past_end_are_skipped() {
        let sample = empirical_potential(
            AbcParams::mm_scan(),
            16,
            16,
            ExecModel::Simplified,
            &[u128::MAX / 2],
        )
        .unwrap();
        assert_eq!(sample.max_progress, 0);
    }

    #[test]
    fn probe_offsets_are_sorted_unique_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let offsets = probe_offsets(1000, 10, 50, &mut rng);
        assert!(offsets.windows(2).all(|w| w[0] < w[1]));
        assert!(offsets.iter().all(|&o| o < 1000));
        assert_eq!(offsets[0], 0);
    }

    #[test]
    fn capacity_model_potential_is_constant_factor_of_simplified() {
        let params = AbcParams::mm_scan();
        let n = 64u64;
        let offsets: Vec<Io> = (0..960).step_by(7).collect();
        let simp = empirical_potential(params, n, 16, ExecModel::Simplified, &offsets).unwrap();
        let cap = empirical_potential(params, n, 16, ExecModel::capacity(), &offsets).unwrap();
        // Both complete Θ(x^{3/2}) leaves; capacity can pack a couple of
        // subtrees into one box so it may exceed simplified, but by at most
        // a small constant.
        assert!(cap.max_progress >= simp.max_progress);
        assert!(cap.max_progress <= 4 * simp.max_progress);
    }
}
