//! Process-wide memoized closed-form run tables.
//!
//! Every trial of every experiment over the same (params, n) used to
//! rebuild the same [`ClosedForms`] and cursor descent tables from
//! scratch — once per `run_on_profile` call, i.e. once per Monte-Carlo
//! trial. The tables are pure functions of (params, n), so this module
//! computes them **once per process** and hands out shared handles:
//! a cache hit is a [`BTreeMap`] probe plus two `Arc` refcount bumps.
//!
//! Correctness notes for the determinism contract (DESIGN.md):
//!
//! * The cached values are start-state [`ExecCursor`] prototypes; a
//!   lookup clones the prototype, which is bit-for-bit the cursor
//!   [`ExecCursor::new`] would have built (the tables are shared, the
//!   mutable stack is copied). No execution state ever enters the cache.
//! * Construction records a few `cursor_steps` (the initial descent to
//!   the first leaf), so each entry stores the construction's counter
//!   delta and every cache hit replays it into the current recording:
//!   counter totals are identical to fresh per-call construction, and
//!   caching cannot change any golden counter total.
//! * Keys include every parameter the construction reads, with the f64
//!   exponent `c` keyed by its bit pattern — the cache distinguishes any
//!   two parameter sets the construction would.
//!
//! The map is never evicted: a process touches at most a few dozen
//! distinct (params, n) pairs (the registry's sweeps), each a few KiB.

use crate::closed_form::ClosedForms;
use crate::cursor::ExecCursor;
use crate::params::{AbcParams, ScanLayout};
use cadapt_core::counters::{count_snapshot, CounterSnapshot, Recording};
use cadapt_core::{Blocks, CoreError};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Everything `ClosedForms::for_size` + cursor-table construction read:
/// (a, b, c bits, base, layout, n).
type Key = (u64, u64, u64, Blocks, u8, Blocks);

fn key(params: &AbcParams, n: Blocks) -> Key {
    let layout = match params.layout() {
        ScanLayout::End => 0u8,
        ScanLayout::Start => 1,
        ScanLayout::Split => 2,
    };
    (
        params.a(),
        params.b(),
        params.c().to_bits(),
        params.base(),
        layout,
        n,
    )
}

/// A cached prototype plus the counters a fresh construction records.
struct Entry {
    prototype: ExecCursor,
    construction: CounterSnapshot,
}

static CURSORS: OnceLock<Mutex<BTreeMap<Key, Entry>>> = OnceLock::new();

fn cache() -> &'static Mutex<BTreeMap<Key, Entry>> {
    CURSORS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// A start-state cursor for (params, n), from the process-wide cache.
///
/// Bit-for-bit identical to `ExecCursor::new(ClosedForms::for_size(params,
/// n)?)`, but repeated calls share the closed-form and descent tables
/// instead of rebuilding them per trial.
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] if `n` is not canonical for `params`
/// (errors are not cached; the failing path is cold by construction).
pub fn cursor_for(params: AbcParams, n: Blocks) -> Result<ExecCursor, CoreError> {
    let k = key(&params, n);
    {
        let map = cache().lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(entry) = map.get(&k) {
            // Replay the construction's counters so a hit is
            // indistinguishable from building the cursor fresh.
            count_snapshot(&entry.construction);
            return Ok(entry.prototype.clone());
        }
    }
    // Build outside the lock: constructions are rare and the map must not
    // serialize unrelated workers behind a heavy miss. The construction's
    // counts flow into the ambient recording as usual; the nested
    // recording only measures the delta to replay on later hits.
    let recording = Recording::start();
    let prototype = ExecCursor::new(ClosedForms::for_size(params, n)?);
    let construction = recording.finish();
    let mut map = cache().lock().unwrap_or_else(PoisonError::into_inner);
    let entry = map.entry(k).or_insert(Entry {
        prototype,
        construction,
    });
    Ok(entry.prototype.clone())
}

/// The shared [`ClosedForms`] tables for (params, n), memoized alongside
/// the cursor prototype.
///
/// # Errors
///
/// See [`cursor_for`].
pub fn closed_forms_for(params: AbcParams, n: Blocks) -> Result<Arc<ClosedForms>, CoreError> {
    Ok(cursor_for(params, n)?.shared_forms())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_cursor_matches_fresh_construction() {
        let params = AbcParams::mm_scan();
        let fresh = ExecCursor::new(ClosedForms::for_size(params, 256).unwrap());
        let mut cached = cursor_for(params, 256).unwrap();
        let mut reference = fresh.clone();
        // Drive both through an irregular box schedule; every outcome and
        // position must agree.
        for size in [1u64, 16, 3, 256, 7, 64, 64, 1, 1024] {
            let a = cached.advance_box_simplified(size);
            let b = reference.advance_box_simplified(size);
            assert_eq!(a, b, "diverged at box {size}");
        }
    }

    #[test]
    fn second_lookup_shares_the_tables() {
        let params = AbcParams::mm_scan();
        let first = cursor_for(params, 1024).unwrap();
        let second = cursor_for(params, 1024).unwrap();
        assert!(Arc::ptr_eq(&first.shared_forms(), &second.shared_forms()));
    }

    #[test]
    fn distinct_layouts_get_distinct_entries() {
        let end = AbcParams::mm_scan();
        let start = AbcParams::mm_scan().with_layout(ScanLayout::Start);
        let a = cursor_for(end, 64).unwrap();
        let b = cursor_for(start, 64).unwrap();
        assert!(!Arc::ptr_eq(&a.shared_forms(), &b.shared_forms()));
    }

    #[test]
    fn cache_hits_replay_construction_counters() {
        let params = AbcParams::mm_scan();
        let recording = Recording::start();
        let _ = cursor_for(params, 4096).unwrap();
        let first = recording.finish();
        let recording = Recording::start();
        let _ = cursor_for(params, 4096).unwrap();
        let second = recording.finish();
        assert_eq!(first, second, "a hit must be counter-identical to a miss");
        assert!(first.cursor_steps > 0, "construction descends to a leaf");
    }

    #[test]
    fn bad_sizes_still_error() {
        assert!(cursor_for(AbcParams::mm_scan(), 63).is_err());
        assert!(closed_forms_for(AbcParams::mm_scan(), 0).is_err());
    }

    #[test]
    fn closed_forms_handle_reads_like_fresh_tables() {
        let params = AbcParams::mm_scan();
        let cached = closed_forms_for(params, 64).unwrap();
        let fresh = ClosedForms::for_size(params, 64).unwrap();
        assert_eq!(cached.total_time(), fresh.total_time());
        assert_eq!(cached.total_leaves(), fresh.total_leaves());
        assert_eq!(cached.depth(), fresh.depth());
    }
}
