//! (a, b, c) parameters, scan layout, and named algorithm presets.

use cadapt_core::{cast, Blocks, CoreError, Potential};
use serde::{Deserialize, Serialize};

/// Where the Θ(n^c) scan work of a node sits relative to its recursive calls.
///
/// Definition 2 allows scan work "before, between, and after recursive
/// calls". The canonical worst-case construction assumes scans at the end
/// (the paper notes any upfront-scan algorithm converts to that form); the
/// other layouts exist to test that WLOG claim empirically (ablation in
/// DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ScanLayout {
    /// The whole scan after the last recursive call (canonical form).
    #[default]
    End,
    /// The whole scan before the first recursive call.
    Start,
    /// The scan split as evenly as possible into a + 1 chunks placed before,
    /// between, and after the recursive calls.
    Split,
}

/// The parameters of an (a, b, c)-regular algorithm.
///
/// * `a` — number of recursive subproblems per node (a ≥ 1),
/// * `b` — size shrink factor per level (b ≥ 2),
/// * `c` — scan exponent in [0, 1]: a node of size n performs a linear scan
///   of ⌈n^c⌉ accesses (c = 1 ⇒ scan of n, c = 0 ⇒ Θ(1) scan),
/// * `base` — base-case problem size in blocks (Θ(1); Remark 1),
/// * `layout` — where scan work sits relative to recursive calls.
///
/// Problem sizes are *canonical*: n = base · b^k. The cache-adaptively
/// interesting regime, and the subject of the paper, is a > b with c = 1.
///
/// ```
/// use cadapt_recursion::AbcParams;
///
/// let mm = AbcParams::mm_scan(); // T(N) = 8·T(N/4) + Θ(N/B)
/// assert_eq!((mm.a(), mm.b(), mm.c()), (8, 4, 1.0));
/// assert!(mm.in_gap_regime());
/// assert_eq!(mm.exponent(), 1.5); // log_4 8
/// assert_eq!(mm.scan_len(1024), 1024); // c = 1: a full linear scan
///
/// // MM-Inplace needs no merge scans and escapes the gap:
/// assert!(!AbcParams::mm_inplace().in_gap_regime());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbcParams {
    a: u64,
    b: u64,
    c: f64,
    base: Blocks,
    layout: ScanLayout,
}

impl AbcParams {
    /// Construct parameters, validating ranges.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if a < 1, b < 2, or c ∉ [0, 1], or
    /// base < 1.
    pub fn new(a: u64, b: u64, c: f64, base: Blocks) -> Result<Self, CoreError> {
        if a < 1 {
            return Err(CoreError::InvalidParameter {
                name: "a",
                message: format!("branching factor must be >= 1, got {a}"),
            });
        }
        if b < 2 {
            return Err(CoreError::InvalidParameter {
                name: "b",
                message: format!("shrink factor must be >= 2, got {b}"),
            });
        }
        if !(0.0..=1.0).contains(&c) || c.is_nan() {
            return Err(CoreError::InvalidParameter {
                name: "c",
                message: format!("scan exponent must lie in [0, 1], got {c}"),
            });
        }
        if base < 1 {
            return Err(CoreError::InvalidParameter {
                name: "base",
                message: "base-case size must be >= 1 block".to_string(),
            });
        }
        Ok(AbcParams {
            a,
            b,
            c,
            base,
            layout: ScanLayout::End,
        })
    }

    /// Same parameters with a different [`ScanLayout`].
    #[must_use]
    pub fn with_layout(mut self, layout: ScanLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Same parameters with a different base-case size.
    ///
    /// # Panics
    ///
    /// Panics if `base == 0`.
    #[must_use]
    pub fn with_base(mut self, base: Blocks) -> Self {
        assert!(base >= 1, "base-case size must be >= 1 block");
        self.base = base;
        self
    }

    /// Branching factor a.
    #[must_use]
    pub fn a(&self) -> u64 {
        self.a
    }

    /// Shrink factor b.
    #[must_use]
    pub fn b(&self) -> u64 {
        self.b
    }

    /// Scan exponent c.
    #[must_use]
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Base-case size in blocks.
    #[must_use]
    pub fn base(&self) -> Blocks {
        self.base
    }

    /// Scan layout.
    #[must_use]
    pub fn layout(&self) -> ScanLayout {
        self.layout
    }

    /// The potential function ρ(x) = x^{log_b a} for these parameters.
    #[must_use]
    pub fn potential(&self) -> Potential {
        Potential::new(self.a, self.b)
    }

    /// The exponent log_b a.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.potential().exponent()
    }

    /// Is this algorithm in the paper's gap regime (a > b, c = 1)?
    ///
    /// Theorem 2: (a, b, c)-regular algorithms are cache-adaptive when c < 1
    /// or a < b; when a > b and c = 1 they can be Θ(log_b n) from optimal on
    /// worst-case profiles — the gap this paper closes via smoothing.
    #[must_use]
    pub fn in_gap_regime(&self) -> bool {
        self.a > self.b && (self.c - 1.0).abs() < f64::EPSILON
    }

    /// The canonical problem size base · b^k.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    #[must_use]
    pub fn canonical_size(&self, k: u32) -> Blocks {
        let mut n = self.base;
        for _ in 0..k {
            // cadapt-lint: allow(panic-reach) -- deliberate loud overflow guard, documented in the # Panics section
            n = n.checked_mul(self.b).expect("canonical size overflows u64");
        }
        n
    }

    /// The recursion depth k such that n = base · b^k, or `None` if n is not
    /// a canonical size for these parameters.
    #[must_use]
    pub fn depth_of(&self, n: Blocks) -> Option<u32> {
        if n < self.base || !n.is_multiple_of(self.base) {
            return None;
        }
        cadapt_core::potential::exact_log(self.b, n / self.base)
    }

    /// Scan length, in accesses, of a node of size n blocks: ⌈n^c⌉ (with the
    /// block-unit convention B = 1 of Remark 1), and at least 1 (the Θ(1)
    /// term of the recurrence).
    ///
    /// Exact for c = 0 (→ 1) and c = 1 (→ n); for intermediate c the `f64`
    /// rounding is irrelevant at the Θ level.
    #[must_use]
    pub fn scan_len(&self, n: Blocks) -> u64 {
        // cadapt-lint: allow(float-eq) -- sentinel: c = 0.0 is stored exactly and means a scan-free algorithm
        if self.c == 0.0 {
            1
        } else if (self.c - 1.0).abs() < f64::EPSILON {
            n
        } else {
            cast::u64_from_f64((n as f64).powf(self.c).ceil()).max(1)
        }
    }

    /// The scan of a size-n node divided into its a + 1 placement slots
    /// according to the layout: `chunk(i)` is the scan work before child i
    /// (i < a) or after the last child (i = a).
    #[must_use]
    pub fn scan_chunk(&self, n: Blocks, slot: u64) -> u64 {
        debug_assert!(slot <= self.a);
        let total = self.scan_len(n);
        match self.layout {
            ScanLayout::End => {
                if slot == self.a {
                    total
                } else {
                    0
                }
            }
            ScanLayout::Start => {
                if slot == 0 {
                    total
                } else {
                    0
                }
            }
            ScanLayout::Split => {
                // Distribute `total` over a+1 slots as evenly as possible,
                // earlier slots taking the remainder.
                let slots = self.a + 1;
                let each = total / slots;
                let extra = total % slots;
                each + u64::from(slot < extra)
            }
        }
    }

    // ---- Named presets -------------------------------------------------

    /// MM-Scan: divide-and-conquer matrix multiplication that merges the
    /// eight subresults with a linear scan. (8, 4, 1)-regular:
    /// T(N) = 8 T(N/4) + Θ(N/B). The paper's canonical non-adaptive
    /// algorithm (§3).
    #[must_use]
    pub fn mm_scan() -> Self {
        // cadapt-lint: allow(panic-reach) -- invariant: preset constants satisfy AbcParams::new's checks by construction
        AbcParams::new(8, 4, 1.0, 1).expect("preset parameters are valid")
    }

    /// MM-Inplace: matrix multiplication accumulating elementary products
    /// directly into the output — no merge scan. (8, 4, 0)-regular, and
    /// optimally cache-adaptive (footnote 5 of the paper).
    #[must_use]
    pub fn mm_inplace() -> Self {
        // cadapt-lint: allow(panic-reach) -- invariant: preset constants satisfy AbcParams::new's checks by construction
        AbcParams::new(8, 4, 0.0, 1).expect("preset parameters are valid")
    }

    /// Strassen's matrix multiplication: seven quarter-size subproblems plus
    /// linear-scan additions — (7, 4, 1)-regular, T(N) = 7 T(N/4) + Θ(N/B).
    /// In the gap regime (7 > 4, c = 1); the paper's conclusion notes all
    /// known subcubic multiplications fall here.
    #[must_use]
    pub fn strassen() -> Self {
        // cadapt-lint: allow(panic-reach) -- invariant: preset constants satisfy AbcParams::new's checks by construction
        AbcParams::new(7, 4, 1.0, 1).expect("preset parameters are valid")
    }

    /// Cache-oblivious dynamic programming kernel (LCS / edit distance in
    /// the style of Chowdhury–Ramachandran '06): three half-size recursive
    /// quadrant solves plus linear work — (3, 2, 1)-regular, as classified
    /// by Lincoln et al. (SPAA '18). Gap regime.
    #[must_use]
    pub fn co_dp() -> Self {
        // cadapt-lint: allow(panic-reach) -- invariant: preset constants satisfy AbcParams::new's checks by construction
        AbcParams::new(3, 2, 1.0, 1).expect("preset parameters are valid")
    }

    /// The Gaussian Elimination Paradigm (I-GEP, Chowdhury–Ramachandran):
    /// (8, 4, 1)-regular like MM-Scan — shares its recurrence
    /// T(N) = 8 T(N/4) + Θ(N/B). Gap regime.
    #[must_use]
    pub fn gep() -> Self {
        // cadapt-lint: allow(panic-reach) -- invariant: preset constants satisfy AbcParams::new's checks by construction
        AbcParams::new(8, 4, 1.0, 1).expect("preset parameters are valid")
    }

    /// A (4, 4, 1)-regular algorithm — the a = b boundary case (e.g. the
    /// classical two-way structures the paper excludes in footnote 3, where
    /// no algorithm can be optimally adaptive). Included for the E9
    /// taxonomy experiment.
    #[must_use]
    pub fn a_equals_b() -> Self {
        // cadapt-lint: allow(panic-reach) -- invariant: preset constants satisfy AbcParams::new's checks by construction
        AbcParams::new(4, 4, 1.0, 1).expect("preset parameters are valid")
    }

    /// A (2, 4, 1)-regular algorithm — a < b, trivially adaptive
    /// (linear-time regardless of cache; footnote 2). For E9.
    #[must_use]
    pub fn a_below_b() -> Self {
        // cadapt-lint: allow(panic-reach) -- invariant: preset constants satisfy AbcParams::new's checks by construction
        AbcParams::new(2, 4, 1.0, 1).expect("preset parameters are valid")
    }

    /// The **scan-hiding transformation** of Lincoln, Liu, Lynch & Xu
    /// (SPAA '18), at the model level: interleave every scan's work with
    /// the recursion so each base case absorbs an O(1) share of pending
    /// scan accesses, leaving no standalone scans for an adversary to
    /// waste boxes on.
    ///
    /// Accounting: an (a, b, 1)-regular algorithm with a > b has total
    /// scan volume Σ_k a^{K−k} · base·b^k ≤ base · a^K · a/(a−b), i.e. at
    /// most ⌈base · a/(a−b)⌉ scan accesses per base case. The transformed
    /// algorithm is therefore (a, b, 0)-regular with the base case grown
    /// by that constant — in the adaptive regime (c < 1) by Theorem 2,
    /// at a constant-factor work overhead. (The real transformation must
    /// also respect data dependencies; this captures its I/O structure —
    /// see experiment E12.)
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] unless a > b and c = 1 (the gap
    /// regime is the only place scan-hiding has work to do).
    pub fn scan_hidden(&self) -> Result<Self, CoreError> {
        if !self.in_gap_regime() {
            return Err(CoreError::InvalidParameter {
                name: "params",
                message: format!(
                    "scan-hiding applies to the gap regime (a > b, c = 1); got {self}"
                ),
            });
        }
        let per_leaf = (self.base * self.a).div_ceil(self.a - self.b);
        AbcParams::new(self.a, self.b, 0.0, self.base + per_leaf)
            .map(|p| p.with_layout(self.layout))
    }
}

impl std::fmt::Display for AbcParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({}, {}, {})-regular (base {})",
            self.a, self.b, self.c, self.base
        )
    }
}

// Exact float equality in tests is deliberate: outputs are required to be
// bit-identical run to run (see the golden records).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(AbcParams::new(0, 4, 1.0, 1).is_err());
        assert!(AbcParams::new(8, 1, 1.0, 1).is_err());
        assert!(AbcParams::new(8, 4, 1.5, 1).is_err());
        assert!(AbcParams::new(8, 4, -0.1, 1).is_err());
        assert!(AbcParams::new(8, 4, f64::NAN, 1).is_err());
        assert!(AbcParams::new(8, 4, 1.0, 0).is_err());
        assert!(AbcParams::new(8, 4, 1.0, 1).is_ok());
    }

    #[test]
    fn gap_regime_classification() {
        assert!(AbcParams::mm_scan().in_gap_regime());
        assert!(AbcParams::strassen().in_gap_regime());
        assert!(AbcParams::co_dp().in_gap_regime());
        assert!(!AbcParams::mm_inplace().in_gap_regime()); // c = 0
        assert!(!AbcParams::a_equals_b().in_gap_regime()); // a = b
        assert!(!AbcParams::a_below_b().in_gap_regime()); // a < b
    }

    #[test]
    fn canonical_sizes() {
        let p = AbcParams::mm_scan();
        assert_eq!(p.canonical_size(0), 1);
        assert_eq!(p.canonical_size(3), 64);
        assert_eq!(p.depth_of(64), Some(3));
        assert_eq!(p.depth_of(60), None);
        assert_eq!(p.depth_of(0), None);

        let p = p.with_base(4);
        assert_eq!(p.canonical_size(2), 64);
        assert_eq!(p.depth_of(64), Some(2));
        assert_eq!(p.depth_of(8), None); // 8 = 4·2 is not 4·4^k
    }

    #[test]
    fn scan_lengths() {
        let scan = AbcParams::mm_scan();
        assert_eq!(scan.scan_len(1024), 1024); // c = 1
        let inplace = AbcParams::mm_inplace();
        assert_eq!(inplace.scan_len(1024), 1); // c = 0
        let half = AbcParams::new(8, 4, 0.5, 1).unwrap();
        assert_eq!(half.scan_len(1024), 32); // 1024^0.5
        assert_eq!(half.scan_len(1), 1);
    }

    #[test]
    fn chunk_layout_end() {
        let p = AbcParams::mm_scan(); // layout End by default
        let n = 64;
        for slot in 0..8 {
            assert_eq!(p.scan_chunk(n, slot), 0);
        }
        assert_eq!(p.scan_chunk(n, 8), 64);
    }

    #[test]
    fn chunk_layout_start() {
        let p = AbcParams::mm_scan().with_layout(ScanLayout::Start);
        assert_eq!(p.scan_chunk(64, 0), 64);
        for slot in 1..=8 {
            assert_eq!(p.scan_chunk(64, slot), 0);
        }
    }

    #[test]
    fn chunk_layout_split_conserves_total() {
        let p = AbcParams::mm_scan().with_layout(ScanLayout::Split);
        for n in [1u64, 7, 64, 100] {
            let total: u64 = (0..=8).map(|s| p.scan_chunk(n, s)).sum();
            assert_eq!(total, p.scan_len(n), "split must conserve scan length");
        }
        // 64 over 9 slots: 7 each, first slot gets +1.
        assert_eq!(p.scan_chunk(64, 0), 8);
        assert_eq!(p.scan_chunk(64, 8), 7);
    }

    #[test]
    fn display_formats() {
        let p = AbcParams::mm_scan();
        assert_eq!(p.to_string(), "(8, 4, 1)-regular (base 1)");
    }

    #[test]
    fn exponents() {
        assert!((AbcParams::mm_scan().exponent() - 1.5).abs() < 1e-12);
        assert!((AbcParams::co_dp().exponent() - 3f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn scan_hiding_transforms_gap_algorithms() {
        let hidden = AbcParams::mm_scan().scan_hidden().unwrap();
        assert_eq!(hidden.a(), 8);
        assert_eq!(hidden.b(), 4);
        assert_eq!(hidden.c(), 0.0);
        // base 1 → 1 + ⌈8/4⌉ = 3.
        assert_eq!(hidden.base(), 3);
        assert!(!hidden.in_gap_regime());

        let hidden = AbcParams::co_dp().scan_hidden().unwrap();
        // base 1 → 1 + ⌈3/1⌉ = 4.
        assert_eq!(hidden.base(), 4);
    }

    #[test]
    fn scan_hiding_covers_the_scan_volume() {
        // The grown base cases must absorb at least the original total
        // scan volume: T_hidden(n') ≥ T_orig accesses for matching leaf
        // counts.
        use crate::closed_form::ClosedForms;
        let orig = AbcParams::mm_scan();
        let hidden = orig.scan_hidden().unwrap();
        for k in 2..=8u32 {
            let cf_orig = ClosedForms::for_size(orig, orig.canonical_size(k)).unwrap();
            let cf_hidden = ClosedForms::for_size(hidden, hidden.canonical_size(k)).unwrap();
            assert_eq!(cf_orig.total_leaves(), cf_hidden.total_leaves());
            assert!(
                cf_hidden.total_time() >= cf_orig.total_time(),
                "k={k}: hidden {} < orig {}",
                cf_hidden.total_time(),
                cf_orig.total_time()
            );
            // …at a constant-factor overhead.
            let overhead = cf_hidden.total_time() as f64 / cf_orig.total_time() as f64;
            assert!(overhead < 2.0, "k={k}: overhead {overhead}");
        }
    }

    #[test]
    fn scan_hiding_rejects_non_gap_parameters() {
        assert!(AbcParams::mm_inplace().scan_hidden().is_err());
        assert!(AbcParams::a_equals_b().scan_hidden().is_err());
        assert!(AbcParams::a_below_b().scan_hidden().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let p = AbcParams::strassen()
            .with_layout(ScanLayout::Split)
            .with_base(2);
        let s = serde_json::to_string(&p).unwrap();
        let back: AbcParams = serde_json::from_str(&s).unwrap();
        assert_eq!(back, p);
    }
}
