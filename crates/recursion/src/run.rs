//! Drivers: run an (a, b, c)-regular execution against a box source or a
//! streaming [`RunCursor`] pipeline.
//!
//! There is exactly **one** run-draining loop in the workspace —
//! [`run_cursor_with_ledger`] — and everything drives through it: the
//! legacy [`BoxSource`] entry points wrap the source in a
//! [`cadapt_core::SourceCursor`], and the Monte-Carlo
//! drivers in `cadapt-analysis` call the cursor entry points directly.
//! The loop advances whole runs in closed form on the fast path, expands
//! runs per box when history retention (or the measured per-box baseline)
//! needs `BoxRecord`s, and observes cooperative cancellation between runs
//! as the typed [`RunError::Cancelled`].

use crate::model::ExecModel;
use crate::params::AbcParams;
use cadapt_core::{
    AdaptivityReport, Blocks, BoxRecord, BoxSource, CoreError, ProgressLedger, RunCursor,
    SourceCursor,
};

/// Configuration of a run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Box semantics.
    pub model: ExecModel,
    /// Abort after this many boxes (safety net against degenerate
    /// profiles; worst-case profiles at the largest benchmark sizes use
    /// tens of millions of boxes, so the default is generous).
    pub max_boxes: u64,
    /// Retain the per-box history in the report's ledger.
    pub retain_history: bool,
    /// Drain the source by [`BoxRun`](cadapt_core::BoxRun)s, advancing each
    /// run of identical boxes in closed form (bit-identical results; see
    /// the differential tests). Disabled automatically when
    /// `retain_history` needs per-box records, and settable to `false` to
    /// measure the per-box baseline.
    pub fast_path: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            model: ExecModel::Simplified,
            max_boxes: 2_000_000_000,
            retain_history: false,
            fast_path: true,
        }
    }
}

/// Run failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The problem size was not canonical for the parameters.
    BadSize(CoreError),
    /// The box cap was hit before the execution completed.
    BoxBudgetExhausted {
        /// The configured cap.
        max_boxes: u64,
    },
    /// A finite cursor pipeline ran dry before the execution completed.
    /// (Plain [`BoxSource`]s are infinite and never produce this; a
    /// [`take_boxes`](cadapt_core::RunCursorExt::take_boxes) pipeline can.)
    ProfileExhausted {
        /// Boxes consumed before the pipeline ended.
        after_boxes: u64,
    },
    /// The pipeline's [`CancelToken`](cadapt_core::CancelToken) was
    /// triggered; the execution stopped cooperatively between runs.
    Cancelled {
        /// Boxes consumed before cancellation was observed.
        after_boxes: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::BadSize(e) => write!(f, "bad problem size: {e}"),
            RunError::BoxBudgetExhausted { max_boxes } => {
                write!(f, "execution did not complete within {max_boxes} boxes")
            }
            RunError::ProfileExhausted { after_boxes } => {
                write!(f, "profile ran dry after {after_boxes} boxes")
            }
            RunError::Cancelled { after_boxes } => {
                write!(f, "execution cancelled after {after_boxes} boxes")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Run algorithm `params` on a problem of `n` blocks against boxes drawn
/// from `source`, returning the adaptivity report.
///
/// ```
/// use cadapt_core::profile::ConstantSource;
/// use cadapt_recursion::{run_on_profile, AbcParams, RunConfig};
///
/// // MM-Scan on constant boxes of 16 blocks, problem size 64:
/// let mut source = ConstantSource::new(16);
/// let report = run_on_profile(
///     AbcParams::mm_scan(), 64, &mut source, &RunConfig::default(),
/// )?;
/// assert_eq!(report.boxes_used, 12); // 8 subproblems + 4 boxes of scan
/// assert_eq!(report.ratio(), 1.5);
/// # Ok::<(), cadapt_recursion::RunError>(())
/// ```
///
/// The final box is recorded with its *used* I/O count, and the bounded
/// potential sum uses full box sizes — Eq. 2's "don't bother rounding down
/// the final square" convention, which it is insensitive to by construction.
///
/// # Errors
///
/// [`RunError::BadSize`] if `n` is not canonical; [`RunError::BoxBudgetExhausted`]
/// if `config.max_boxes` boxes did not complete the problem.
pub fn run_on_profile<S: BoxSource>(
    params: AbcParams,
    n: Blocks,
    source: &mut S,
    config: &RunConfig,
) -> Result<AdaptivityReport, RunError> {
    let ledger = run_with_ledger(params, n, source, config)?;
    Ok(ledger.finish())
}

/// As [`run_on_profile`], but returns the raw ledger (with per-box history
/// when `config.retain_history` is set).
///
/// # Errors
///
/// See [`run_on_profile`].
pub fn run_with_ledger<S: BoxSource>(
    params: AbcParams,
    n: Blocks,
    source: &mut S,
    config: &RunConfig,
) -> Result<ProgressLedger, RunError> {
    // The legacy BoxSource entry point is a thin bridge: wrap the source
    // as an infinite cursor and drive the one shared loop. Per-run pull
    // order and counter updates are identical, so results stay
    // bit-for-bit what they were before the cursor unification.
    run_cursor_with_ledger(params, n, &mut SourceCursor::new(source), config)
}

/// As [`run_on_profile`], but consume boxes from any streaming
/// [`RunCursor`] pipeline — combinator stacks, throttled/interleaved
/// multi-tenant scenarios, cancellable wrappers — instead of a plain
/// source.
///
/// ```
/// use cadapt_core::profile::ConstantSource;
/// use cadapt_core::{BoxSource, RunCursorExt};
/// use cadapt_recursion::{run_cursor_on_profile, AbcParams, RunConfig};
///
/// // MM-Scan against a throttled constant pipeline:
/// let mut pipeline = ConstantSource::new(64).into_cursor().throttle(16);
/// let report = run_cursor_on_profile(
///     AbcParams::mm_scan(), 64, &mut pipeline, &RunConfig::default(),
/// )?;
/// assert_eq!(report.boxes_used, 12); // same as constant 16s
/// # Ok::<(), cadapt_recursion::RunError>(())
/// ```
///
/// # Errors
///
/// As [`run_on_profile`], plus [`RunError::ProfileExhausted`] if a finite
/// pipeline ran dry mid-execution and [`RunError::Cancelled`] if a
/// [`CancelToken`](cadapt_core::CancelToken) in the pipeline fired.
pub fn run_cursor_on_profile<C: RunCursor>(
    params: AbcParams,
    n: Blocks,
    cursor: &mut C,
    config: &RunConfig,
) -> Result<AdaptivityReport, RunError> {
    let ledger = run_cursor_with_ledger(params, n, cursor, config)?;
    Ok(ledger.finish())
}

/// As [`run_cursor_on_profile`], but returns the raw ledger (with per-box
/// history when `config.retain_history` is set). **This is the one
/// run-draining loop in the workspace**; every other driver delegates
/// here.
///
/// # Errors
///
/// See [`run_cursor_on_profile`].
pub fn run_cursor_with_ledger<C: RunCursor>(
    params: AbcParams,
    n: Blocks,
    source: &mut C,
    config: &RunConfig,
) -> Result<ProgressLedger, RunError> {
    // The closed-form and descent tables come from the process-wide cache:
    // repeated trials over the same (params, n) clone a shared start-state
    // cursor instead of rebuilding the tables (bit-identical either way).
    let mut cursor = crate::cache::cursor_for(params, n).map_err(RunError::BadSize)?;
    let rho = params.potential();
    let mut ledger = if config.retain_history {
        ProgressLedger::retaining(rho, n)
    } else {
        ProgressLedger::new(rho, n)
    };
    // History retention needs one BoxRecord per box, so runs are expanded
    // back to per-box advancement there; otherwise whole runs of identical
    // boxes advance in closed form with bit-identical totals and counters.
    let drain_runs = config.fast_path && !config.retain_history;
    while !cursor.is_done() {
        if ledger.boxes_used() >= config.max_boxes {
            return Err(RunError::BoxBudgetExhausted {
                max_boxes: config.max_boxes,
            });
        }
        let run = match source.next_run() {
            Ok(Some(run)) => run,
            Ok(None) => {
                return Err(RunError::ProfileExhausted {
                    after_boxes: ledger.boxes_used(),
                })
            }
            Err(cadapt_core::Cancelled) => {
                return Err(RunError::Cancelled {
                    after_boxes: ledger.boxes_used(),
                })
            }
        };
        debug_assert!(run.repeat >= 1, "runs must be non-empty");
        let allowed = config.max_boxes - ledger.boxes_used();
        if drain_runs {
            let out = config
                .model
                .advance_run(&mut cursor, run.size, run.repeat.min(allowed));
            cadapt_core::counters::count_boxes(out.consumed);
            cadapt_core::counters::count_io(out.used);
            ledger.record_run(run.size, out.progress, out.used, out.consumed);
        } else {
            // Expand the run per box (a plain source's default runs have
            // repeat == 1, reproducing the historical per-box pull
            // pattern exactly). A mid-run completion discards the rest of
            // the run, per the discard-on-stop law.
            let mut left = run.repeat.min(allowed);
            while left > 0 && !cursor.is_done() {
                let out = config.model.advance(&mut cursor, run.size);
                cadapt_core::counters::count_boxes(1);
                cadapt_core::counters::count_io(out.used);
                ledger.record(BoxRecord {
                    size: run.size,
                    progress: out.progress,
                    used: out.used,
                });
                left -= 1;
            }
        }
    }
    Ok(ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadapt_core::profile::ConstantSource;
    use cadapt_core::SquareProfile;

    #[test]
    fn constant_boxes_complete_mm_scan() {
        let mut source = ConstantSource::new(16);
        let report =
            run_on_profile(AbcParams::mm_scan(), 64, &mut source, &RunConfig::default()).unwrap();
        // 8 boxes complete the 8 size-16 subtrees, then 4 boxes of 16
        // drain the root scan of 64.
        assert_eq!(report.boxes_used, 12);
        assert_eq!(report.total_progress, 512);
        // Ratio: 12 · 16^1.5 / 64^1.5 = 12 · 64 / 512 = 1.5.
        assert!((report.ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_model_also_completes() {
        let mut source = ConstantSource::new(16);
        let config = RunConfig {
            model: ExecModel::capacity(),
            ..RunConfig::default()
        };
        let report = run_on_profile(AbcParams::mm_scan(), 64, &mut source, &config).unwrap();
        assert_eq!(report.total_progress, 512);
        assert!(report.boxes_used > 0);
    }

    #[test]
    fn box_budget_error() {
        let mut source = ConstantSource::new(1);
        let config = RunConfig {
            max_boxes: 3,
            ..RunConfig::default()
        };
        let err = run_on_profile(AbcParams::mm_scan(), 64, &mut source, &config).unwrap_err();
        assert_eq!(err, RunError::BoxBudgetExhausted { max_boxes: 3 });
    }

    #[test]
    fn bad_size_error() {
        let mut source = ConstantSource::new(4);
        let err = run_on_profile(AbcParams::mm_scan(), 63, &mut source, &RunConfig::default())
            .unwrap_err();
        assert!(matches!(err, RunError::BadSize(_)));
    }

    #[test]
    fn history_retention() {
        let profile = SquareProfile::new(vec![64]).unwrap();
        let mut source = profile.extended(1);
        let config = RunConfig {
            retain_history: true,
            ..RunConfig::default()
        };
        let ledger = run_with_ledger(AbcParams::mm_scan(), 64, &mut source, &config).unwrap();
        let history = ledger.history().unwrap();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].size, 64);
        assert_eq!(history[0].progress, 512);
    }

    #[test]
    fn fast_path_matches_per_box_bitwise() {
        let profile =
            SquareProfile::new(vec![1, 1, 1, 1, 16, 16, 2, 2, 2, 64, 4, 4, 4, 4]).unwrap();
        for model in [ExecModel::Simplified, ExecModel::capacity()] {
            let fast_config = RunConfig {
                model,
                ..RunConfig::default()
            };
            let slow_config = RunConfig {
                model,
                fast_path: false,
                ..RunConfig::default()
            };
            let mut fast_source = profile.cycle();
            let mut slow_source = profile.cycle();
            let fast =
                run_on_profile(AbcParams::mm_scan(), 256, &mut fast_source, &fast_config).unwrap();
            let slow =
                run_on_profile(AbcParams::mm_scan(), 256, &mut slow_source, &slow_config).unwrap();
            assert_eq!(fast.boxes_used, slow.boxes_used, "{}", model.label());
            assert_eq!(fast.total_progress, slow.total_progress);
            assert_eq!(fast.total_io, slow.total_io);
            assert_eq!(fast.max_box, slow.max_box);
            assert_eq!(fast.min_box, slow.min_box);
            assert_eq!(
                fast.bounded_potential_sum.to_bits(),
                slow.bounded_potential_sum.to_bits()
            );
            assert_eq!(
                fast.raw_potential_sum.to_bits(),
                slow.raw_potential_sum.to_bits()
            );
        }
    }

    #[test]
    fn fast_path_counters_match_per_box() {
        use cadapt_core::counters::Recording;
        let mut fast_source = ConstantSource::new(16);
        let mut slow_source = ConstantSource::new(16);
        let rec = Recording::start();
        let _ = run_on_profile(
            AbcParams::mm_scan(),
            1024,
            &mut fast_source,
            &RunConfig::default(),
        )
        .unwrap();
        let fast = rec.finish();
        let rec = Recording::start();
        let _ = run_on_profile(
            AbcParams::mm_scan(),
            1024,
            &mut slow_source,
            &RunConfig {
                fast_path: false,
                ..RunConfig::default()
            },
        )
        .unwrap();
        let slow = rec.finish();
        assert_eq!(fast, slow);
    }

    #[test]
    fn single_giant_box_is_optimal() {
        let mut source = ConstantSource::new(1 << 20);
        let report = run_on_profile(
            AbcParams::mm_scan(),
            256,
            &mut source,
            &RunConfig::default(),
        )
        .unwrap();
        assert_eq!(report.boxes_used, 1);
        // Bounded potential: min(n, huge)^1.5 = n^1.5 -> ratio exactly 1.
        assert!((report.ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn run_errors_display() {
        let e = RunError::BoxBudgetExhausted { max_boxes: 7 };
        assert!(e.to_string().contains('7'));
    }
}
