//! Property-based proof that both replay backends are representation-
//! blind: replaying a compiled bytecode program is equal — fault for
//! fault, box for box — to replaying the recorded event vector it was
//! compiled from, across fixed caches, square-profile menus, and
//! arbitrary m(t) profiles.
//!
//! Together with the bytecode round-trip properties in `cadapt-trace`
//! (`tests/props_bytecode.rs`), this closes the equivalence argument for
//! the compiled-replay pipeline: decode(compile(trace)) == trace, and the
//! simulator is a function of the event stream alone.

// Test-only code: unwraps abort the test (the right failure mode).
#![allow(clippy::unwrap_used)]

use cadapt_core::{MemoryProfile, Potential, SquareProfile};
use cadapt_paging::{replay_fixed, replay_memory_profile, replay_square_profile_history};
use cadapt_trace::{compile, BlockTrace, TraceProgram, Tracer};
use proptest::prelude::*;

/// Build the recorded trace and its compiled program from generated
/// `(block, leaf_after)` pairs. Blocks are drawn from a small universe so
/// re-accesses (and therefore cache hits) are common.
fn assemble(ops: &[(u64, bool)]) -> (BlockTrace, TraceProgram) {
    let mut tracer = Tracer::new(1);
    for &(block, leaf_after) in ops {
        tracer.touch(block);
        if leaf_after {
            tracer.leaf();
        }
    }
    let trace = tracer.into_trace();
    let program = compile(&trace);
    (trace, program)
}

fn ops_strategy() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..12, proptest::bool::ANY), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fixed caches: identical I/O at every capacity from degenerate (0)
    /// through oversized.
    #[test]
    fn fixed_replay_is_representation_blind(ops in ops_strategy()) {
        let (trace, program) = assemble(&ops);
        for capacity in (0u64..=16).chain([64, 1 << 30]) {
            prop_assert_eq!(
                replay_fixed(&trace, capacity),
                replay_fixed(&program, capacity),
                "capacity {}", capacity
            );
        }
    }

    /// Square profiles: the full report and the per-box history are equal
    /// box for box, for arbitrary cycled menus.
    #[test]
    fn square_replay_is_representation_blind(
        ops in ops_strategy(),
        menu in proptest::collection::vec(1u64..20, 1..8),
    ) {
        let (trace, program) = assemble(&ops);
        let rho = Potential::new(8, 4);
        let profile = SquareProfile::new(menu).unwrap();
        let (vec_report, vec_boxes) =
            replay_square_profile_history(&trace, &mut profile.cycle(), rho);
        let (stream_report, stream_boxes) =
            replay_square_profile_history(&program, &mut profile.cycle(), rho);
        prop_assert_eq!(vec_boxes, stream_boxes);
        prop_assert_eq!(vec_report, stream_report);
    }

    /// Arbitrary m(t) profiles: equal I/O, completion flag, and leaf
    /// count — including truncated replays where the profile runs out.
    #[test]
    fn memory_profile_replay_is_representation_blind(
        ops in ops_strategy(),
        steps in proptest::collection::vec(1u64..10, 1..80),
    ) {
        let (trace, program) = assemble(&ops);
        let profile = MemoryProfile::from_steps(&steps).unwrap();
        prop_assert_eq!(
            replay_memory_profile(&trace, &profile),
            replay_memory_profile(&program, &profile)
        );
    }
}
