//! Property-based cross-validation of the analytic cache model against the
//! exact LRU simulator, on arbitrary generated traces.
//!
//! The analytic model's contract is *exact equality* — not approximation —
//! with the simulator on every trace, every capacity, every box menu, and
//! every memory profile (see `cadapt_paging::analytic` for the three
//! theorems that make this possible). These properties enforce the
//! contract on adversarial inputs the corpus algorithms would never
//! produce: tight re-access loops, leaf bursts between accesses, blocks
//! that never repeat, menus mixing size-1 and oversized boxes.
//!
//! There is **no deliberate divergence regime** in the replayed
//! quantities. The only documented difference is diagnostic: the
//! simulator ticks the cache-hit/eviction counters and the analytic model
//! does not, which the unit tests in `cadapt_paging::analytic` pin down.

// Test-only code: unwraps abort the test (the right failure mode).
#![allow(clippy::unwrap_used)]

use cadapt_core::{MemoryProfile, Potential, SquareProfile};
use cadapt_paging::{
    analytic_fixed, analytic_memory_profile, analytic_square_profile_history, replay_fixed,
    replay_memory_profile, replay_square_profile_history,
};
use cadapt_trace::{SummarizedTrace, Tracer};
use proptest::prelude::*;

/// Build a summarised trace from generated `(block, leaf_after)` pairs.
/// Blocks are drawn from a small universe so re-accesses are common.
fn assemble(ops: &[(u64, bool)]) -> SummarizedTrace {
    let mut tracer = Tracer::new(1);
    for &(block, leaf_after) in ops {
        tracer.touch(block);
        if leaf_after {
            tracer.leaf();
        }
    }
    SummarizedTrace::new(tracer.into_trace())
}

fn ops_strategy() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((0u64..12, proptest::bool::ANY), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fixed caches: the stack-distance query equals the LRU replay at
    /// every capacity from degenerate (0) through oversized.
    #[test]
    fn fixed_capacity_sweep_is_exact(ops in ops_strategy()) {
        let st = assemble(&ops);
        for capacity in (0u64..=16).chain([64, 1 << 30]) {
            prop_assert_eq!(
                analytic_fixed(st.summary(), capacity),
                replay_fixed(st.program(), capacity),
                "capacity {}", capacity
            );
        }
    }

    /// Square profiles: the full report and the per-box history are equal
    /// box for box, for arbitrary cycled menus.
    #[test]
    fn square_profiles_are_lock_step(
        ops in ops_strategy(),
        menu in proptest::collection::vec(1u64..20, 1..8),
    ) {
        let st = assemble(&ops);
        let rho = Potential::new(8, 4);
        let profile = SquareProfile::new(menu).unwrap();
        let (sim_report, sim_boxes) =
            replay_square_profile_history(st.program(), &mut profile.cycle(), rho);
        let (ana_report, ana_boxes) =
            analytic_square_profile_history(st.summary(), &mut profile.cycle(), rho);
        prop_assert_eq!(sim_boxes, ana_boxes);
        prop_assert_eq!(sim_report, ana_report);
    }

    /// Arbitrary m(t) profiles: equal I/O, completion flag, and leaf
    /// count — including truncated replays where the profile runs out.
    #[test]
    fn memory_profiles_are_exact(
        ops in ops_strategy(),
        steps in proptest::collection::vec(1u64..10, 1..80),
    ) {
        let st = assemble(&ops);
        let profile = MemoryProfile::from_steps(&steps).unwrap();
        prop_assert_eq!(
            analytic_memory_profile(st.summary(), &profile),
            replay_memory_profile(st.program(), &profile)
        );
    }

    /// Dominance: a box-local hit implies a fixed-LRU hit at the same
    /// capacity (distinct blocks inside the box bound the global stack
    /// distance), so the square replay's total I/O is at least the fixed
    /// replay's, which is at least the working-set size; and fixed faults
    /// are monotone non-increasing in capacity.
    #[test]
    fn dominance_chain_holds(
        ops in ops_strategy(),
        x in 1u64..24,
    ) {
        let st = assemble(&ops);
        let rho = Potential::new(8, 4);
        let profile = SquareProfile::new(vec![x]).unwrap();
        let (square, _) =
            analytic_square_profile_history(st.summary(), &mut profile.cycle(), rho);
        let fixed = analytic_fixed(st.summary(), x);
        prop_assert!(square.total_io >= fixed.io);
        prop_assert!(fixed.io >= u128::from(st.summary().distinct_blocks()));
        let mut previous = analytic_fixed(st.summary(), 0).io;
        for capacity in 1u64..=24 {
            let now = analytic_fixed(st.summary(), capacity).io;
            prop_assert!(now <= previous, "faults rose at capacity {}", capacity);
            previous = now;
        }
    }
}
