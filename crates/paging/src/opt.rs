//! Belady's OPT (furthest-in-future) replacement — the offline optimum.
//!
//! The ideal-cache model underlying cache-oblivious analysis assumes
//! optimal replacement; the classical justification for analysing LRU
//! instead is Sleator–Tarjan: LRU with cache 2M suffers at most twice the
//! faults of OPT with cache M (plus the warm-up). [`replay_opt`] replays a
//! trace under OPT so the tests can check that inequality holds on our real
//! traces — grounding the paging substrate against the paging theory.

use cadapt_core::{cast, Blocks, Io};
use cadapt_trace::{BlockTrace, TraceEvent};
// cadapt-lint: allow(nondet-source) -- HashMap is point-probed only (get/insert/remove); iteration order is never observed, so results cannot depend on it
use std::collections::{BTreeSet, HashMap};

/// Outcome of an OPT replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptReplay {
    /// Cache size used.
    pub cache_blocks: Blocks,
    /// Total I/Os (misses) under furthest-in-future replacement.
    pub io: Io,
}

/// Replay a trace through a constant cache of `cache_blocks` blocks with
/// Belady's furthest-in-future replacement.
///
/// Two passes: the first records, for every access, the index of the next
/// access to the same block; the second simulates, evicting the resident
/// block whose next use is furthest away (or never).
#[must_use]
pub fn replay_opt(trace: &BlockTrace, cache_blocks: Blocks) -> OptReplay {
    let accesses: Vec<u64> = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Access(b) => Some(*b),
            TraceEvent::Leaf => None,
        })
        .collect();
    // next_use[i] = index of the next access to the same block, or usize::MAX.
    let mut next_use = vec![usize::MAX; accesses.len()];
    // cadapt-lint: allow(nondet-source) -- HashMap is point-probed only (get/insert/remove); iteration order is never observed, so results cannot depend on it
    let mut last_seen: HashMap<u64, usize> = HashMap::new();
    for (i, &block) in accesses.iter().enumerate().rev() {
        if let Some(&j) = last_seen.get(&block) {
            next_use[i] = j;
        }
        last_seen.insert(block, i);
    }

    let capacity = cast::usize_from_u64(cache_blocks);
    let mut io: Io = 0;
    if capacity == 0 {
        return OptReplay {
            cache_blocks,
            io: accesses.len() as Io,
        };
    }
    // Resident set keyed two ways: block → its next use, and an ordered set
    // of (next use, block) for O(log n) furthest-victim lookup.
    // cadapt-lint: allow(nondet-source) -- HashMap is point-probed only (get/insert/remove); iteration order is never observed, eviction order comes from the ordered `by_next` set
    let mut resident: HashMap<u64, usize> = HashMap::with_capacity(capacity);
    let mut by_next: BTreeSet<(usize, u64)> = BTreeSet::new();
    for (i, &block) in accesses.iter().enumerate() {
        if let Some(&cur_next) = resident.get(&block) {
            // Hit: refresh the block's next-use key.
            by_next.remove(&(cur_next, block));
            resident.insert(block, next_use[i]);
            by_next.insert((next_use[i], block));
            cadapt_core::counters::count_cache_hit();
            continue;
        }
        io += 1;
        cadapt_core::counters::count_io(1);
        if resident.len() == capacity {
            // cadapt-lint: allow(panic-reach) -- invariant: resident.len() == capacity > 0, so by_next is non-empty
            let &(victim_next, victim) = by_next.iter().next_back().expect("cache is full");
            // Belady: evict the furthest-in-future block. If the incoming
            // block is itself used later than the victim, bypass (classic
            // OPT optimisation, equivalent cost model: it still costs this
            // miss but does not displace a more useful block).
            if next_use[i] >= victim_next {
                continue;
            }
            by_next.remove(&(victim_next, victim));
            resident.remove(&victim);
            cadapt_core::counters::count_cache_evictions(1);
        }
        resident.insert(block, next_use[i]);
        by_next.insert((next_use[i], block));
    }
    OptReplay { cache_blocks, io }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay_fixed;
    use cadapt_trace::Tracer;

    fn trace_of(blocks: &[u64]) -> BlockTrace {
        let mut t = Tracer::new(1);
        for &b in blocks {
            t.touch(b);
        }
        t.into_trace()
    }

    #[test]
    fn cold_misses_only_with_ample_cache() {
        let trace = trace_of(&[1, 2, 3, 1, 2, 3]);
        assert_eq!(replay_opt(&trace, 10).io, 3);
    }

    #[test]
    fn belady_beats_lru_on_the_classic_pattern() {
        // Cyclic scan of k+1 blocks with cache k: LRU misses everything,
        // OPT misses ~1/k of the time.
        let pattern: Vec<u64> = (0..4u64).cycle().take(64).collect();
        let trace = trace_of(&pattern);
        let lru = replay_fixed(&trace, 3).io;
        let opt = replay_opt(&trace, 3).io;
        assert_eq!(lru, 64, "LRU thrashes the cyclic scan");
        assert!(opt < lru / 2, "OPT {opt} vs LRU {lru}");
    }

    #[test]
    fn opt_is_a_lower_bound_for_lru() {
        // On arbitrary traces OPT never does worse than LRU at equal size.
        let pattern: Vec<u64> = (0..200u64).map(|i| (i * i * 7 + i) % 23).collect();
        let trace = trace_of(&pattern);
        for m in [1u64, 2, 4, 8, 16] {
            let lru = replay_fixed(&trace, m).io;
            let opt = replay_opt(&trace, m).io;
            assert!(opt <= lru, "M={m}: OPT {opt} > LRU {lru}");
        }
    }

    #[test]
    fn sleator_tarjan_on_real_traces() {
        // LRU(2M) ≤ 2·OPT(M) + M on genuine algorithm traces.
        let side = 16;
        let rows: Vec<f64> = (0..side * side).map(|i| (i % 5) as f64).collect();
        let a = cadapt_trace::ZMatrix::from_row_major(side, &rows);
        let (_, trace) = cadapt_trace::mm::mm_scan(&a, &a, 4);
        for m in [8u64, 16, 32, 64] {
            let lru2m = replay_fixed(&trace, 2 * m).io;
            let opt_m = replay_opt(&trace, m).io;
            assert!(
                lru2m <= 2 * opt_m + Io::from(m),
                "M={m}: LRU(2M) {lru2m} vs 2·OPT(M)+M {}",
                2 * opt_m + Io::from(m)
            );
        }
    }

    #[test]
    fn zero_capacity_misses_everything() {
        let trace = trace_of(&[1, 1, 1]);
        assert_eq!(replay_opt(&trace, 0).io, 3);
    }

    #[test]
    fn bypass_does_not_displace_hot_blocks() {
        // Block 9 is used once, far in the future; blocks 1..3 are hot.
        // OPT should not let 9 evict a hot block.
        let trace = trace_of(&[1, 2, 3, 9, 1, 2, 3, 1, 2, 3]);
        let opt = replay_opt(&trace, 3).io;
        // Misses: cold 1, 2, 3, then 9 (bypassed) — 4 total.
        assert_eq!(opt, 4);
    }
}
