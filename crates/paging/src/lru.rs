//! Slab-backed O(1) LRU cache over block ids.
//!
//! A `HashMap<block, slot>` index into a vector of doubly-linked nodes;
//! every operation (lookup, touch, insert, evict) is O(1). Capacity can be
//! changed on the fly (shrinking evicts from the cold end), which is what
//! the cache-adaptive replay needs at every profile step.

// cadapt-lint: allow(nondet-source) -- HashMap is point-probed only (get/insert/remove); iteration order is never observed, so results cannot depend on it
use std::collections::HashMap;

const NIL: usize = usize::MAX;

/// Upper bound on eagerly preallocated slots. Replay caches are resized to
/// every box of a profile, and nominal capacities can be enormous while
/// only a few blocks are ever touched — larger caches grow on demand.
const PREALLOC_CAP: usize = 1 << 16;

#[derive(Debug, Clone, Copy)]
struct Node {
    block: u64,
    prev: usize,
    next: usize,
}

/// An LRU set of block ids with O(1) access/insert/evict and dynamic
/// capacity.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    // cadapt-lint: allow(nondet-source) -- HashMap is point-probed only (get/insert/remove); iteration order is never observed, so results cannot depend on it
    index: HashMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used.
    tail: usize,
}

impl LruCache {
    /// An empty cache with the given capacity (may be 0).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let prealloc = capacity.min(PREALLOC_CAP);
        LruCache {
            capacity,
            // cadapt-lint: allow(nondet-source) -- HashMap is point-probed only (get/insert/remove); iteration order is never observed, so results cannot depend on it
            index: HashMap::with_capacity(prealloc),
            nodes: Vec::with_capacity(prealloc),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of blocks currently resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Is the cache empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Current capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Is `block` resident?
    #[must_use]
    pub fn contains(&self, block: u64) -> bool {
        self.index.contains_key(&block)
    }

    fn detach(&mut self, slot: usize) {
        let Node { prev, next, .. } = self.nodes[slot];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Evict the least recently used block, returning it.
    pub fn evict_lru(&mut self) -> Option<u64> {
        if self.tail == NIL {
            return None;
        }
        let slot = self.tail;
        let block = self.nodes[slot].block;
        self.detach(slot);
        self.index.remove(&block);
        self.free.push(slot);
        cadapt_core::counters::count_cache_evictions(1);
        Some(block)
    }

    /// Access `block`: returns `true` on a hit (block moved to the front),
    /// `false` on a miss (block inserted, evicting LRU blocks as needed).
    /// With capacity 0 every access misses and nothing is retained.
    pub fn access(&mut self, block: u64) -> bool {
        if let Some(&slot) = self.index.get(&block) {
            self.detach(slot);
            self.attach_front(slot);
            cadapt_core::counters::count_cache_hit();
            return true;
        }
        if self.capacity == 0 {
            return false;
        }
        while self.index.len() >= self.capacity {
            self.evict_lru();
        }
        let slot = if let Some(slot) = self.free.pop() {
            self.nodes[slot] = Node {
                block,
                prev: NIL,
                next: NIL,
            };
            slot
        } else {
            self.nodes.push(Node {
                block,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        self.index.insert(block, slot);
        self.attach_front(slot);
        false
    }

    /// Change capacity; shrinking evicts cold blocks immediately, growing
    /// reserves slots up front so the fill that follows never reallocates
    /// mid-replay.
    pub fn resize(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.index.len() > self.capacity {
            self.evict_lru();
        }
        let prealloc = capacity.min(PREALLOC_CAP);
        self.index
            .reserve(prealloc.saturating_sub(self.index.len()));
        if self.nodes.capacity() < prealloc {
            self.nodes.reserve(prealloc - self.nodes.len());
        }
    }

    /// Drop everything (the "cache cleared at box start" convention).
    pub fn clear(&mut self) {
        self.index.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses() {
        let mut c = LruCache::new(2);
        assert!(!c.access(1)); // miss
        assert!(!c.access(2)); // miss
        assert!(c.access(1)); // hit
        assert!(!c.access(3)); // miss, evicts 2 (LRU)
        assert!(!c.access(2)); // miss again
        assert!(c.access(3)); // 3 still resident
    }

    #[test]
    fn lru_order_respects_recency() {
        let mut c = LruCache::new(3);
        for b in [1, 2, 3] {
            c.access(b);
        }
        c.access(1); // order now 1,3,2 (MRU..LRU)
        c.access(4); // evicts 2
        assert!(c.contains(1));
        assert!(c.contains(3));
        assert!(c.contains(4));
        assert!(!c.contains(2));
    }

    #[test]
    fn capacity_zero_never_retains() {
        let mut c = LruCache::new(0);
        assert!(!c.access(1));
        assert!(!c.access(1));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn resize_shrinks_from_cold_end() {
        let mut c = LruCache::new(4);
        for b in [1, 2, 3, 4] {
            c.access(b);
        }
        c.resize(2);
        assert_eq!(c.len(), 2);
        assert!(c.contains(3) && c.contains(4), "hot blocks survive");
        c.resize(0);
        assert!(c.is_empty());
    }

    #[test]
    fn resize_up_allows_growth() {
        let mut c = LruCache::new(1);
        c.access(1);
        c.resize(3);
        c.access(2);
        c.access(3);
        assert_eq!(c.len(), 3);
        assert!(c.contains(1));
    }

    #[test]
    fn clear_resets() {
        let mut c = LruCache::new(2);
        c.access(1);
        c.access(2);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.access(1), "post-clear access is a miss");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evict_lru_returns_oldest() {
        let mut c = LruCache::new(3);
        for b in [7, 8, 9] {
            c.access(b);
        }
        assert_eq!(c.evict_lru(), Some(7));
        assert_eq!(c.evict_lru(), Some(8));
        assert_eq!(c.evict_lru(), Some(9));
        assert_eq!(c.evict_lru(), None);
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut c = LruCache::new(2);
        for b in 0..100u64 {
            c.access(b);
        }
        // Only ever 2 resident; the slab should not have grown to 100.
        assert!(c.nodes.len() <= 3, "slab grew to {}", c.nodes.len());
    }

    #[test]
    fn construction_and_resize_preallocate() {
        let c = LruCache::new(100);
        assert!(c.nodes.capacity() >= 100);
        let mut c = LruCache::new(1);
        c.resize(200);
        assert!(c.nodes.capacity() >= 200);
        // Huge nominal capacities are capped, not allocated eagerly.
        let c = LruCache::new(usize::MAX);
        assert!(c.nodes.capacity() < (1 << 20));
    }

    #[test]
    fn sequential_scan_behaviour() {
        // A scan longer than the cache hits nothing on a second pass (LRU's
        // classic worst case).
        let mut c = LruCache::new(4);
        for b in 0..8u64 {
            c.access(b);
        }
        let hits = (0..8u64).filter(|&b| c.access(b)).count();
        assert_eq!(hits, 0);
    }
}
