//! The analytical cache model: closed-form fault counts from trace
//! summaries, exactly equal to the LRU simulator.
//!
//! Every replayer in [`crate::replay`] walks the full event stream through
//! a stateful [`LruCache`](crate::lru::LruCache). This module computes the
//! same numbers from a [`TraceSummary`] — the reuse-distance structure
//! `cadapt-trace` extracts once per trace — with no cache state at all:
//!
//! * [`analytic_fixed`] — by the stack-distance theorem, the fault count
//!   of a capacity-C LRU cache is the number of accesses whose stack
//!   distance exceeds C: one O(log A) histogram query per capacity,
//!   against the simulator's O(A) replay.
//! * [`analytic_square_profile`] — inside a box of size x (capacity x,
//!   budget x, cache cleared at the boundary) inserts can never exceed
//!   capacity, so **nothing is evicted within a box** and an access hits
//!   iff its previous access lies inside the same box. Each box is an
//!   arithmetic scan for its first x+1 "cold" accesses over the `prev1`
//!   array; faults, progress, and the box boundary all fall out exactly.
//! * [`analytic_memory_profile`] — under LRU the resident set is always
//!   the top-k of the global recency stack (k shrinks with m(t), grows by
//!   one per insertion), so an access hits iff its precomputed global
//!   stack distance is at most the current k.
//!
//! **Equivalence contract.** On every trace, every box source, and every
//! memory profile, the analytic functions return values equal to their
//! simulator counterparts — per box, not just in aggregate. There is no
//! approximation regime and no divergence regime: the three arguments
//! above are exact theorems about the replay semantics, and the proptest
//! suite (`tests/props_analytic_equivalence.rs`) plus the integration
//! suite (`tests/integration_analytic_equivalence.rs`) enforce equality on
//! arbitrary generated traces and on the real algorithm corpus. The one
//! deliberate observable difference is diagnostic, not semantic: the
//! simulator's `LruCache` ticks the `cache_hits`/`cache_evictions`
//! counters while the analytic model — having no cache — leaves them at
//! zero. The accounting counters (`ios_charged`, `boxes_advanced`) are
//! recorded identically.
//!
//! Degenerate inputs mirror the simulator exactly, including its fixed
//! points: a zero-sized box makes no progress on a pending access, so a
//! constant-zero source loops forever under both backends
//! ([`SquareProfile::new`](cadapt_core::SquareProfile::new) rejects such
//! profiles; only `from_boxes_unchecked` can construct them).

use crate::replay::{
    replay_fixed, replay_memory_profile, replay_square_profile, replay_square_profile_history,
    FixedReplay, ProfileReplay,
};
use cadapt_core::{
    cast, AdaptivityReport, Blocks, BoxRecord, BoxSource, Io, MemoryProfile, Potential,
    ProgressLedger,
};
use cadapt_trace::{SummarizedTrace, TraceSummary};

/// Fixed-cache (classical DAM) fault count in closed form — equal, field
/// for field, to [`replay_fixed`] on the summarised trace.
///
/// ```
/// use cadapt_paging::{analytic_fixed, replay_fixed};
/// use cadapt_trace::{summarized, TraceAlgo};
///
/// let st = summarized(TraceAlgo::MmInplace, 8, 4);
/// for m in [0, 4, 64, 1 << 20] {
///     assert_eq!(analytic_fixed(st.summary(), m), replay_fixed(st.program(), m));
/// }
/// ```
#[must_use]
pub fn analytic_fixed(summary: &TraceSummary, cache_blocks: Blocks) -> FixedReplay {
    let io = summary.faults_fixed(cache_blocks);
    cadapt_core::counters::count_io(io);
    FixedReplay {
        cache_blocks,
        io,
        accesses: summary.accesses(),
    }
}

/// Square-profile replay in closed form — the same [`AdaptivityReport`]
/// as [`replay_square_profile`], box for box.
#[must_use]
pub fn analytic_square_profile<S: BoxSource>(
    summary: &TraceSummary,
    source: &mut S,
    rho: Potential,
) -> AdaptivityReport {
    let ledger = ProgressLedger::new(rho, summary.distinct_blocks());
    analytic_square_into(summary, source, ledger).finish()
}

/// As [`analytic_square_profile`], additionally returning the per-box
/// history for lock-step comparison against
/// [`replay_square_profile_history`].
#[must_use]
pub fn analytic_square_profile_history<S: BoxSource>(
    summary: &TraceSummary,
    source: &mut S,
    rho: Potential,
) -> (AdaptivityReport, Vec<BoxRecord>) {
    let ledger = ProgressLedger::retaining(rho, summary.distinct_blocks());
    let ledger = analytic_square_into(summary, source, ledger);
    let history = ledger.history().unwrap_or_default().to_vec();
    (ledger.finish(), history)
}

fn analytic_square_into<S: BoxSource>(
    summary: &TraceSummary,
    source: &mut S,
    mut ledger: ProgressLedger,
) -> ProgressLedger {
    let accesses = summary.accesses();
    let prev1 = summary.prev1();
    let leaf_before = summary.leaves_before();
    let total_leaves = summary.leaves();
    // `start`: first access the current box sees; `leaves_done`: leaf
    // marks consumed by previous boxes.
    let mut start: u64 = 0;
    let mut leaves_done = 0;
    while start < accesses || leaves_done < total_leaves {
        let size = source.next_box();
        // The box consumes accesses until (exclusive) its (size+1)-th
        // *cold* access — one whose previous access precedes the box, and
        // which therefore misses the box-local cache. Warm accesses hit
        // (no eviction can have removed them) and cost nothing, even
        // after the budget is spent.
        let mut used: u64 = 0;
        let mut j = start;
        let end = loop {
            if j == accesses {
                break accesses;
            }
            // cadapt-lint: allow(panic-reach) -- j < accesses == prev1.len() here (the j == accesses arm broke out above)
            if prev1[cast::usize_from_u64(j)] <= start {
                if used == size {
                    break j;
                }
                used += 1;
            }
            j += 1;
        };
        // Leaf marks attach to the preceding access: everything up to the
        // blocking access (or the end of the trace) lands in this box.
        let consumed = leaf_before[cast::usize_from_u64(end)]; // cadapt-lint: allow(panic-reach) -- end <= accesses and leaf_before has accesses+1 entries
        let progress = consumed - leaves_done;
        leaves_done = consumed;
        start = end;
        cadapt_core::counters::count_boxes(1);
        cadapt_core::counters::count_io(Io::from(used));
        ledger.record(BoxRecord {
            size,
            progress,
            used: Io::from(used),
        });
    }
    ledger
}

/// Arbitrary-profile replay in closed form — the same [`ProfileReplay`]
/// as [`replay_memory_profile`].
#[must_use]
pub fn analytic_memory_profile(summary: &TraceSummary, profile: &MemoryProfile) -> ProfileReplay {
    let accesses = summary.accesses();
    if profile.value_at(0).is_none() {
        // Mirror the simulator: an empty profile completes only the
        // access-free trace, and counts nothing (not even leaves).
        return ProfileReplay {
            io: 0,
            completed: accesses == 0,
            leaves: 0,
        };
    }
    let depth = summary.depths();
    let leaf_before = summary.leaves_before();
    let mut io: Io = 0;
    // Invariant: the simulator's resident set after any prefix is exactly
    // the `resident` most recently used distinct blocks (the top of the
    // global recency stack) — shrinking evicts from the cold end, hits
    // permute only the top, and a miss inserts at the top after evicting
    // the bottom iff the cache is full.
    let mut resident: u64 = 0;
    for j in 0..cast::usize_from_u64(accesses) {
        let Some(m) = profile.value_at(io) else {
            cadapt_core::counters::count_io(io);
            return ProfileReplay {
                io,
                completed: false,
                leaves: leaf_before[j],
            };
        };
        resident = resident.min(m);
        let d = depth[j];
        if d != 0 && d <= resident {
            continue; // hit: the block is within the top-`resident`
        }
        io += 1;
        resident = (resident + 1).min(m);
    }
    cadapt_core::counters::count_io(io);
    ProfileReplay {
        io,
        completed: true,
        leaves: summary.leaves(),
    }
}

/// The caching-model backend of a trace-level experiment: the exact LRU
/// simulator, or the analytic model proven equal to it. Experiments take
/// a backend and stay agnostic about which engine produces the numbers —
/// E14 sweeps capacities at sizes only the analytic backend can reach,
/// after cross-validating both backends at a common size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheBackend {
    /// Replay every reference through the [`LruCache`](crate::LruCache),
    /// streaming events straight out of the trace's compiled bytecode
    /// program (no event vector is materialised).
    Simulated,
    /// Query the memoized [`TraceSummary`] in closed form.
    Analytic,
}

impl CacheBackend {
    /// Both backends, simulator first.
    pub const ALL: [CacheBackend; 2] = [CacheBackend::Simulated, CacheBackend::Analytic];

    /// Stable label for tables and metric names.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CacheBackend::Simulated => "simulated",
            CacheBackend::Analytic => "analytic",
        }
    }

    /// Fixed-cache replay under this backend.
    #[must_use]
    pub fn fixed(self, st: &SummarizedTrace, cache_blocks: Blocks) -> FixedReplay {
        match self {
            CacheBackend::Simulated => replay_fixed(st.program(), cache_blocks),
            CacheBackend::Analytic => analytic_fixed(st.summary(), cache_blocks),
        }
    }

    /// Square-profile replay under this backend.
    #[must_use]
    pub fn square_profile<S: BoxSource>(
        self,
        st: &SummarizedTrace,
        source: &mut S,
        rho: Potential,
    ) -> AdaptivityReport {
        match self {
            CacheBackend::Simulated => replay_square_profile(st.program(), source, rho),
            CacheBackend::Analytic => analytic_square_profile(st.summary(), source, rho),
        }
    }

    /// Square-profile replay with per-box history under this backend.
    #[must_use]
    pub fn square_profile_history<S: BoxSource>(
        self,
        st: &SummarizedTrace,
        source: &mut S,
        rho: Potential,
    ) -> (AdaptivityReport, Vec<BoxRecord>) {
        match self {
            CacheBackend::Simulated => replay_square_profile_history(st.program(), source, rho),
            CacheBackend::Analytic => analytic_square_profile_history(st.summary(), source, rho),
        }
    }

    /// Arbitrary-profile replay under this backend.
    #[must_use]
    pub fn memory_profile(self, st: &SummarizedTrace, profile: &MemoryProfile) -> ProfileReplay {
        match self {
            CacheBackend::Simulated => replay_memory_profile(st.program(), profile),
            CacheBackend::Analytic => analytic_memory_profile(st.summary(), profile),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadapt_core::counters::Recording;
    use cadapt_core::memory_profile::Segment;
    use cadapt_core::profile::ConstantSource;
    use cadapt_core::SquareProfile;
    use cadapt_trace::{summarized, TraceAlgo, Tracer};

    fn summarise(blocks: &[u64]) -> SummarizedTrace {
        let mut t = Tracer::new(1);
        for &b in blocks {
            t.touch(b);
        }
        SummarizedTrace::new(t.into_trace())
    }

    #[test]
    fn fixed_matches_simulator_on_corpus_traces() {
        for algo in TraceAlgo::ALL {
            let st = summarized(algo, 8, 4);
            for m in [0u64, 1, 2, 4, 7, 16, 64, 256, 1 << 20] {
                assert_eq!(
                    analytic_fixed(st.summary(), m),
                    replay_fixed(st.program(), m),
                    "{} at capacity {m}",
                    algo.label()
                );
            }
        }
    }

    #[test]
    fn square_matches_simulator_box_for_box() {
        let st = summarized(TraceAlgo::MmInplace, 8, 4);
        let rho = TraceAlgo::MmInplace.potential();
        for menu in [vec![16u64], vec![1, 3, 9], vec![2, 64, 2, 5]] {
            let profile = SquareProfile::new(menu).unwrap();
            let (sim_report, sim_history) =
                replay_square_profile_history(st.program(), &mut profile.cycle(), rho);
            let (ana_report, ana_history) =
                analytic_square_profile_history(st.summary(), &mut profile.cycle(), rho);
            assert_eq!(sim_history, ana_history);
            assert_eq!(sim_report.total_io, ana_report.total_io);
            assert_eq!(sim_report.boxes_used, ana_report.boxes_used);
            assert_eq!(
                sim_report.bounded_potential_sum.to_bits(),
                ana_report.bounded_potential_sum.to_bits()
            );
        }
    }

    #[test]
    fn memory_profile_matches_simulator_including_truncation() {
        let st = summarized(TraceAlgo::MmScan, 8, 4);
        for segments in [
            vec![Segment {
                size: 1 << 16,
                len: 1 << 20,
            }],
            vec![Segment { size: 2, len: 10 }],
            vec![
                Segment { size: 64, len: 50 },
                Segment { size: 1, len: 400 },
                Segment {
                    size: 16,
                    len: 1 << 20,
                },
            ],
        ] {
            let profile = MemoryProfile::from_segments(segments).unwrap();
            assert_eq!(
                analytic_memory_profile(st.summary(), &profile),
                replay_memory_profile(st.program(), &profile)
            );
        }
    }

    #[test]
    fn leaf_only_and_empty_traces() {
        let mut t = Tracer::new(1);
        t.leaf();
        t.leaf();
        let st = SummarizedTrace::new(t.into_trace());
        let rho = Potential::new(2, 2);
        let sim = replay_square_profile(st.program(), &mut ConstantSource::new(4), rho);
        let ana = analytic_square_profile(st.summary(), &mut ConstantSource::new(4), rho);
        assert_eq!(sim.boxes_used, 1);
        assert_eq!(ana.boxes_used, 1);
        assert_eq!(sim.total_progress, 2);
        assert_eq!(ana.total_progress, 2);

        let empty = summarise(&[]);
        let sim = replay_square_profile(empty.program(), &mut ConstantSource::new(4), rho);
        let ana = analytic_square_profile(empty.summary(), &mut ConstantSource::new(4), rho);
        assert_eq!(sim.boxes_used, 0);
        assert_eq!(ana.boxes_used, 0);
    }

    #[test]
    fn empty_memory_profile_is_mirrored() {
        let st = summarise(&[1, 2, 1]);
        let profile = MemoryProfile::from_segments(Vec::new()).unwrap();
        assert_eq!(
            analytic_memory_profile(st.summary(), &profile),
            replay_memory_profile(st.program(), &profile)
        );
    }

    #[test]
    fn warm_hits_are_free_even_after_the_budget_is_spent() {
        // Box of size 1: the first access misses and spends the budget;
        // the immediate re-access must still hit and be consumed.
        let st = summarise(&[7, 7, 7, 8]);
        let rho = Potential::new(2, 2);
        let (sim, sim_h) =
            replay_square_profile_history(st.program(), &mut ConstantSource::new(1), rho);
        let (ana, ana_h) =
            analytic_square_profile_history(st.summary(), &mut ConstantSource::new(1), rho);
        assert_eq!(sim_h, ana_h);
        assert_eq!(sim.boxes_used, 2, "7,7,7 in box one; 8 in box two");
        assert_eq!(ana.total_io, sim.total_io);
    }

    #[test]
    fn accounting_counters_match_the_simulator() {
        let st = summarized(TraceAlgo::Strassen, 8, 4);
        let rho = TraceAlgo::Strassen.potential();
        let rec = Recording::start();
        let _ = replay_square_profile(st.program(), &mut ConstantSource::new(8), rho);
        let _ = replay_fixed(st.program(), 32);
        let sim = rec.finish();
        let rec = Recording::start();
        let _ = analytic_square_profile(st.summary(), &mut ConstantSource::new(8), rho);
        let _ = analytic_fixed(st.summary(), 32);
        let ana = rec.finish();
        assert_eq!(sim.ios_charged, ana.ios_charged);
        assert_eq!(sim.boxes_advanced, ana.boxes_advanced);
        // The diagnostic cache counters are the documented divergence:
        // the analytic model has no cache to hit or evict.
        assert!(sim.cache_hits > 0);
        assert_eq!(ana.cache_hits, 0);
        assert_eq!(ana.cache_evictions, 0);
    }

    #[test]
    fn backend_dispatch_is_transparent() {
        let st = summarized(TraceAlgo::MmScan, 8, 4);
        let rho = TraceAlgo::MmScan.potential();
        assert_eq!(CacheBackend::Simulated.label(), "simulated");
        assert_eq!(CacheBackend::Analytic.label(), "analytic");
        let sim = CacheBackend::Simulated.fixed(&st, 16);
        let ana = CacheBackend::Analytic.fixed(&st, 16);
        assert_eq!(sim, ana);
        let sim = CacheBackend::Simulated.square_profile(&st, &mut ConstantSource::new(16), rho);
        let ana = CacheBackend::Analytic.square_profile(&st, &mut ConstantSource::new(16), rho);
        assert_eq!(sim.total_io, ana.total_io);
        assert_eq!(sim.boxes_used, ana.boxes_used);
        let profile = MemoryProfile::from_segments(vec![Segment {
            size: 32,
            len: 1 << 20,
        }])
        .unwrap();
        assert_eq!(
            CacheBackend::Simulated.memory_profile(&st, &profile),
            CacheBackend::Analytic.memory_profile(&st, &profile)
        );
    }
}
