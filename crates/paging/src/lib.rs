//! # cadapt-paging — the machine under the model
//!
//! A two-level memory-hierarchy simulator in the DAM tradition: a cache of
//! m(t) blocks in front of an infinite disk, time measured in I/Os (block
//! transfers), hits free. Three replay modes over the block traces produced
//! by `cadapt-trace`:
//!
//! * [`replay::replay_fixed`] — classical DAM: constant cache of M blocks
//!   with LRU replacement (the ideal-cache baseline).
//! * [`replay::replay_square_profile`] — the cache-adaptive model on square
//!   profiles: each box of size x grants x I/Os and x blocks of (cleared)
//!   cache; the per-box progress ledger feeds the same
//!   [`AdaptivityReport`](cadapt_core::AdaptivityReport) the abstract
//!   cursor produces, making the two layers directly comparable (E8).
//!   [`replay::replay_square_cursor`] is the streaming variant: the same
//!   replay fed from any [`RunCursor`](cadapt_core::RunCursor) pipeline,
//!   with cooperative cancellation at run boundaries.
//! * [`replay::replay_memory_profile`] — the general CA model: an arbitrary
//!   m(t), evicting down to the new size at every step.
//!
//! The LRU structure itself is [`lru::LruCache`], a slab-backed O(1)
//! doubly-linked implementation; [`opt::replay_opt`] provides Belady's
//! offline-optimal replacement as the baseline the ideal-cache model
//! assumes, with the Sleator–Tarjan LRU-vs-OPT inequality checked in its
//! tests.
//!
//! Each simulated replay mode has an analytic twin in [`analytic`] that
//! computes the identical numbers in closed form from a
//! [`TraceSummary`](cadapt_trace::TraceSummary) — no cache state, no
//! per-reference replay — selectable per experiment through
//! [`analytic::CacheBackend`]. The equivalence is exact and enforced by
//! proptest (`tests/props_analytic_equivalence.rs`) and the corpus
//! integration suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod lru;
pub mod opt;
pub mod replay;

pub use analytic::{
    analytic_fixed, analytic_memory_profile, analytic_square_profile,
    analytic_square_profile_history, CacheBackend,
};
pub use lru::LruCache;
pub use opt::replay_opt;
pub use replay::{
    replay_fixed, replay_memory_profile, replay_square_cursor, replay_square_profile,
    replay_square_profile_history, ReplayError,
};
