//! Trace replay under fixed caches, square profiles, and arbitrary
//! profiles.

use crate::lru::LruCache;
use cadapt_core::{
    cast, AdaptivityReport, Blocks, BoxRecord, BoxRun, BoxSource, Io, Leaves, MemoryProfile,
    Potential, ProgressLedger, RunCursor,
};
use cadapt_trace::{TraceEvent, TraceStream};

/// Error from a cursor-driven replay ([`replay_square_cursor`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// The cursor ran dry before the trace finished replaying.
    ProfileExhausted {
        /// Boxes fully consumed before the cursor ended.
        after_boxes: u64,
    },
    /// A [`CancelToken`](cadapt_core::CancelToken) upstream fired; the
    /// replay stopped cooperatively at a run boundary.
    Cancelled {
        /// Boxes fully consumed before cancellation was observed.
        after_boxes: u64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::ProfileExhausted { after_boxes } => {
                write!(f, "profile ran dry after {after_boxes} boxes")
            }
            ReplayError::Cancelled { after_boxes } => {
                write!(f, "replay cancelled after {after_boxes} boxes")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Outcome of a fixed-cache (classical DAM) replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedReplay {
    /// Cache size used.
    pub cache_blocks: Blocks,
    /// Total I/Os (misses).
    pub io: Io,
    /// Total accesses (hits + misses).
    pub accesses: u64,
}

/// Replay a trace through a constant LRU cache of `cache_blocks` blocks —
/// the ideal-cache/DAM baseline. Time is the number of misses.
///
/// Generic over [`TraceStream`]: pass a recorded
/// [`cadapt_trace::BlockTrace`] or a compiled
/// [`cadapt_trace::TraceProgram`] — the simulator streams events either
/// way, never materialising a vector.
///
/// ```
/// use cadapt_paging::replay_fixed;
/// use cadapt_trace::mm::mm_inplace;
/// use cadapt_trace::ZMatrix;
///
/// let m = ZMatrix::from_row_major(4, &[1.0; 16]);
/// let (_, trace) = mm_inplace(&m, &m, 4);
/// // With ample cache every distinct block misses exactly once.
/// let replay = replay_fixed(&trace, 1 << 20);
/// assert_eq!(replay.io, u128::from(trace.distinct_blocks()));
/// ```
#[must_use]
pub fn replay_fixed<T: TraceStream + ?Sized>(trace: &T, cache_blocks: Blocks) -> FixedReplay {
    let mut cache = LruCache::new(cast::usize_from_u64(cache_blocks));
    let mut io: Io = 0;
    let mut accesses: u64 = 0;
    for event in trace.events() {
        if let TraceEvent::Access(block) = event {
            accesses += 1;
            if !cache.access(block) {
                io += 1;
                cadapt_core::counters::count_io(1);
            }
        }
    }
    FixedReplay {
        cache_blocks,
        io,
        accesses,
    }
}

/// Replay a trace in the cache-adaptive model against a square profile.
///
/// Each box of size x grants x I/Os of time and x blocks of cache, cleared
/// at the box boundary (§2's w.l.o.g. convention). Hits are free; each miss
/// consumes one I/O of the box. When the box's I/Os are spent, the pending
/// access retries in the next box. Per-box progress is the number of
/// base-case marks replayed within the box; the ledger produces the same
/// [`AdaptivityReport`] as the abstract execution drivers, with the trace's
/// working-set size as the problem size n.
#[must_use]
pub fn replay_square_profile<T: TraceStream + ?Sized, S: BoxSource>(
    trace: &T,
    source: &mut S,
    rho: Potential,
) -> AdaptivityReport {
    let ledger = ProgressLedger::new(rho, trace.distinct_blocks());
    replay_square_into(trace, source, ledger).finish()
}

/// As [`replay_square_profile`], additionally returning the per-box
/// history — the lock-step ground truth the analytic backend is
/// cross-validated against (`cadapt_paging::analytic`).
#[must_use]
pub fn replay_square_profile_history<T: TraceStream + ?Sized, S: BoxSource>(
    trace: &T,
    source: &mut S,
    rho: Potential,
) -> (AdaptivityReport, Vec<BoxRecord>) {
    let ledger = ProgressLedger::retaining(rho, trace.distinct_blocks());
    let ledger = replay_square_into(trace, source, ledger);
    // cadapt-lint: allow(cursor-materialize) -- this entry point exists to hand back the retained per-box history; callers opted into O(boxes) memory by choosing it
    let history = ledger.history().unwrap_or_default().to_vec();
    (ledger.finish(), history)
}

fn replay_square_into<T: TraceStream + ?Sized, S: BoxSource>(
    trace: &T,
    source: &mut S,
    ledger: ProgressLedger,
) -> ProgressLedger {
    let mut cursor = cadapt_core::SourceCursor::new(source);
    replay_cursor_into(trace, &mut cursor, ledger).expect("infallible") // cadapt-lint: allow(panic-reach) -- SourceCursor adapts an infinite BoxSource and carries no cancel token, so neither ReplayError variant can occur
}

/// The one per-box trace-replay loop in this crate: both the legacy
/// [`BoxSource`] entry points and the streaming [`replay_square_cursor`]
/// drain it. Runs are pulled lazily and expanded box by box — trace replay
/// inherently simulates each box's LRU cache — with at most one pending
/// run resident (the cursor contract's O(1) bound). Leaf marks are
/// attached to the preceding access, so trailing marks of the final box
/// are consumed correctly.
fn replay_cursor_into<T: TraceStream + ?Sized, C: RunCursor>(
    trace: &T,
    source: &mut C,
    mut ledger: ProgressLedger,
) -> Result<ProgressLedger, ReplayError> {
    let mut events = trace.events().peekable();
    let mut boxes: u64 = 0;
    let mut pending: Option<BoxRun> = None;
    while events.peek().is_some() {
        let run = match pending.take() {
            Some(run) => run,
            None => match source.next_run() {
                Ok(Some(run)) => run,
                Ok(None) => return Err(ReplayError::ProfileExhausted { after_boxes: boxes }),
                Err(cadapt_core::Cancelled) => {
                    return Err(ReplayError::Cancelled { after_boxes: boxes });
                }
            },
        };
        debug_assert!(run.repeat >= 1 && run.size >= 1, "bad run {run:?}");
        let size = run.size;
        if run.repeat > 1 {
            // Stash the rest of the run; infinite tails stay infinite.
            pending = Some(BoxRun {
                size,
                repeat: if run.repeat == u64::MAX {
                    u64::MAX
                } else {
                    run.repeat - 1
                },
            });
        }
        let mut cache = LruCache::new(cast::usize_from_u64(size));
        let mut budget = Io::from(size);
        let mut progress: Leaves = 0;
        let mut used: Io = 0;
        while let Some(event) = events.peek() {
            match event {
                TraceEvent::Leaf => {
                    progress += 1;
                    events.next();
                }
                TraceEvent::Access(block) => {
                    if cache.contains(*block) {
                        let _ = cache.access(*block);
                        events.next();
                    } else if budget > 0 {
                        let _ = cache.access(*block);
                        budget -= 1;
                        used += 1;
                        events.next();
                    } else {
                        // Box exhausted: this access starts the next box.
                        break;
                    }
                }
            }
        }
        boxes += 1;
        cadapt_core::counters::count_boxes(1);
        cadapt_core::counters::count_io(used);
        ledger.record(BoxRecord {
            size,
            progress,
            used,
        });
    }
    Ok(ledger)
}

/// As [`replay_square_profile`], but fed from a streaming
/// [`RunCursor`] pipeline instead of a bare [`BoxSource`]: the profile may
/// be throttled, interleaved, round-robined, or wrapped in
/// [`cancellable`](cadapt_core::RunCursorExt::cancellable), and the replay
/// holds O(1) profile state regardless of the pipeline's length.
///
/// Runs are expanded box by box — trace replay inherently simulates each
/// box's LRU cache — but the cursor is pulled one *run* at a time, so
/// cancellation is observed at run boundaries (cursor law 4) and a
/// `u64::MAX` constant tail never materialises.
///
/// A finite cursor that ends before the trace does yields
/// [`ReplayError::ProfileExhausted`]; a fired token yields
/// [`ReplayError::Cancelled`]. Either way the counters reflect exactly the
/// boxes fully replayed.
///
/// # Errors
///
/// See above: `ProfileExhausted` and `Cancelled` are the only failure
/// modes.
pub fn replay_square_cursor<T: TraceStream + ?Sized, C: RunCursor>(
    trace: &T,
    source: &mut C,
    rho: Potential,
) -> Result<AdaptivityReport, ReplayError> {
    let ledger = ProgressLedger::new(rho, trace.distinct_blocks());
    replay_cursor_into(trace, source, ledger).map(ProgressLedger::finish)
}

/// Outcome of an arbitrary-profile replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileReplay {
    /// I/Os consumed (= profile steps advanced).
    pub io: Io,
    /// Did the trace complete within the profile?
    pub completed: bool,
    /// Base-case marks replayed.
    pub leaves: Leaves,
}

/// Replay a trace in the general cache-adaptive model: the cache holds
/// m(t) blocks after the t-th I/O (LRU replacement, immediate eviction on
/// shrink). Hits are free; each miss advances t. Returns how far the
/// profile got; `completed` is false if the profile ended first.
#[must_use]
pub fn replay_memory_profile<T: TraceStream + ?Sized>(
    trace: &T,
    profile: &MemoryProfile,
) -> ProfileReplay {
    let mut t: Io = 0;
    let Some(initial) = profile.value_at(0) else {
        return ProfileReplay {
            io: 0,
            completed: trace.accesses() == 0,
            leaves: 0,
        };
    };
    let mut cache = LruCache::new(cast::usize_from_u64(initial));
    let mut leaves: Leaves = 0;
    for event in trace.events() {
        match event {
            TraceEvent::Leaf => leaves += 1,
            TraceEvent::Access(block) => {
                // The cache holds m(t) blocks *now*; shrink eagerly so a
                // smaller allocation evicts immediately (the CA model lets
                // the size drop arbitrarily between I/Os).
                match profile.value_at(t) {
                    None => {
                        // Profile exhausted: no cache, no I/O budget left.
                        return ProfileReplay {
                            io: t,
                            completed: false,
                            leaves,
                        };
                    }
                    Some(m) => cache.resize(cast::usize_from_u64(m)),
                }
                if cache.access(block) {
                    continue; // hit: free
                }
                t += 1; // miss: one I/O
                cadapt_core::counters::count_io(1);
            }
        }
    }
    ProfileReplay {
        io: t,
        completed: true,
        leaves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadapt_core::memory_profile::Segment;
    use cadapt_core::profile::ConstantSource;
    use cadapt_trace::mm::{mm_inplace, mm_scan};
    use cadapt_trace::ZMatrix;

    fn small_matrices(side: usize) -> (ZMatrix, ZMatrix) {
        let a: Vec<f64> = (0..side * side).map(|i| (i % 7) as f64 - 3.0).collect();
        let b: Vec<f64> = (0..side * side).map(|i| (i % 5) as f64 - 2.0).collect();
        (
            ZMatrix::from_row_major(side, &a),
            ZMatrix::from_row_major(side, &b),
        )
    }

    #[test]
    fn fixed_replay_with_huge_cache_is_cold_misses_only() {
        let (a, b) = small_matrices(8);
        let (_, trace) = mm_inplace(&a, &b, 4);
        let replay = replay_fixed(&trace, 1 << 20);
        // Every distinct block misses exactly once.
        assert_eq!(replay.io, Io::from(trace.distinct_blocks()));
    }

    #[test]
    fn fixed_replay_io_decreases_with_cache_size() {
        let (a, b) = small_matrices(8);
        let (_, trace) = mm_scan(&a, &b, 4);
        let io4 = replay_fixed(&trace, 4).io;
        let io16 = replay_fixed(&trace, 16).io;
        let io64 = replay_fixed(&trace, 64).io;
        assert!(io4 >= io16, "{io4} < {io16}");
        assert!(io16 >= io64, "{io16} < {io64}");
        assert!(io4 > io64, "more cache must help this workload");
    }

    #[test]
    fn fixed_replay_cache_one_makes_everything_miss_across_blocks() {
        let (a, b) = small_matrices(4);
        let (_, trace) = mm_inplace(&a, &b, 1);
        let replay = replay_fixed(&trace, 1);
        // With one block of cache only immediate re-accesses hit.
        assert!(replay.io > Io::from(trace.distinct_blocks()));
    }

    #[test]
    fn square_replay_completes_and_counts_all_leaves() {
        let (a, b) = small_matrices(8);
        let (_, trace) = mm_inplace(&a, &b, 4);
        let mut source = ConstantSource::new(16);
        let report = replay_square_profile(&trace, &mut source, Potential::new(8, 4));
        assert_eq!(report.total_progress, trace.leaves());
        assert_eq!(report.n, trace.distinct_blocks());
        assert!(report.boxes_used > 0);
    }

    #[test]
    fn square_replay_single_giant_box() {
        let (a, b) = small_matrices(8);
        let (_, trace) = mm_scan(&a, &b, 4);
        let mut source = ConstantSource::new(1 << 20);
        let report = replay_square_profile(&trace, &mut source, Potential::new(8, 4));
        assert_eq!(report.boxes_used, 1);
        // One cold miss per distinct block.
        assert_eq!(report.total_io, Io::from(trace.distinct_blocks()));
    }

    #[test]
    fn square_replay_smaller_boxes_use_more_boxes() {
        let (a, b) = small_matrices(8);
        let (_, trace) = mm_scan(&a, &b, 4);
        let rho = Potential::new(8, 4);
        let boxes_small = {
            let mut s = ConstantSource::new(8);
            replay_square_profile(&trace, &mut s, rho).boxes_used
        };
        let boxes_large = {
            let mut s = ConstantSource::new(64);
            replay_square_profile(&trace, &mut s, rho).boxes_used
        };
        assert!(boxes_small > boxes_large);
    }

    #[test]
    fn memory_profile_replay_completion() {
        let (a, b) = small_matrices(4);
        let (_, trace) = mm_inplace(&a, &b, 2);
        // Ample profile: constant large cache, long duration.
        let profile = MemoryProfile::from_segments(vec![Segment {
            size: 1 << 16,
            len: 1 << 20,
        }])
        .unwrap();
        let replay = replay_memory_profile(&trace, &profile);
        assert!(replay.completed);
        assert_eq!(replay.io, Io::from(trace.distinct_blocks()));
        assert_eq!(replay.leaves, trace.leaves());
    }

    #[test]
    fn memory_profile_replay_can_run_out() {
        let (a, b) = small_matrices(8);
        let (_, trace) = mm_scan(&a, &b, 2);
        let profile = MemoryProfile::from_segments(vec![Segment { size: 2, len: 10 }]).unwrap();
        let replay = replay_memory_profile(&trace, &profile);
        assert!(!replay.completed);
        assert_eq!(replay.io, 10);
    }

    #[test]
    fn shrinking_profile_evicts() {
        // Trace: touch blocks 1..=4, then re-touch them after the cache
        // shrinks; the re-touches must miss.
        let mut tracer = cadapt_trace::Tracer::new(1);
        for blk in [1u64, 2, 3, 4, 1, 2, 3, 4] {
            tracer.touch(blk);
        }
        let trace = tracer.into_trace();
        // Cache: 4 blocks for the first 4 I/Os, then 1 block.
        let profile = MemoryProfile::from_segments(vec![
            Segment { size: 4, len: 4 },
            Segment { size: 1, len: 100 },
        ])
        .unwrap();
        let replay = replay_memory_profile(&trace, &profile);
        assert!(replay.completed);
        // First pass: 4 misses. Second pass: cache shrunk to 1 → 4 misses.
        assert_eq!(replay.io, 8);
    }

    #[test]
    fn cursor_replay_matches_source_replay() {
        use cadapt_core::RunCursorExt;
        let (a, b) = small_matrices(8);
        let (_, trace) = mm_inplace(&a, &b, 4);
        let rho = Potential::new(8, 4);
        let mut source = ConstantSource::new(16);
        let classic = replay_square_profile(&trace, &mut source, rho);
        let mut cursor = ConstantSource::new(16).into_cursor();
        let streamed = replay_square_cursor(&trace, &mut cursor, rho).unwrap();
        assert_eq!(classic, streamed);
        // Through a no-op combinator stack the numbers are unchanged.
        let mut piped = ConstantSource::new(16).into_cursor().throttle(16);
        let piped = replay_square_cursor(&trace, &mut piped, rho).unwrap();
        assert_eq!(classic, piped);
    }

    #[test]
    fn cursor_replay_exhausted_profile_is_typed() {
        use cadapt_core::RunCursorExt;
        let (a, b) = small_matrices(8);
        let (_, trace) = mm_scan(&a, &b, 4);
        // Two boxes of 8 can't finish this trace.
        let mut cursor = ConstantSource::new(8).into_cursor().take_boxes(2);
        let err = replay_square_cursor(&trace, &mut cursor, Potential::new(8, 4)).unwrap_err();
        assert_eq!(err, ReplayError::ProfileExhausted { after_boxes: 2 });
    }

    #[test]
    fn cursor_replay_pre_cancelled_token_stops_at_zero_boxes() {
        use cadapt_core::{CancelToken, RunCursorExt};
        let (a, b) = small_matrices(4);
        let (_, trace) = mm_inplace(&a, &b, 2);
        let token = CancelToken::new();
        token.cancel();
        let mut cursor = ConstantSource::new(16).into_cursor().cancellable(token);
        let err = replay_square_cursor(&trace, &mut cursor, Potential::new(8, 4)).unwrap_err();
        assert_eq!(err, ReplayError::Cancelled { after_boxes: 0 });
    }

    #[test]
    fn square_vs_abstract_report_shape() {
        // The trace-level report and the ideal formula agree that a box of
        // the working-set size completes everything in one box.
        let (a, b) = small_matrices(8);
        let (_, trace) = mm_inplace(&a, &b, 4);
        let n = trace.distinct_blocks();
        let mut source = ConstantSource::new(n);
        let report = replay_square_profile(&trace, &mut source, Potential::new(8, 4));
        assert_eq!(report.boxes_used, 1);
        assert!((report.ratio() - 1.0).abs() < 1e-12);
    }
}
