//! Which randomness rescues adaptivity? (§4 of the paper, executable.)
//!
//! Starting from the adversarial profile M_{8,4}(n), apply each smoothing
//! the paper considers and measure the expected adaptivity ratio at two
//! problem sizes. The paper's dichotomy appears directly:
//!
//! * i.i.d. reshuffling (and without-replacement permutation) — rescued;
//! * box-size noise U[0,t] — still adversarial;
//! * random cyclic start shift — still adversarial;
//! * box-order (big-box placement) perturbation — keeps a logarithmic
//!   floor (slope 1/a) though the full slope-1 gap softens.
//!
//! Run with: `cargo run --release --example smoothing_rescue`

use cadapt::prelude::*;
use cadapt::profiles::dist::PermutationSource;
use cadapt::profiles::perturb::{
    random_cyclic_shift, BoxOrderPerturbedSource, RandomPlacement, SizePerturbedSource,
    UniformMultiplier,
};
use cadapt_analysis::montecarlo::trial_rng;

const TRIALS: u64 = 24;

fn mean_ratio(
    params: AbcParams,
    n: Blocks,
    mut make: impl FnMut(u64) -> Box<dyn BoxSource>,
) -> (f64, f64) {
    let mut stats = Stats::new();
    for trial in 0..TRIALS {
        let mut source = make(trial);
        let report =
            run_on_profile(params, n, &mut source, &RunConfig::default()).expect("run completes");
        stats.push(report.ratio());
    }
    (stats.mean, stats.ci95())
}

fn main() {
    let params = AbcParams::mm_scan();
    let sizes = [params.canonical_size(5), params.canonical_size(7)];
    println!(
        "{:<28} {:>14} {:>14}   verdict",
        "smoothing", "R(4^5)", "R(4^7)"
    );

    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for &n in &sizes {
        let worst = WorstCase::for_problem(&params, n).expect("canonical size");
        let profile = worst.materialize();
        let multiset = worst.box_multiset();

        let entries: Vec<(&str, (f64, f64))> = vec![
            ("none (canonical order)", {
                let mut source = worst.source();
                let r = run_on_profile(params, n, &mut source, &RunConfig::default())
                    .expect("run completes");
                (r.ratio(), 0.0)
            }),
            ("iid reshuffle (Thm 1)", {
                let dist = EmpiricalMultiset::from_counts(&multiset, "iid");
                mean_ratio(params, n, |t| {
                    Box::new(DistSource::new(dist.clone(), trial_rng(1, t)))
                })
            }),
            ("random permutation", {
                mean_ratio(params, n, |t| {
                    Box::new(PermutationSource::new(&profile, trial_rng(2, t)))
                })
            }),
            ("box sizes x U[0,2]", {
                mean_ratio(params, n, |t| {
                    Box::new(SizePerturbedSource::new(
                        worst.source(),
                        UniformMultiplier { t: 2.0 },
                        trial_rng(3, t),
                    ))
                })
            }),
            ("random start shift", {
                mean_ratio(params, n, |t| {
                    let mut rng = trial_rng(4, t);
                    Box::new(OwnedCycle::new(random_cyclic_shift(&profile, &mut rng)))
                })
            }),
            ("random big-box placement", {
                mean_ratio(params, n, |t| {
                    Box::new(BoxOrderPerturbedSource::new(
                        worst,
                        RandomPlacement(trial_rng(5, t)),
                    ))
                })
            }),
        ];
        for (label, (mean, _ci)) in entries {
            match rows.iter_mut().find(|(l, _)| l == label) {
                Some((_, values)) => values.push(mean),
                None => rows.push((label.to_string(), vec![mean])),
            }
        }
    }

    for (label, values) in rows {
        let verdict = if label.contains("placement") {
            // E5's finding: the mean flattens but every sample keeps a
            // logarithmic floor of slope 1/a.
            "softened (log floor, slope 1/a)"
        } else if values[1] < 3.0 {
            "rescued (Θ(1))"
        } else {
            "still adversarial"
        };
        println!(
            "{label:<28} {:>14.3} {:>14.3}   {verdict}",
            values[0], values[1]
        );
    }
    println!();
    println!("Only destroying the box ORDER closes the gap. Noise in sizes or");
    println!("start time leaves enough structure for the algorithm to re-sync");
    println!("with the adversary (the paper's No-Catch-up machinery at work).");
}

/// Owning variant of `SquareProfile::cycle` for boxed sources.
struct OwnedCycle {
    boxes: Vec<Blocks>,
    pos: usize,
}

impl OwnedCycle {
    fn new(profile: SquareProfile) -> Self {
        OwnedCycle {
            boxes: profile.into_boxes(),
            pos: 0,
        }
    }
}

impl BoxSource for OwnedCycle {
    fn next_box(&mut self) -> Blocks {
        let b = self.boxes[self.pos];
        self.pos = (self.pos + 1) % self.boxes.len();
        b
    }
}
