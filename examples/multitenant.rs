//! A multi-tenant cache story: what the paper's introduction is about.
//!
//! Simulate a process whose cache share fluctuates as other tenants arrive
//! and depart, square-approximate the resulting m(t), and compare how
//! MM-Scan fares on it against (a) the tailored adversarial profile drawn
//! from the same size range and (b) the ideal single-tenant cache. The
//! punchline is the paper's: real contention behaves like a *smoothed*
//! profile — only an adversary that tracks the recursion hurts.
//!
//! Run with: `cargo run --release --example multitenant`

use cadapt::prelude::*;
use cadapt::profiles::contention::multi_tenant;
use cadapt_analysis::montecarlo::trial_rng;

fn main() {
    let params = AbcParams::mm_scan();
    println!("MM-Scan under multi-tenant cache sharing\n");
    println!(
        "{:>8} {:>22} {:>18} {:>12}",
        "n", "multi-tenant E[R(n)]", "adversarial R(n)", "ideal R(n)"
    );

    for k in 3..=7u32 {
        let n = params.canonical_size(k);

        // Multi-tenant: total cache 2n shared fairly among 1..8 tenants,
        // churning every n/4 I/Os.
        let mut stats = Stats::new();
        for trial in 0..16u64 {
            let mut rng = trial_rng(0xBEEF, trial);
            let profile = multi_tenant(
                2 * n,
                8,
                u128::from(n / 4 + 1),
                0.5,
                32 * u128::from(n),
                &mut rng,
            );
            let squares = profile.inner_squares();
            let mut source = squares.cycle();
            let report = run_on_profile(params, n, &mut source, &RunConfig::default())
                .expect("run completes");
            stats.push(report.ratio());
        }

        // The tailored adversary over the same size range.
        let worst = WorstCase::for_problem(&params, n).expect("canonical size");
        let mut source = worst.source();
        let adversarial =
            run_on_profile(params, n, &mut source, &RunConfig::default()).expect("run completes");

        // Ideal: one box as large as the problem.
        let ideal_profile = SquareProfile::new(vec![n]).expect("positive");
        let mut source = ideal_profile.extended(n);
        let ideal =
            run_on_profile(params, n, &mut source, &RunConfig::default()).expect("run completes");

        println!(
            "{n:>8} {:>15.3} ± {:>4.3} {:>18.3} {:>12.3}",
            stats.mean,
            stats.ci95(),
            adversarial.ratio(),
            ideal.ratio()
        );
    }

    println!();
    println!("Multi-tenant sharing sits near the ideal and stays flat as n");
    println!("grows; the adversarial column grows as log_4 n + 1. Fluctuation");
    println!("per se is harmless — only fluctuation synchronised with the");
    println!("algorithm's recursion is dangerous, and real systems aren't.");
}
