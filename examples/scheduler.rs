//! The introduction's system: jobs sharing a cache whose allocations
//! change as tenants come, go, and churn.
//!
//! Runs mixes of adaptive (MM-Inplace) and non-adaptive (MM-Scan) jobs
//! under three allocation policies and reports overhead against the
//! static fair-share baseline, fairness, and the worst per-job Eq. 2
//! ratio — the paper's opening story with numbers attached.
//!
//! Run with: `cargo run --release --example scheduler`

use cadapt::prelude::*;
use cadapt::sched::scheduler::run_alone;
use cadapt::sched::{ChurnShares, EqualShares, JobSpec, Scheduler, SchedulerConfig, WinnerTakeAll};
use cadapt_analysis::montecarlo::trial_rng;

fn main() {
    let n = 1 << 12;
    let total_cache = n / 2;
    let config = SchedulerConfig {
        total_cache,
        ..SchedulerConfig::default()
    };
    println!("four jobs share {total_cache} blocks of cache (each job: n = {n})\n");
    println!(
        "{:<22} {:<20} {:>10} {:>10} {:>12}",
        "job mix", "policy", "overhead", "fairness", "worst R(n)"
    );
    for (mix_label, params) in [
        ("4x MM-Inplace", AbcParams::mm_inplace()),
        ("4x MM-Scan", AbcParams::mm_scan()),
    ] {
        let specs = vec![JobSpec::new(params, n); 4];
        let share_config = SchedulerConfig {
            total_cache: total_cache / 4,
            ..config
        };
        let baseline: u128 = specs
            .iter()
            .map(|&s| run_alone(s, share_config).expect("baseline").bus_io)
            .sum();
        let report = |policy_label: &str, result: cadapt::sched::ScheduleResult| {
            println!(
                "{:<22} {:<20} {:>10.3} {:>10.3} {:>12.3}",
                mix_label,
                policy_label,
                result.bus_io as f64 / baseline as f64,
                result.fairness(),
                result.worst_ratio()
            );
        };
        let equal = Scheduler::new(&specs, EqualShares, config)
            .expect("admits")
            .run()
            .expect("completes");
        report("equal-shares", equal);
        let wta = Scheduler::new(&specs, WinnerTakeAll { reign: 8 }, config)
            .expect("admits")
            .run()
            .expect("completes");
        report("winner-take-all", wta);
        let churn = Scheduler::new(&specs, ChurnShares::new(trial_rng(1, 0)), config)
            .expect("admits")
            .run()
            .expect("completes");
        report("churn", churn);
    }
    println!();
    println!("Overhead ≈ 1 everywhere: the emergent allocation patterns never");
    println!("track a job's recursion, so even the non-adaptive MM-Scan is far");
    println!("from its adversarial log-factor — smoothing at system level. The");
    println!(
        "worst R(n) column stays well under log_4 n + 1 = {}.",
        (n as f64).log(4.0) + 1.0
    );
}
