//! The worst-case gap, algorithm by algorithm (the paper's Figure 1 made
//! executable).
//!
//! Every (a, b, 1)-regular algorithm with a > b — MM-Scan, Strassen, the
//! cache-oblivious DP kernel — pays ratio log_b n + 1 on its recursive
//! worst-case profile, while MM-Inplace (c = 0) on the *same* profile
//! converges to a small constant. Also prints the per-level anatomy of the
//! adversarial profile so you can see where the potential hides.
//!
//! Run with: `cargo run --release --example worst_case_gap`

use cadapt::prelude::*;

fn gap_row(label: &str, params: AbcParams, donor: AbcParams, k: u32) {
    let n = donor.canonical_size(k);
    let worst = WorstCase::for_problem(&donor, n).expect("canonical size");
    let mut source = worst.source();
    let config = RunConfig {
        model: ExecModel::capacity(),
        ..RunConfig::default()
    };
    let report = run_on_profile(params, n, &mut source, &config).expect("run completes");
    println!(
        "{label:<22} n = {n:>7}  boxes = {:>9}  ratio = {:>6.3}",
        report.boxes_used,
        report.ratio()
    );
}

fn main() {
    // Anatomy of M_{8,4}(256): the box multiset by level.
    let params = AbcParams::mm_scan();
    let worst = WorstCase::for_problem(&params, 256).expect("canonical size");
    let rho = params.potential();
    println!("anatomy of M_{{8,4}}(256) — every level carries n^{{3/2}} potential:");
    println!(
        "{:>10} {:>10} {:>16} {:>14}",
        "box size", "count", "potential each", "level total"
    );
    for (size, count) in worst.box_multiset() {
        println!(
            "{size:>10} {count:>10} {:>16.1} {:>14.1}",
            rho.eval(size),
            count as f64 * rho.eval(size)
        );
    }
    println!(
        "total potential {:.1} = (log_4 n + 1) · n^1.5 — the gap\n",
        worst.total_potential(&rho)
    );

    println!("the gap, per algorithm (k = 7, capacity model):");
    gap_row(
        "MM-Scan (8,4,1)",
        AbcParams::mm_scan(),
        AbcParams::mm_scan(),
        7,
    );
    gap_row(
        "Strassen (7,4,1)",
        AbcParams::strassen(),
        AbcParams::strassen(),
        7,
    );
    gap_row("CO-DP (3,2,1)", AbcParams::co_dp(), AbcParams::co_dp(), 11);
    gap_row(
        "MM-Inplace (8,4,0)",
        AbcParams::mm_inplace(),
        AbcParams::mm_scan(),
        7,
    );
    println!();
    println!("The three c = 1 algorithms pay log_b n + 1 exactly; MM-Inplace,");
    println!("with no merge scans to waste boxes on, rides the same profile at");
    println!("a small constant — the §3 contrast that motivates the paper.");
}
