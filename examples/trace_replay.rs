//! Real algorithms under a fluctuating cache: multiply actual matrices,
//! record every block access, and replay the trace through the paging
//! simulator under different memory regimes.
//!
//! Shows the full pipeline: traced algorithm → block trace → (fixed DAM
//! cache | square profile | arbitrary m(t)) replay, and the §3 phenomenon
//! on real data: MM-Inplace converts cache into I/O savings, MM-Scan
//! cannot.
//!
//! Run with: `cargo run --release --example trace_replay`

use cadapt::paging::{replay_fixed, replay_memory_profile, replay_square_profile};
use cadapt::prelude::*;
use cadapt::profiles::contention::sawtooth;
use cadapt::trace::mm::{mm_inplace, mm_scan};
use cadapt::trace::{matrix::naive_multiply, ZMatrix};

fn main() {
    let side = 32;
    let block_words = 4;
    let a_rows: Vec<f64> = (0..side * side)
        .map(|i| ((i * 7) % 13) as f64 - 6.0)
        .collect();
    let b_rows: Vec<f64> = (0..side * side)
        .map(|i| ((i * 5) % 11) as f64 - 5.0)
        .collect();
    let a = ZMatrix::from_row_major(side, &a_rows);
    let b = ZMatrix::from_row_major(side, &b_rows);

    let (c_scan, trace_scan) = mm_scan(&a, &b, block_words);
    let (c_inplace, trace_inplace) = mm_inplace(&a, &b, block_words);

    // The algorithms really multiply: verify against the naive reference.
    let expected = naive_multiply(side, &a_rows, &b_rows);
    assert_eq!(c_scan.to_row_major(), expected);
    assert_eq!(c_inplace.to_row_major(), expected);
    println!("{side}x{side} product verified against the naive multiply\n");

    for (label, trace) in [("MM-Scan", &trace_scan), ("MM-Inplace", &trace_inplace)] {
        println!(
            "{label}: {} accesses, working set {} blocks, {} base cases",
            trace.accesses(),
            trace.distinct_blocks(),
            trace.leaves()
        );
    }

    // Classical DAM: fixed cache sweep.
    println!("\nfixed-cache (DAM) replay, I/O by cache size:");
    print!("{:>12}", "M (blocks):");
    for m in [8u64, 32, 128, 512, 2048] {
        print!("{m:>9}");
    }
    println!();
    for (label, trace) in [("MM-Scan", &trace_scan), ("MM-Inplace", &trace_inplace)] {
        print!("{label:>12}");
        for m in [8u64, 32, 128, 512, 2048] {
            print!("{:>9}", replay_fixed(trace, m).io);
        }
        println!();
    }

    // Cache-adaptive replay: constant-box square profiles.
    println!("\nsquare-profile replay, I/O by box size (cache cleared per box):");
    print!("{:>12}", "box:");
    for b0 in [8u64, 32, 128, 512] {
        print!("{b0:>9}");
    }
    println!();
    for (label, trace, rho) in [
        ("MM-Scan", &trace_scan, Potential::new(8, 4)),
        ("MM-Inplace", &trace_inplace, Potential::new(8, 4)),
    ] {
        print!("{label:>12}");
        for b0 in [8u64, 32, 128, 512] {
            let profile = SquareProfile::new(vec![b0]).expect("positive box");
            let mut source = profile.cycle();
            print!(
                "{:>9}",
                replay_square_profile(trace, &mut source, rho).total_io
            );
        }
        println!();
    }
    println!("MM-Inplace's I/O collapses as boxes grow; MM-Scan's barely moves —");
    println!("it streams its temporaries no matter how much cache it gets.");

    // Arbitrary profile: the winner-take-all sawtooth from the paper's intro.
    let ws = trace_inplace.distinct_blocks();
    let profile = sawtooth(ws / 8 + 1, 2 * ws, u128::from(ws), 600 * u128::from(ws));
    let replay = replay_memory_profile(&trace_inplace, &profile);
    println!(
        "\nMM-Inplace under a winner-take-all sawtooth m(t): completed = {}, {} I/Os",
        replay.completed, replay.io
    );
    let squares = profile.inner_squares();
    println!(
        "the same profile square-decomposes into {} boxes (largest {})",
        squares.len(),
        squares.max_box().unwrap_or(0)
    );
}
