//! Quickstart: the paper's story in sixty lines.
//!
//! 1. MM-Scan is optimal in the classical DAM, but on the recursive
//!    worst-case profile it pays a Θ(log n) adaptivity penalty.
//! 2. Randomly reshuffling the *very same boxes* (i.i.d. draws from the
//!    profile's multiset) makes it cache-adaptive in expectation — the
//!    paper's headline smoothing theorem.
//!
//! Run with: `cargo run --release --example quickstart`

use cadapt::prelude::*;

fn main() {
    let params = AbcParams::mm_scan(); // (8, 4, 1)-regular
    println!("algorithm: MM-Scan, {params}");
    println!("potential exponent log_b a = {:.3}\n", params.exponent());

    println!(
        "{:>8} {:>10} {:>16} {:>18}",
        "n", "log_4 n", "worst-case R(n)", "shuffled E[R(n)]"
    );
    for k in 3..=8u32 {
        let n = params.canonical_size(k);

        // The adversarial profile M_{8,4}(n): small boxes while recursing,
        // big boxes exactly when the algorithm can only scan.
        let worst = WorstCase::for_problem(&params, n).expect("canonical size");
        let mut source = worst.source();
        let report =
            run_on_profile(params, n, &mut source, &RunConfig::default()).expect("run completes");

        // The same box multiset, order destroyed: i.i.d. draws.
        let dist = EmpiricalMultiset::from_counts(&worst.box_multiset(), "shuffled M_{8,4}");
        let config = McConfig {
            trials: 32,
            ..McConfig::default()
        };
        let smoothed =
            monte_carlo_ratio(params, n, &config, |rng| DistSource::new(dist.clone(), rng))
                .expect("monte carlo completes");

        println!(
            "{:>8} {:>10} {:>16.3} {:>13.3} ± {:.3}",
            n,
            k,
            report.ratio(),
            smoothed.ratio.mean,
            smoothed.ratio.ci95(),
        );
    }

    println!();
    println!("The worst-case column grows as log_4 n + 1 — the Theorem 2 gap.");
    println!("The shuffled column stays flat — Theorem 1: any i.i.d. box");
    println!("distribution, even the adversary's own multiset, is adaptive");
    println!("in expectation.");
}
