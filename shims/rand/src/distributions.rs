//! The `rand::distributions` subset: [`Distribution`] and [`Uniform`].

use crate::{RngCore, SampleUniform};

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draw a sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over a (half-open or inclusive) interval.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T: SampleUniform> Uniform<T> {
    /// Uniform over `[lo, hi)`.
    pub fn new(lo: T, hi: T) -> Self {
        assert!(lo < hi, "Uniform::new requires lo < hi");
        Uniform {
            lo,
            hi,
            inclusive: false,
        }
    }

    /// Uniform over `[lo, hi]`.
    pub fn new_inclusive(lo: T, hi: T) -> Self {
        assert!(lo <= hi, "Uniform::new_inclusive requires lo <= hi");
        Uniform {
            lo,
            hi,
            inclusive: true,
        }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_between(rng, self.lo, self.hi, self.inclusive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    struct Sm(SplitMix64);
    impl RngCore for Sm {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    #[test]
    fn inclusive_hits_endpoints() {
        let d = Uniform::new_inclusive(1u64, 3);
        let mut rng = Sm(SplitMix64(1));
        let draws: Vec<u64> = (0..300).map(|_| d.sample(&mut rng)).collect();
        assert!(draws.contains(&1));
        assert!(draws.contains(&3));
        assert!(draws.iter().all(|&x| (1..=3).contains(&x)));
    }

    #[test]
    fn point_interval() {
        let d = Uniform::new_inclusive(5u64, 5);
        let mut rng = Sm(SplitMix64(2));
        assert_eq!(d.sample(&mut rng), 5);
    }
}
