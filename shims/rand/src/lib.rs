//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides the traits and helpers the workspace uses — [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen_range`, `gen_bool`,
//! `gen`), [`distributions::Uniform`], and [`seq::SliceRandom`] — with
//! fixed, documented sampling algorithms so that seeded results are stable
//! across releases of this repository (nothing here promises bit-parity
//! with crates.io rand).

pub mod distributions;
pub mod seq;

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded through SplitMix64 — every `u64`
    /// yields a well-mixed full seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion and as the base of the shim's
/// cheap samplers.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Advance and return the next value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A uniformly sampleable primitive (integer or float).
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi)` (`inclusive` = `[lo, hi]`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "cannot sample from empty range");
                let span = span as u128;
                // 128 random bits mod span: bias < 2^-64 for every span the
                // workspace uses.
                let r = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                let offset = (r % span) as i128;
                (lo_w + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(hi > lo || (_inclusive && hi >= lo), "empty float range");
        // 53 uniform bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        f64::sample_between(rng, f64::from(lo), f64::from(hi), inclusive) as f32
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// A type that `Rng::gen` can produce (rand's `Standard` distribution).
pub trait StandardSample {
    /// Draw a uniformly distributed value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience methods on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::standard_sample(self) < p
    }

    /// A uniformly distributed value of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal prelude for API parity.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut sm = SplitMix64(self.0);
            self.0 += 1;
            sm.next_u64()
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = Counter(0);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-3i8..=3);
            assert!((-3..=3).contains(&y));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((700..1300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
