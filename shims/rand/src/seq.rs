//! The `rand::seq` subset: [`SliceRandom`].

use crate::{Rng, RngCore};

/// Slice helpers driven by an RNG.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element (`None` on an empty slice).
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    struct Sm(SplitMix64);
    impl RngCore for Sm {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u64> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut Sm(SplitMix64(9)));
        assert_ne!(v, orig, "50 elements virtually never shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn choose_in_bounds() {
        let v = [10u64, 20, 30];
        let mut rng = Sm(SplitMix64(4));
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u64; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
