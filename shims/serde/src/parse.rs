//! A recursive-descent JSON parser for [`Value`].

use crate::value::{Map, Number, Value};
use crate::Error;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Value {
    /// Parse JSON text into a value tree.
    pub fn parse_json(text: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(v)
    }
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our renderer;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::F(f)))
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i128>()
                .map(|i| Value::Number(Number::I(i)))
                .map_err(|_| Error::new(format!("invalid integer '{text}'")))
        } else {
            text.parse::<u128>()
                .map(|u| Value::Number(Number::U(u)))
                .map_err(|_| Error::new(format!("invalid integer '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let src = r#"{"a":1,"b":[null,true,-2,3.5],"c":"x\ny"}"#;
        let v = Value::parse_json(src).unwrap();
        assert_eq!(v.render_compact(), src);
    }

    #[test]
    fn round_trip_pretty() {
        let src = r#"{"t":"demo","rows":[["1","2"],["3","4"]]}"#;
        let v = Value::parse_json(src).unwrap();
        let pretty = v.render_pretty();
        assert_eq!(Value::parse_json(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse_json("{").is_err());
        assert!(Value::parse_json("[1,]").is_err());
        assert!(Value::parse_json("12 34").is_err());
    }

    #[test]
    fn big_integers_survive() {
        let v = Value::parse_json("1267650600228229401496703205376").unwrap();
        assert_eq!(v.render_compact(), "1267650600228229401496703205376");
    }
}
