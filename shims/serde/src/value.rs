//! The JSON-shaped value tree.

/// A JSON number, kept wide enough to be lossless for the workspace's
/// `u128` I/O counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u128),
    /// Negative integer.
    I(i128),
    /// Floating point.
    F(f64),
}

impl Number {
    /// Lossy view as f64 (used by float deserialization).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }
}

/// An insertion-ordered string-keyed map; field order is the declaration
/// order of the deriving type, which keeps rendered JSON deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Append a key (duplicates are not checked; derives never produce them).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        self.entries.push((key.into(), value));
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Map {
            entries: iter.into_iter().collect(),
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// View as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// View as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// View as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// View as an f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// View as a u64, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(u)) => u64::try_from(*u).ok(),
            _ => None,
        }
    }
}
