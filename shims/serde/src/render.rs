//! JSON text rendering for [`Value`].

use crate::value::{Number, Value};

impl Number {
    fn render(&self, out: &mut String) {
        match *self {
            Number::U(u) => out.push_str(&u.to_string()),
            Number::I(i) => out.push_str(&i.to_string()),
            Number::F(f) => {
                // Display for f64 produces the shortest round-tripping
                // decimal, but bare integers ("3") would re-parse as
                // integers; keep the float-ness explicit.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    /// Compact single-line JSON.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => n.render(out),
            Value::String(s) => escape_into(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Two-space-indented pretty JSON (matches serde_json's layout).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Map;

    #[test]
    fn compact_rendering() {
        let mut m = Map::new();
        m.insert("a", Value::Number(Number::U(1)));
        m.insert("b", Value::Array(vec![Value::Null, Value::Bool(true)]));
        let v = Value::Object(m);
        assert_eq!(v.render_compact(), r#"{"a":1,"b":[null,true]}"#);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(Value::Number(Number::F(3.0)).render_compact(), "3.0");
        assert_eq!(Value::Number(Number::F(0.25)).render_compact(), "0.25");
    }

    #[test]
    fn string_escaping() {
        let v = Value::String("a\"b\\c\nd".to_string());
        assert_eq!(v.render_compact(), r#""a\"b\\c\nd""#);
    }
}
