//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small subset of serde it actually uses: a JSON-shaped
//! [`Value`] data model, [`Serialize`]/[`Deserialize`] traits that convert
//! to and from it, and derive macros for named-field structs and
//! fieldless/struct-variant enums. `serde_json` (also shimmed) renders and
//! parses [`Value`] as real JSON text.
//!
//! The API is intentionally much smaller than real serde's — there is no
//! `Serializer`/`Deserializer` abstraction, only the value tree — but the
//! derive attribute surface (`#[derive(Serialize, Deserialize)]`) and the
//! `serde_json::{to_string, to_string_pretty, from_str}` entry points match,
//! so workspace code is written exactly as it would be against the real
//! crates.

pub use serde_derive::{Deserialize, Serialize};

mod parse;
mod render;
mod value;

pub use value::{Map, Number, Value};

/// Error raised by deserialization (and by `serde_json::from_str`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// A new error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert a value into the JSON data model.
pub trait Serialize {
    /// The JSON-shaped representation of `self`.
    fn serialize(&self) -> Value;
}

/// Reconstruct a value from the JSON data model.
pub trait Deserialize: Sized {
    /// Parse `self` out of `v`, or explain why it doesn't fit.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- integers

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::U(u128::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::U(u)) => <$t>::try_from(*u)
                        .map_err(|_| Error::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::Number(Number::I(i)) => u128::try_from(*i)
                        .ok()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::new(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::new(concat!("expected unsigned integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::I(i128::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::I(i)) => <$t>::try_from(*i)
                        .map_err(|_| Error::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::Number(Number::U(u)) => i128::try_from(*u)
                        .ok()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::new(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::new(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, u128);
impl_signed!(i8, i16, i32, i64, i128);

impl Serialize for usize {
    fn serialize(&self) -> Value {
        Value::Number(Number::U(*self as u128))
    }
}
impl Deserialize for usize {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        u64::deserialize(v).and_then(|u| {
            usize::try_from(u).map_err(|_| Error::new("integer out of range for usize"))
        })
    }
}

// ------------------------------------------------------------------ floats

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::F(*self))
        } else if self.is_nan() {
            Value::String("NaN".to_string())
        } else if *self > 0.0 {
            Value::String("Infinity".to_string())
        } else {
            Value::String("-Infinity".to_string())
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            Value::String(s) if s == "NaN" => Ok(f64::NAN),
            Value::String(s) if s == "Infinity" => Ok(f64::INFINITY),
            Value::String(s) if s == "-Infinity" => Ok(f64::NEG_INFINITY),
            _ => Err(Error::new("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        f64::from(*self).serialize()
    }
}
impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

// ------------------------------------------------------------------ others

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::new("expected string")),
        }
    }
}

impl Serialize for &str {
    fn serialize(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::new("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(t) => t.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$(stringify!($idx)),+].len();
                        if items.len() != expected {
                            return Err(Error::new("tuple arity mismatch"));
                        }
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    _ => Err(Error::new("expected array for tuple")),
                }
            }
        }
    )+};
}

impl_tuple!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i8::deserialize(&(-3i8).serialize()).unwrap(), -3);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(f64::deserialize(&f64::NAN.serialize()).unwrap().is_nan());
        assert!(bool::deserialize(&true.serialize()).unwrap());
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(Vec::<u64>::deserialize(&v.serialize()).unwrap(), v);
        let t = (7u64, 2.5f64);
        assert_eq!(<(u64, f64)>::deserialize(&t.serialize()).unwrap(), t);
    }

    #[test]
    fn u128_precision_is_exact() {
        let big: u128 = (1u128 << 90) + 17;
        assert_eq!(u128::deserialize(&big.serialize()).unwrap(), big);
    }
}
