//! Strategies: value generators composed functionally.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A generator of test values.
///
/// Unlike real proptest there is no shrinking; a strategy is just a
/// deterministic function of the per-case RNG.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// Always produces a clone of its payload.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy (the result of [`Strategy::boxed`] and the
/// representation behind [`crate::prop_oneof!`]).
pub struct BoxedStrategy<V> {
    gen: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen)(rng)
    }
}

/// Uniform choice between alternative strategies of a common value type.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Union<V> {
    /// Build from pre-boxed arms (used by [`crate::prop_oneof!`]).
    pub fn from_arms(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.usize_in(0, self.arms.len() - 1);
        self.arms[i].generate(rng)
    }
}

/// Box one arm of a [`crate::prop_oneof!`] (helper for the macro; unifies
/// heterogeneous arm types by value type).
pub fn arm<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    s.boxed()
}

/// Uniform choice between strategy alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::from_arms(vec![
            $( $crate::strategy::arm($arm) ),+
        ])
    };
}

// ------------------------------------------------------- range strategies

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u128() % (span as u128)) as i128;
                ((self.start as i128) + off) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                let off = (rng.next_u128() % (span as u128)) as i128;
                ((lo as i128) + off) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

// ------------------------------------------------------- tuple strategies

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(1, 0);
        for _ in 0..500 {
            let x = (3u64..10).generate(&mut rng);
            assert!((3..10).contains(&x));
            let y = (1u64..=2).generate(&mut rng);
            assert!((1..=2).contains(&y));
            let z = (-4i8..=4).generate(&mut rng);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn map_and_oneof_compose() {
        let s = prop_oneof![(1u64..100).prop_map(|x| x * 2), Just(7u64),];
        let mut rng = TestRng::for_case(2, 0);
        let mut seen_even = false;
        let mut seen_seven = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            if v == 7 {
                seen_seven = true;
            } else {
                assert_eq!(v % 2, 0);
                seen_even = true;
            }
        }
        assert!(seen_even && seen_seven);
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let s = crate::collection::vec(1u64..5, 2..6);
        let mut rng = TestRng::for_case(3, 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| (1..5).contains(&x)));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let s = (1u64..3, 10u64..12, Just("x"));
        let mut rng = TestRng::for_case(4, 0);
        let (a, b, c) = s.generate(&mut rng);
        assert!((1..3).contains(&a));
        assert!((10..12).contains(&b));
        assert_eq!(c, "x");
    }
}
