//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace uses: [`Strategy`](strategy::Strategy)
//! with `prop_map`, ranges and [`Just`](strategy::Just) as strategies, tuple composition,
//! [`prop_oneof!`], [`collection::vec`], [`bool::ANY`], and the
//! [`proptest!`] test macro with `prop_assert*!` / `prop_assume!`.
//!
//! Differences from real proptest, by design:
//!
//! * cases are generated from a **fixed deterministic RNG** (SplitMix64
//!   keyed by the case index), so failures reproduce without a persistence
//!   file;
//! * there is **no shrinking** — a failing case reports its message and
//!   case number;
//! * `prop_assume!` rejects the individual case without retrying it.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: a range or an exact size.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// A strategy producing `Vec`s of `element` with length drawn from
    /// `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec` — a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::bool` — boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform over `{false, true}`.
    pub const ANY: Any = Any;
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}
