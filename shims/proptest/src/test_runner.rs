//! The deterministic case runner behind [`crate::proptest!`].

/// Per-run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails with this message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// The deterministic per-case RNG (SplitMix64 keyed by test hash + case
/// index). Fixed seeds make every proptest run reproducible without a
/// regression file.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// The RNG for case `case` of a test with identity hash `test_key`.
    pub fn for_case(test_key: u64, case: u64) -> Self {
        TestRng(
            0x9E37_79B9_7F4A_7C15u64
                .wrapping_mul(test_key.wrapping_add(1))
                .wrapping_add(case.wrapping_mul(0xD1B5_4A32_D192_ED03)),
        )
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform usize in `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + (self.next_u128() % span) as usize
    }
}

/// FNV-1a of a test's module path + name, keying its RNG sequence.
pub fn test_key(path: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fails the surrounding proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the surrounding proptest case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}",
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the surrounding proptest case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skips the surrounding proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the real-proptest surface used by this workspace: an optional
/// `#![proptest_config(...)]` header and any number of test functions with
/// `name in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal: expands each test fn inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($param:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // `#[test]` written by the caller is captured in `$meta` and
        // re-emitted here (mirrors real proptest).
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let key = $crate::test_runner::test_key(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::test_runner::TestRng::for_case(key, case);
                $(
                    let $param = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {case} failed: {msg}");
                    }
                }
            }
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Addition commutes (sanity of the macro plumbing).
        #[test]
        fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn assume_skips(a in 0u64..10) {
            prop_assume!(a % 2 == 0);
            prop_assert!(a % 2 == 0, "only even values reach here, got {}", a);
        }

        #[test]
        fn patterns_destructure((a, b) in (1u64..5, 10u64..20)) {
            prop_assert!(a < b);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let key = crate::test_runner::test_key("demo::test");
        let a: Vec<u64> = (0..5)
            .map(|c| TestRng::for_case(key, c).next_u64())
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| TestRng::for_case(key, c).next_u64())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_number() {
        // No `#[test]` on the inner fn: it is invoked directly below
        // (and an inner `#[test]` item would be unnameable anyway).
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(_x in 0u64..10) {
                prop_assert!(false, "forced failure");
            }
        }
        always_fails();
    }
}
