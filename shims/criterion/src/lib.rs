//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's `[[bench]]` targets compiling and usable without
//! crates.io access. Each benchmark closure is timed over a handful of
//! iterations and the median per-iteration wall time is printed; there is
//! no warm-up modelling, outlier analysis, or HTML report. Configuration
//! methods (`sample_size`, `measurement_time`, …) are accepted and mostly
//! advisory.

use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (accepted, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterised benchmark id.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id naming only the parameter (`group/param`).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and parameter.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: u32,
    /// Median per-iteration nanoseconds of the last `iter` call.
    last_median_ns: u128,
}

impl Bencher {
    /// Time `routine` over several iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut times: Vec<u128> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed().as_nanos());
        }
        times.sort_unstable();
        self.last_median_ns = times[times.len() / 2];
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the per-benchmark iteration count (the shim uses it directly as
    /// the number of timed iterations, capped at 20 to keep `cargo bench`
    /// fast).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = (n as u32).clamp(1, 20);
        self
    }

    /// Accepted for API parity; the shim has no measurement-time budget.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API parity; the shim has no warm-up phase.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API parity (CLI args are ignored).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, None, self.sample_size, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).clamp(1, 20);
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a named benchmark in the group.
    pub fn bench_function<N: std::fmt::Display, F>(&mut self, name: N, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, name),
            self.throughput,
            self.sample_size,
            f,
        );
        self
    }

    /// Run a parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.throughput,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnOnce(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    samples: u32,
    f: F,
) {
    let mut bencher = Bencher {
        samples,
        last_median_ns: 0,
    };
    f(&mut bencher);
    let ns = bencher.last_median_ns;
    match throughput {
        Some(Throughput::Elements(n)) if ns > 0 => {
            let rate = n as f64 / (ns as f64 / 1e9);
            println!("bench {name:<50} {ns:>12} ns/iter ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if ns > 0 => {
            let rate = n as f64 / (ns as f64 / 1e9);
            println!("bench {name:<50} {ns:>12} ns/iter ({rate:.0} B/s)");
        }
        _ => println!("bench {name:<50} {ns:>12} ns/iter"),
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_payload() {
        let mut hits = 0u64;
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("demo", |b| b.iter(|| hits += 1));
        assert!(hits >= 3);
    }

    #[test]
    fn groups_and_inputs() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(64), &64u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
