//! Derive macros for the offline `serde` shim.
//!
//! Implemented directly against `proc_macro` (no `syn`/`quote` in this
//! offline environment). Supports the shapes the workspace uses:
//!
//! * structs with named fields (including empty ones);
//! * enums whose variants are fieldless or carry named fields.
//!
//! Generics, tuple structs, and tuple variants are rejected with a
//! compile error rather than silently mis-serialised.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum of variants, each with a (possibly empty) named-field list.
    /// `None` fields = fieldless variant.
    Enum {
        name: String,
        variants: Vec<(String, Option<Vec<String>>)>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parse `name: Type, ...` named-field bodies, returning field names.
fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            return Err(format!(
                "expected field name, got {:?}",
                tokens[i].to_string()
            ));
        };
        fields.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "expected ':' after field `{}`",
                    fields.last().unwrap()
                ))
            }
        }
        // Consume the type: tokens until a comma at angle-bracket depth 0.
        let mut depth: i64 = 0;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err("generic types are not supported by the serde shim derive".to_string());
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::Struct {
                name,
                fields: parse_named_fields(g)?,
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::Struct {
                name,
                fields: Vec::new(),
            }),
            _ => Err("tuple structs are not supported by the serde shim derive".to_string()),
        },
        "enum" => {
            let Some(TokenTree::Group(body)) = tokens.get(i) else {
                return Err("expected enum body".to_string());
            };
            let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body_tokens.len() {
                j = skip_attrs_and_vis(&body_tokens, j);
                let Some(TokenTree::Ident(vname)) = body_tokens.get(j) else {
                    if j >= body_tokens.len() {
                        break;
                    }
                    return Err(format!(
                        "expected variant name, got {:?}",
                        body_tokens[j].to_string()
                    ));
                };
                let vname = vname.to_string();
                j += 1;
                match body_tokens.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        variants.push((vname, Some(parse_named_fields(g)?)));
                        j += 1;
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        return Err(format!(
                            "tuple variant `{vname}` is not supported by the serde shim derive"
                        ));
                    }
                    _ => variants.push((vname, None)),
                }
                if let Some(TokenTree::Punct(p)) = body_tokens.get(j) {
                    if p.as_char() == ',' {
                        j += 1;
                    }
                }
            }
            Ok(Shape::Enum { name, variants })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let mut body = String::from("let mut obj = ::serde::Map::new();\n");
            for f in &fields {
                body.push_str(&format!(
                    "obj.insert({f:?}, ::serde::Serialize::serialize(&self.{f}));\n"
                ));
            }
            body.push_str("::serde::Value::Object(obj)");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, fields) in &variants {
                match fields {
                    None => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n"
                    )),
                    Some(fs) => {
                        let binds = fs.join(", ");
                        let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                        for f in fs {
                            inner.push_str(&format!(
                                "inner.insert({f:?}, ::serde::Serialize::serialize({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n{inner}\
                             let mut obj = ::serde::Map::new();\n\
                             obj.insert({v:?}, ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(obj)\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}"
            )
        }
    };
    code.parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let mut body = format!(
                "let obj = v.as_object().ok_or_else(|| \
                 ::serde::Error::new(concat!(\"expected object for \", {name:?})))?;\n"
            );
            body.push_str(&format!("Ok({name} {{\n"));
            for f in &fields {
                body.push_str(&format!(
                    "{f}: ::serde::Deserialize::deserialize(obj.get({f:?}).ok_or_else(|| \
                     ::serde::Error::new(concat!(\"missing field \", {f:?})))?)?,\n"
                ));
            }
            body.push_str("})");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
                 {{\n{body}\n}}\n}}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut struct_arms = String::new();
            for (v, fields) in &variants {
                match fields {
                    None => unit_arms.push_str(&format!("{v:?} => return Ok({name}::{v}),\n")),
                    Some(fs) => {
                        let mut inner = String::new();
                        for f in fs {
                            inner.push_str(&format!(
                                "{f}: ::serde::Deserialize::deserialize(inner.get({f:?})\
                                 .ok_or_else(|| ::serde::Error::new(concat!(\"missing field \", \
                                 {f:?})))?)?,\n"
                            ));
                        }
                        struct_arms.push_str(&format!(
                            "{v:?} => {{\n\
                             let inner = val.as_object().ok_or_else(|| \
                             ::serde::Error::new(\"expected object variant body\"))?;\n\
                             return Ok({name}::{v} {{\n{inner}}});\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
                 {{\n\
                 if let ::serde::Value::String(s) = v {{\n\
                 match s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
                 if let Some(obj) = v.as_object() {{\n\
                 if obj.len() == 1 {{\n\
                 let (tag, val) = obj.iter().next().expect(\"len 1\");\n\
                 match tag.as_str() {{\n{struct_arms}_ => {{}}\n}}\n}}\n}}\n\
                 Err(::serde::Error::new(concat!(\"no matching variant of \", {name:?})))\n\
                 }}\n}}"
            )
        }
    };
    code.parse().unwrap()
}
