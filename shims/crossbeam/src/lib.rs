//! Offline stand-in for `crossbeam` — just the scoped-thread API the
//! workspace uses, implemented over [`std::thread::scope`] (stable since
//! Rust 1.63, which post-dates the original crossbeam scoped API).

/// Scoped threads.
pub mod thread {
    /// A scope handle; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread; `join` returns the closure's value or
    /// the panic payload.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and collect its result.
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope: all threads spawned inside are joined before this
    /// returns.
    ///
    /// # Errors
    ///
    /// Mirrors crossbeam's signature. This shim requires callers to join
    /// their handles (every call site in this workspace does); a panic in
    /// an *unjoined* thread propagates out of [`std::thread::scope`]
    /// instead of being collected into the `Err` variant.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_see_borrows() {
        let counter = AtomicU64::new(0);
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let counter = &counter;
                    s.spawn(move |_| {
                        counter.fetch_add(i, Ordering::Relaxed);
                        i * 10
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 60);
        assert_eq!(counter.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let v: u64 = crate::thread::scope(|s| {
            let h = s.spawn(|inner| inner.spawn(|_| 21u64).join().unwrap() * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
