//! Offline stand-in for `rand_chacha`.
//!
//! [`ChaCha8Rng`] is a real ChaCha stream cipher with 8 rounds, a 256-bit
//! key (the seed), a 64-bit block counter, and a 64-bit stream id
//! ([`ChaCha8Rng::set_stream`]) — the (seed, stream) determinism contract
//! the workspace's Monte-Carlo layer relies on. The word stream is fixed
//! by this implementation (little-endian words of successive blocks);
//! bit-parity with crates.io `rand_chacha` is *not* promised, only
//! self-consistency.

pub use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u32; 16],
    /// Next unserved index into `buf`; 16 = buffer exhausted.
    idx: usize,
}

impl ChaCha8Rng {
    /// Select the stream id (word 14–15 of the ChaCha state). Restarts
    /// output at block 0 of the new stream.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.idx = 16;
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    #[inline]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let input = state;
        for _ in 0..4 {
            // Column round.
            Self::quarter_round(&mut state, 0, 4, 8, 12);
            Self::quarter_round(&mut state, 1, 5, 9, 13);
            Self::quarter_round(&mut state, 2, 6, 10, 14);
            Self::quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            Self::quarter_round(&mut state, 0, 5, 10, 15);
            Self::quarter_round(&mut state, 1, 6, 11, 12);
            Self::quarter_round(&mut state, 2, 7, 8, 13);
            Self::quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn streams_are_independent_and_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        a.set_stream(1);
        let first: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let mut b = ChaCha8Rng::seed_from_u64(7);
        b.set_stream(2);
        let second: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_ne!(first, second);
        let mut c = ChaCha8Rng::seed_from_u64(7);
        c.set_stream(1);
        let again: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn set_stream_resets_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let _ = a.next_u64();
        a.set_stream(5);
        let x = a.next_u64();
        let mut b = ChaCha8Rng::seed_from_u64(9);
        b.set_stream(5);
        assert_eq!(x, b.next_u64());
    }

    #[test]
    fn output_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let n = 10_000;
        let ones: u32 = (0..n).map(|_| rng.next_u64().count_ones()).sum();
        let mean_bits = f64::from(ones) / f64::from(n);
        assert!((30.0..34.0).contains(&mean_bits), "mean bits {mean_bits}");
    }
}
