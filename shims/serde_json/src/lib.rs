//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the `serde` shim's [`Value`] tree as JSON text. Only
//! the entry points the workspace uses are provided.

pub use serde::{Error, Map, Number, Value};

/// Serialize to compact JSON.
///
/// # Errors
///
/// Never fails in the shim (kept fallible for API parity).
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.serialize().render_compact())
}

/// Serialize to two-space-indented JSON.
///
/// # Errors
///
/// Never fails in the shim (kept fallible for API parity).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.serialize().render_pretty())
}

/// Parse a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = Value::parse_json(text)?;
    T::deserialize(&value)
}

/// Serialize to the generic value tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.serialize()
}

/// Reconstruct a typed value from the generic tree.
///
/// # Errors
///
/// Returns an [`Error`] on a shape mismatch.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Demo {
        name: String,
        xs: Vec<u64>,
        ratio: f64,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Plain,
        Weighted { factor: f64 },
    }

    #[test]
    fn struct_round_trip() {
        let d = Demo {
            name: "quick".into(),
            xs: vec![1, 2, 3],
            ratio: 1.5,
        };
        let s = to_string(&d).unwrap();
        assert_eq!(s, r#"{"name":"quick","xs":[1,2,3],"ratio":1.5}"#);
        assert_eq!(from_str::<Demo>(&s).unwrap(), d);
    }

    #[test]
    fn enum_round_trip() {
        let s = to_string(&Kind::Plain).unwrap();
        assert_eq!(s, r#""Plain""#);
        assert_eq!(from_str::<Kind>(&s).unwrap(), Kind::Plain);
        let w = Kind::Weighted { factor: 2.0 };
        let s = to_string(&w).unwrap();
        assert_eq!(s, r#"{"Weighted":{"factor":2.0}}"#);
        assert_eq!(from_str::<Kind>(&s).unwrap(), w);
    }

    #[test]
    fn pretty_round_trip() {
        let d = Demo {
            name: "p".into(),
            xs: vec![9],
            ratio: 0.25,
        };
        let s = to_string_pretty(&d).unwrap();
        assert!(s.contains("\n  \"name\""));
        assert_eq!(from_str::<Demo>(&s).unwrap(), d);
    }
}
