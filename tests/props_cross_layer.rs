//! Property-based tests spanning crates: invariants that must hold for
//! arbitrary inputs, not just the experiment configurations.

// Test-only code: unwraps abort the test (the right failure mode) and casts
// cover toy-sized inputs.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use cadapt::core::memory_profile::Segment;
use cadapt::prelude::*;
use cadapt::sched::{EqualShares, JobSpec, Scheduler, SchedulerConfig, WinnerTakeAll};
use proptest::prelude::*;

/// Strategy: a plausible (a, b) pair with a > b (the gap regime).
fn gap_params() -> impl Strategy<Value = AbcParams> {
    prop_oneof![
        Just(AbcParams::mm_scan()),
        Just(AbcParams::strassen()),
        Just(AbcParams::co_dp()),
        Just(AbcParams::new(16, 4, 1.0, 1).unwrap()),
        Just(AbcParams::new(5, 2, 1.0, 1).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any positive step function decomposes into squares that exactly
    /// tile it and never poke above the curve.
    #[test]
    fn inner_squares_tile_any_profile(steps in proptest::collection::vec(1u64..200, 1..300)) {
        let profile = MemoryProfile::from_steps(&steps).unwrap();
        let squares = profile.inner_squares();
        prop_assert_eq!(squares.total_time(), profile.total_time());
        let mut t: u128 = 0;
        for &b in squares.boxes() {
            for u in t..t + u128::from(b) {
                prop_assert!(profile.value_at(u).unwrap() >= b);
            }
            t += u128::from(b);
        }
    }

    /// Greedy inner squares are locally maximal: growing any square by one
    /// step would poke above the curve or past the end.
    #[test]
    fn inner_squares_are_maximal(steps in proptest::collection::vec(1u64..64, 1..120)) {
        let profile = MemoryProfile::from_steps(&steps).unwrap();
        let squares = profile.inner_squares();
        let mut t: u128 = 0;
        for &b in squares.boxes() {
            let grown = u128::from(b) + 1;
            let fits = (t..t + grown).all(|u| {
                profile.value_at(u).is_some_and(|m| u128::from(m) >= grown)
            });
            prop_assert!(!fits, "square {b} at t={t} could have grown");
            t += u128::from(b);
        }
    }

    /// Runs complete with conserved progress on arbitrary box menus, for
    /// arbitrary gap-regime parameters, in both models.
    #[test]
    fn progress_is_conserved_on_random_menus(
        params in gap_params(),
        menu in proptest::collection::vec(1u64..500, 1..8),
        simplified in proptest::bool::ANY,
    ) {
        let n = params.canonical_size(3);
        let expected = ClosedForms::for_size(params, n).unwrap().total_leaves();
        let profile = SquareProfile::new(menu).unwrap();
        let mut source = profile.cycle();
        let model = if simplified { ExecModel::Simplified } else { ExecModel::capacity() };
        let config = RunConfig { model, ..RunConfig::default() };
        let report = run_on_profile(params, n, &mut source, &config).unwrap();
        prop_assert_eq!(report.total_progress, expected);
        // Eq. 2 lower bound: completing the problem requires at least
        // n^{log_b a} worth of bounded potential.
        prop_assert!(report.bounded_potential_sum >= report.required_progress - 1e-6);
    }

    /// Rotations and shifts never change a profile's multiset, time, or
    /// potential.
    #[test]
    fn rotation_invariants(
        boxes in proptest::collection::vec(1u64..100, 1..60),
        k in 0usize..200,
    ) {
        let profile = SquareProfile::new(boxes).unwrap();
        let rho = Potential::new(8, 4);
        let rotated = profile.rotated_by_boxes(k);
        prop_assert_eq!(rotated.total_time(), profile.total_time());
        prop_assert!((rotated.total_potential(&rho) - profile.total_potential(&rho)).abs() < 1e-6);
        prop_assert_eq!(rotated.len(), profile.len());
    }

    /// The bounded potential sum of a run is monotone in the box menu:
    /// doubling every box size cannot reduce the number of leaves a prefix
    /// completes (sanity of the potential accounting under scaling).
    #[test]
    fn bigger_boxes_use_fewer_boxes(
        params in gap_params(),
        size in 1u64..64,
    ) {
        let n = params.canonical_size(3);
        let small = {
            let profile = SquareProfile::new(vec![size]).unwrap();
            let mut source = profile.cycle();
            run_on_profile(params, n, &mut source, &RunConfig::default()).unwrap()
        };
        let big = {
            let profile = SquareProfile::new(vec![2 * size]).unwrap();
            let mut source = profile.cycle();
            run_on_profile(params, n, &mut source, &RunConfig::default()).unwrap()
        };
        prop_assert!(big.boxes_used <= small.boxes_used);
    }

    /// Memory profiles built from segments and from expanded steps agree.
    #[test]
    fn segment_and_step_construction_agree(
        segs in proptest::collection::vec((1u64..40, 1u64..20), 1..30),
    ) {
        let segments: Vec<Segment> =
            segs.iter().map(|&(size, len)| Segment { size, len: u128::from(len) }).collect();
        let from_segments = MemoryProfile::from_segments(segments).unwrap();
        let steps: Vec<u64> = segs
            .iter()
            .flat_map(|&(size, len)| std::iter::repeat_n(size, len as usize))
            .collect();
        let from_steps = MemoryProfile::from_steps(&steps).unwrap();
        prop_assert_eq!(from_segments, from_steps);
    }

    /// Scheduling conserves work: every admitted job finishes with its
    /// full leaf count, for arbitrary job counts, cache sizes, and both
    /// deterministic policies.
    #[test]
    fn schedules_conserve_progress(
        jobs in 1usize..5,
        cache in 8u64..512,
        k in 2u32..4,
        wta in proptest::bool::ANY,
    ) {
        let params = AbcParams::mm_scan();
        let n = params.canonical_size(k);
        let specs = vec![JobSpec::new(params, n); jobs];
        let config = SchedulerConfig {
            total_cache: cache,
            ..SchedulerConfig::default()
        };
        let result = if wta {
            Scheduler::new(&specs, WinnerTakeAll { reign: 3 }, config)
                .unwrap()
                .run()
                .unwrap()
        } else {
            Scheduler::new(&specs, EqualShares, config)
                .unwrap()
                .run()
                .unwrap()
        };
        let expected = ClosedForms::for_size(params, n).unwrap().total_leaves();
        prop_assert!(result.jobs.iter().all(|j| j.done));
        for j in &result.jobs {
            prop_assert_eq!(j.progress, expected);
        }
        let f = result.fairness();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&f));
    }

    /// Scan-hiding preserves leaf counts and never blows the work up by
    /// more than the analytic constant, for every gap-regime preset.
    #[test]
    fn scan_hiding_invariants(params in gap_params(), k in 2u32..6) {
        let hidden = params.scan_hidden().unwrap();
        let n = params.canonical_size(k);
        let hn = hidden.canonical_size(k);
        let orig = ClosedForms::for_size(params, n).unwrap();
        let transformed = ClosedForms::for_size(hidden, hn).unwrap();
        prop_assert_eq!(orig.total_leaves(), transformed.total_leaves());
        prop_assert!(transformed.total_time() >= orig.total_time());
        // base' = base·(1 + ⌈a/(a−b)⌉) bounds the work overhead.
        let cap = 1.0 + (params.a() as f64 / (params.a() - params.b()) as f64).ceil();
        let overhead = transformed.total_time() as f64 / orig.total_time() as f64;
        prop_assert!(overhead <= cap + 1e-9, "overhead {overhead} vs cap {cap}");
    }

    /// The worst-case profile's closed forms agree with materialisation
    /// for arbitrary (a, b, min, depth) in a small grid.
    #[test]
    fn worst_case_closed_forms_match_materialisation(
        a in 2u64..6,
        b in 2u64..5,
        min_size in 1u64..4,
        depth in 0u32..5,
    ) {
        let wc = WorstCase::new(a, b, min_size, depth).unwrap();
        prop_assume!(wc.num_boxes() <= 100_000);
        let profile = wc.materialize();
        prop_assert_eq!(profile.len() as u128, wc.num_boxes());
        prop_assert_eq!(profile.total_time(), wc.total_time());
        let rho = Potential::new(a, b);
        let diff = (profile.total_potential(&rho) - wc.total_potential(&rho)).abs();
        prop_assert!(diff < 1e-6 * wc.total_potential(&rho).max(1.0));
    }
}
