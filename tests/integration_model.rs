//! Cross-crate integration: the model stack end-to-end.
//!
//! Worst-case profiles from `cadapt-profiles` driving executions from
//! `cadapt-recursion`, accounted by `cadapt-core`, across algorithms,
//! models, and layouts.

use cadapt::prelude::*;

/// Theorem 2's gap, end-to-end and exactly: ratio = log_b n + 1 on the
/// canonical adversary, in both execution models, for three different
/// (a, b) pairs.
#[test]
fn worst_case_gap_is_exact_across_algorithms_and_models() {
    for params in [
        AbcParams::mm_scan(),
        AbcParams::strassen(),
        AbcParams::co_dp(),
    ] {
        for model in [ExecModel::Simplified, ExecModel::capacity()] {
            for k in 2..=5u32 {
                let n = params.canonical_size(k);
                let worst = WorstCase::for_problem(&params, n).unwrap();
                let mut source = worst.source();
                let config = RunConfig {
                    model,
                    ..RunConfig::default()
                };
                let report = run_on_profile(params, n, &mut source, &config).unwrap();
                assert!(
                    (report.ratio() - (f64::from(k) + 1.0)).abs() < 1e-9,
                    "{params} {} k={k}: ratio {}",
                    model.label(),
                    report.ratio()
                );
                // The algorithm consumes exactly one period of the profile.
                assert_eq!(u128::from(report.boxes_used), worst.num_boxes());
            }
        }
    }
}

/// The adversary's power comes from *order*, not from its box inventory:
/// the same multiset delivered largest-first is near-optimal.
#[test]
fn sorted_profile_is_harmless() {
    let params = AbcParams::mm_scan();
    let n = params.canonical_size(6);
    let worst = WorstCase::for_problem(&params, n).unwrap();
    let mut boxes = worst.materialize().into_boxes();
    boxes.sort_unstable_by(|a, b| b.cmp(a)); // biggest first
    let profile = SquareProfile::new(boxes).unwrap();
    let mut source = profile.cycle();
    let report = run_on_profile(params, n, &mut source, &RunConfig::default()).unwrap();
    // The first box has size n and completes everything.
    assert_eq!(report.boxes_used, 1);
    assert!((report.ratio() - 1.0).abs() < 1e-9);
}

/// Reversed order (smallest-first) is also harmless: the algorithm crawls
/// the small boxes at full potential extraction, then large boxes finish
/// whole subproblems. The log gap needs interleaving synchronised with the
/// recursion.
#[test]
fn reversed_sorted_profile_is_bounded() {
    let params = AbcParams::mm_scan();
    let n = params.canonical_size(5);
    let worst = WorstCase::for_problem(&params, n).unwrap();
    let mut boxes = worst.materialize().into_boxes();
    boxes.sort_unstable(); // smallest first
    let profile = SquareProfile::new(boxes).unwrap();
    let mut source = profile.cycle();
    let report = run_on_profile(params, n, &mut source, &RunConfig::default()).unwrap();
    assert!(report.ratio() < 3.0, "ratio {}", report.ratio());
}

/// MM-Inplace on MM-Scan's adversary: bounded, and strictly better than
/// MM-Scan at every size (the §3 comparison).
#[test]
fn mm_inplace_beats_mm_scan_on_the_adversary() {
    let scan = AbcParams::mm_scan();
    let inplace = AbcParams::mm_inplace();
    let mut last_gap = 0.0;
    for k in 3..=7u32 {
        let n = scan.canonical_size(k);
        let worst = WorstCase::for_problem(&scan, n).unwrap();
        let config = RunConfig {
            model: ExecModel::capacity(),
            ..RunConfig::default()
        };
        let scan_ratio = {
            let mut source = worst.source();
            run_on_profile(scan, n, &mut source, &config)
                .unwrap()
                .ratio()
        };
        let inplace_ratio = {
            let mut source = worst.source();
            run_on_profile(inplace, n, &mut source, &config)
                .unwrap()
                .ratio()
        };
        assert!(inplace_ratio < scan_ratio, "k={k}");
        assert!(inplace_ratio < 3.0, "k={k}: inplace ratio {inplace_ratio}");
        let gap = scan_ratio - inplace_ratio;
        assert!(gap > last_gap, "the separation must widen with n");
        last_gap = gap;
    }
}

/// Scan layouts change where the adversary must put its boxes, not whether
/// it can win (except pure upfront scans — see the A2 ablation).
#[test]
fn split_layout_matched_adversary_keeps_the_gap() {
    let params = AbcParams::mm_scan().with_layout(ScanLayout::Split);
    let mut ratios = Vec::new();
    for k in 3..=6u32 {
        let n = params.canonical_size(k);
        let mut matched = MatchedWorstCase::new(params, n).unwrap();
        let report = run_on_profile(params, n, &mut matched, &RunConfig::default()).unwrap();
        ratios.push(report.ratio());
    }
    // Split scans divide each level's scan into a+1 chunks, so the matched
    // boxes are smaller and each level contributes 1/(a+1)^{e-1} ≈ 1/3 of
    // the canonical potential: the gap grows at slope ~1/3 per level.
    for w in ratios.windows(2) {
        assert!(w[1] > w[0] + 0.25, "gap must keep growing: {ratios:?}");
    }
}

/// Cursor positions and reports are deterministic: same profile, same
/// outcome, across repeated runs.
#[test]
fn runs_are_deterministic() {
    let params = AbcParams::strassen();
    let n = params.canonical_size(5);
    let worst = WorstCase::for_problem(&params, n).unwrap();
    let run = || {
        let mut source = worst.source();
        run_on_profile(params, n, &mut source, &RunConfig::default()).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

/// The ideal-cache baseline through the same machinery: a single box of
/// size n is exactly optimal for every algorithm.
#[test]
fn ideal_box_is_ratio_one_for_everyone() {
    for params in [
        AbcParams::mm_scan(),
        AbcParams::mm_inplace(),
        AbcParams::strassen(),
        AbcParams::co_dp(),
        AbcParams::gep(),
    ] {
        let n = params.canonical_size(4);
        let profile = SquareProfile::new(vec![n]).unwrap();
        let mut source = profile.extended(n);
        let report = run_on_profile(params, n, &mut source, &RunConfig::default()).unwrap();
        assert_eq!(report.boxes_used, 1, "{params}");
        assert!((report.ratio() - 1.0).abs() < 1e-9, "{params}");
    }
}

/// Progress accounting is conserved: on any profile, total progress equals
/// the leaf count when boxes are at least base-sized.
#[test]
fn progress_conservation_across_profiles() {
    let params = AbcParams::mm_scan();
    let n = params.canonical_size(5);
    let expected = ClosedForms::for_size(params, n).unwrap().total_leaves();
    for box_size in [1u64, 3, 4, 17, 64, 1000] {
        let profile = SquareProfile::new(vec![box_size]).unwrap();
        let mut source = profile.cycle();
        let report = run_on_profile(params, n, &mut source, &RunConfig::default()).unwrap();
        assert_eq!(report.total_progress, expected, "box {box_size}");
    }
}

/// A memory profile round trip: square profile → m(t) → inner squares is
/// the identity, and the adaptivity outcome is unchanged.
#[test]
fn square_profile_memory_round_trip_preserves_outcome() {
    let params = AbcParams::mm_scan();
    let n = params.canonical_size(4);
    let worst = WorstCase::for_problem(&params, n).unwrap();
    let profile = worst.materialize();
    let memory = MemoryProfile::from_square_profile(&profile);
    let squares = memory.inner_squares();
    let direct = {
        let mut source = profile.cycle();
        run_on_profile(params, n, &mut source, &RunConfig::default()).unwrap()
    };
    let via_memory = {
        let mut source = squares.cycle();
        run_on_profile(params, n, &mut source, &RunConfig::default()).unwrap()
    };
    assert_eq!(direct, via_memory);
}
