//! Cross-crate integration: real algorithm traces through the paging
//! simulator — the grounding of the abstract model in block-level reality.

use cadapt::paging::{replay_fixed, replay_memory_profile, replay_square_profile};
use cadapt::prelude::*;
use cadapt::profiles::contention::{multi_tenant, sawtooth};
use cadapt::trace::edit::{edit_distance, naive_edit_distance};
use cadapt::trace::mm::{mm_inplace, mm_scan};
use cadapt::trace::strassen::strassen;
use cadapt::trace::{matrix::naive_multiply, ZMatrix};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn matrices(side: usize) -> (ZMatrix, ZMatrix, Vec<f64>, Vec<f64>) {
    let a: Vec<f64> = (0..side * side)
        .map(|i| ((i * 3 + 1) % 7) as f64 - 3.0)
        .collect();
    let b: Vec<f64> = (0..side * side)
        .map(|i| ((i * 11 + 5) % 9) as f64 - 4.0)
        .collect();
    (
        ZMatrix::from_row_major(side, &a),
        ZMatrix::from_row_major(side, &b),
        a,
        b,
    )
}

/// All three multiplication algorithms compute the same (correct) product
/// while producing their distinct traces.
#[test]
fn all_multiplications_agree_and_are_correct() {
    let (a, b, ar, br) = matrices(16);
    let expected = naive_multiply(16, &ar, &br);
    let (c1, t1) = mm_scan(&a, &b, 4);
    let (c2, t2) = mm_inplace(&a, &b, 4);
    let (c3, t3) = strassen(&a, &b, 4);
    for c in [&c1, &c2, &c3] {
        assert_eq!(c.to_row_major(), expected);
    }
    // Distinct I/O signatures: scan > strassen leaves, inplace smallest ws.
    assert!(t1.leaves() > t3.leaves());
    assert!(t2.distinct_blocks() < t1.distinct_blocks());
    assert!(t2.distinct_blocks() < t3.distinct_blocks());
}

/// The DAM baseline behaves like the theory says: more cache, less I/O,
/// down to exactly one cold miss per block at full cache.
#[test]
fn dam_replay_respects_cache_monotonicity() {
    let (a, b, _, _) = matrices(16);
    for (_, trace) in [
        ("scan", mm_scan(&a, &b, 2).1),
        ("inpl", mm_inplace(&a, &b, 2).1),
    ] {
        let mut prev = u128::MAX;
        for m in [2u64, 8, 32, 128, 512, 1 << 20] {
            let io = replay_fixed(&trace, m).io;
            assert!(io <= prev, "I/O must not increase with cache size");
            prev = io;
        }
        assert_eq!(
            prev,
            u128::from(trace.distinct_blocks()),
            "cold-only at full cache"
        );
    }
}

/// Edit distance: the traced cache-oblivious boundary DP agrees with the
/// classic DP and replays to completion under tight square profiles.
#[test]
fn edit_distance_trace_pipeline() {
    let x = b"abacadabraabacadx";
    let y = b"abracadabraabacax";
    // Make power-of-two inputs.
    let x = &x[..16];
    let y = &y[..16];
    let (d, trace) = edit_distance(x, y, 2);
    assert_eq!(d, naive_edit_distance(x, y));
    assert_eq!(trace.leaves(), 256);
    let profile = SquareProfile::new(vec![8]).unwrap();
    let mut source = profile.cycle();
    let report = replay_square_profile(&trace, &mut source, Potential::new(4, 2));
    assert_eq!(report.total_progress, 256);
    assert!(report.total_io >= u128::from(trace.distinct_blocks()));
}

/// The abstract model's qualitative claim transfers to real traces: growing
/// boxes help MM-Inplace dramatically and MM-Scan barely.
#[test]
fn adaptivity_distinction_transfers_to_traces() {
    let (a, b, _, _) = matrices(32);
    let rho = Potential::new(8, 4);
    let io_at = |trace: &cadapt::trace::BlockTrace, b0: u64| {
        let profile = SquareProfile::new(vec![b0]).unwrap();
        let mut source = profile.cycle();
        replay_square_profile(trace, &mut source, rho).total_io
    };
    let (_, scan) = mm_scan(&a, &b, 4);
    let (_, inplace) = mm_inplace(&a, &b, 4);
    let scan_speedup = io_at(&scan, 8) as f64 / io_at(&scan, 1024) as f64;
    let inplace_speedup = io_at(&inplace, 8) as f64 / io_at(&inplace, 1024) as f64;
    assert!(
        inplace_speedup > 2.0 * scan_speedup,
        "inplace {inplace_speedup} vs scan {scan_speedup}"
    );
}

/// Square decomposition of a real contention profile changes trace I/O by
/// at most a small constant factor (the §2 w.l.o.g., at trace level).
#[test]
fn inner_squares_preserve_trace_io_up_to_constants() {
    let (a, b, _, _) = matrices(16);
    let (_, trace) = mm_inplace(&a, &b, 2);
    let ws = trace.distinct_blocks();
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    for profile in [
        sawtooth(ws / 4 + 1, 2 * ws, u128::from(ws), 400 * u128::from(ws)),
        multi_tenant(
            2 * ws,
            6,
            u128::from(ws / 2 + 1),
            0.4,
            400 * u128::from(ws),
            &mut rng,
        ),
    ] {
        let direct = replay_memory_profile(&trace, &profile);
        assert!(direct.completed, "profile long enough by construction");
        let squares = profile.inner_squares();
        let mut source = squares.cycle();
        let via_squares = replay_square_profile(&trace, &mut source, Potential::new(8, 4));
        let factor = via_squares.total_io as f64 / direct.io as f64;
        assert!(
            (0.2..=5.0).contains(&factor),
            "square approximation factor {factor}"
        );
    }
}

/// Block size matters the way it should: bigger blocks, smaller working
/// set, fewer I/Os at full cache.
#[test]
fn block_size_scales_working_set() {
    let (a, b, _, _) = matrices(16);
    let (_, t1) = mm_inplace(&a, &b, 1);
    let (_, t4) = mm_inplace(&a, &b, 4);
    let (_, t16) = mm_inplace(&a, &b, 16);
    assert!(t1.distinct_blocks() > t4.distinct_blocks());
    assert!(t4.distinct_blocks() > t16.distinct_blocks());
    // Exactly 4x fewer blocks at 4x block size for the aligned matrices.
    assert_eq!(t1.distinct_blocks(), 4 * t4.distinct_blocks());
}

/// Replays are pure functions of (trace, profile): repeated replays agree.
#[test]
fn replay_is_deterministic() {
    let (a, b, _, _) = matrices(16);
    let (_, trace) = mm_scan(&a, &b, 4);
    let run = || {
        let profile = SquareProfile::new(vec![64, 16, 256]).unwrap();
        let mut source = profile.cycle();
        replay_square_profile(&trace, &mut source, Potential::new(8, 4))
    };
    assert_eq!(run(), run());
}
