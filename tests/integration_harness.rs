//! End-to-end test of the experiment engine: registry → instrumented run →
//! schema-versioned record → golden comparison, against the records
//! committed under `tests/golden/`.

use cadapt::bench::harness::{self, RunRecord, SCHEMA_VERSION};
use cadapt::bench::Scale;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn load_golden(id: &str) -> RunRecord {
    let path = golden_dir().join(format!("{id}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    RunRecord::from_json(&text).unwrap_or_else(|e| panic!("bad golden {id}: {e}"))
}

#[test]
fn every_experiment_has_a_well_formed_golden() {
    for exp in harness::registry() {
        let golden = load_golden(exp.id());
        assert_eq!(golden.schema_version, SCHEMA_VERSION, "{}", exp.id());
        assert_eq!(golden.experiment, exp.id());
        assert_eq!(golden.title, exp.title());
        assert_eq!(golden.scale, "quick", "goldens are quick-tier records");
        assert_eq!(golden.deterministic, exp.deterministic(), "{}", exp.id());
        assert!(!golden.metrics.is_empty(), "{} has no metrics", exp.id());
        assert!(!golden.tables.is_empty(), "{} has no tables", exp.id());
        assert!(
            !golden.counters.is_zero(),
            "{} recorded no execution counters",
            exp.id()
        );
    }
}

#[test]
fn e1_rerun_matches_its_committed_golden() {
    let exp = harness::find("e1").expect("e1 registered");
    let golden = load_golden("e1");
    let fresh = harness::run_record(exp, Scale::Quick).expect("experiment runs");
    let report = harness::compare(&golden, &fresh);
    assert!(
        report.passed(),
        "e1 drifted from golden: {:#?}",
        report.failures
    );
}

#[test]
fn e11_rerun_matches_its_committed_golden() {
    let exp = harness::find("e11").expect("e11 registered");
    let golden = load_golden("e11");
    let fresh = harness::run_record(exp, Scale::Quick).expect("experiment runs");
    let report = harness::compare(&golden, &fresh);
    assert!(
        report.passed(),
        "e11 drifted from golden: {:#?}",
        report.failures
    );
}

#[test]
fn tampering_with_a_golden_is_detected() {
    let exp = harness::find("e11").expect("e11 registered");
    let mut golden = load_golden("e11");
    let fresh = harness::run_record(exp, Scale::Quick).expect("experiment runs");
    golden.metrics[0].value += 0.5;
    assert!(!harness::compare(&golden, &fresh).passed());
}
