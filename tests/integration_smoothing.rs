//! Cross-crate integration: Theorem 1 (smoothing) and the §4 robustness
//! results, end-to-end through distributions → Monte Carlo → growth
//! classification.

// Exact float equality is deliberate: outputs must be bit-identical.
#![allow(clippy::float_cmp)]

use cadapt::analysis::montecarlo::trial_rng;
use cadapt::prelude::*;
use cadapt::profiles::dist::PermutationSource;
use cadapt::profiles::perturb::{random_cyclic_shift, SizePerturbedSource, UniformMultiplier};

fn mean_ratio_series<F>(
    params: AbcParams,
    ks: std::ops::RangeInclusive<u32>,
    mut run_one: F,
) -> Vec<(f64, f64)>
where
    F: FnMut(u64, u64) -> f64, // (n, trial) -> ratio
{
    let b = params.b() as f64;
    ks.map(|k| {
        let n = params.canonical_size(k);
        let mut stats = Stats::new();
        for trial in 0..16u64 {
            stats.push(run_one(n, trial));
        }
        ((n as f64).ln() / b.ln(), stats.mean)
    })
    .collect()
}

/// Theorem 1 across four qualitatively different distributions and two
/// algorithms: the expected ratio never classifies as logarithmic and
/// stays under a small constant.
#[test]
fn iid_smoothing_is_constant_for_diverse_sigmas() {
    for params in [AbcParams::mm_scan(), AbcParams::strassen()] {
        let n_max = params.canonical_size(6);
        let dists: Vec<Box<dyn BoxDist>> = vec![
            Box::new(UniformBoxes::new(1, n_max)),
            Box::new(PowerOfB::new(params.b(), 0, 6)),
            Box::new(PowerLawBoxes::new(params.b(), 0, 6, 1.5)),
            Box::new(LogUniform::new(1, n_max)),
        ];
        for dist in &dists {
            let mut points = Vec::new();
            for k in 2..=6u32 {
                let n = params.canonical_size(k);
                // 64 trials per point: the increment-trend rule in
                // classify_growth sits near its threshold for converging
                // series, and 24 trials leaves enough noise to flip it.
                let config = McConfig {
                    trials: 64,
                    seed: 11,
                    ..McConfig::default()
                };
                let summary = monte_carlo_ratio(params, n, &config, |rng| {
                    cadapt::profiles::dist::DynDistSource::new(dist.as_ref(), rng)
                })
                .unwrap();
                points.push((f64::from(k), summary.ratio.mean));
            }
            let (class, fit) = classify_growth(&points);
            assert_ne!(
                class,
                GrowthClass::Logarithmic,
                "{params} / {}: slope {}",
                dist.label(),
                fit.slope
            );
            let max = points.iter().map(|p| p.1).fold(0.0, f64::max);
            assert!(max < 8.0, "{params} / {}: max {max}", dist.label());
        }
    }
}

/// The headline in one assertion: at n = 4^7, the canonical order pays 8x,
/// the shuffled multiset pays ~2x.
#[test]
fn shuffling_the_adversary_beats_the_adversary() {
    let params = AbcParams::mm_scan();
    let n = params.canonical_size(7);
    let worst = WorstCase::for_problem(&params, n).unwrap();
    let canonical = {
        let mut source = worst.source();
        run_on_profile(params, n, &mut source, &RunConfig::default())
            .unwrap()
            .ratio()
    };
    let dist = EmpiricalMultiset::from_counts(&worst.box_multiset(), "shuffled");
    let config = McConfig {
        trials: 32,
        seed: 7,
        ..McConfig::default()
    };
    let shuffled =
        monte_carlo_ratio(params, n, &config, |rng| DistSource::new(dist.clone(), rng)).unwrap();
    assert!((canonical - 8.0).abs() < 1e-9);
    assert!(
        shuffled.ratio.mean < 3.0,
        "shuffled mean {}",
        shuffled.ratio.mean
    );
    assert!(canonical > 2.5 * shuffled.ratio.mean);
}

/// Without-replacement permutation behaves like i.i.d. resampling (the A1
/// ablation, asserted end-to-end).
#[test]
fn permutation_matches_iid_within_noise() {
    let params = AbcParams::mm_scan();
    let n = params.canonical_size(6);
    let worst = WorstCase::for_problem(&params, n).unwrap();
    let profile = worst.materialize();
    let mut perm_stats = Stats::new();
    for trial in 0..24u64 {
        let mut source = PermutationSource::new(&profile, trial_rng(21, trial));
        let report = run_on_profile(params, n, &mut source, &RunConfig::default()).unwrap();
        perm_stats.push(report.ratio());
    }
    let dist = EmpiricalMultiset::from_counts(&worst.box_multiset(), "iid");
    let config = McConfig {
        trials: 24,
        seed: 22,
        ..McConfig::default()
    };
    let iid =
        monte_carlo_ratio(params, n, &config, |rng| DistSource::new(dist.clone(), rng)).unwrap();
    let diff = (perm_stats.mean - iid.ratio.mean).abs();
    let tolerance = 4.0 * (perm_stats.ci95() + iid.ratio.ci95()) + 0.25;
    assert!(
        diff < tolerance,
        "permutation {} vs iid {}",
        perm_stats.mean,
        iid.ratio.mean
    );
}

/// §4 robustness: U[0, t] size noise leaves the profile worst-case — the
/// mean ratio keeps growing with n.
#[test]
fn size_noise_does_not_rescue() {
    let params = AbcParams::mm_scan();
    let points = mean_ratio_series(params, 3..=6, |n, trial| {
        let worst = WorstCase::for_problem(&params, n).unwrap();
        let mut source = SizePerturbedSource::new(
            worst.source(),
            UniformMultiplier { t: 2.0 },
            trial_rng(31, trial),
        );
        run_on_profile(params, n, &mut source, &RunConfig::default())
            .unwrap()
            .ratio()
    });
    for w in points.windows(2) {
        assert!(w[1].1 > w[0].1 + 0.3, "growth stalled: {points:?}");
    }
}

/// §4 robustness: random cyclic start shifts leave the profile worst-case
/// in expectation.
#[test]
fn start_shift_does_not_rescue() {
    let params = AbcParams::mm_scan();
    let points = mean_ratio_series(params, 3..=6, |n, trial| {
        let worst = WorstCase::for_problem(&params, n).unwrap();
        let profile = worst.materialize();
        let mut rng = trial_rng(41, trial);
        let shifted = random_cyclic_shift(&profile, &mut rng);
        let mut source = shifted.cycle();
        run_on_profile(params, n, &mut source, &RunConfig::default())
            .unwrap()
            .ratio()
    });
    // With 16 trials the series is noisy; assert sustained growth
    // directly: total rise of at least half the canonical slope.
    let rise = points.last().unwrap().1 - points[0].1;
    let span = points.last().unwrap().0 - points[0].0;
    assert!(
        rise / span > 0.4,
        "start shifts should stay adversarial: {points:?}"
    );
}

/// Monte-Carlo reproducibility across the public API: identical seeds give
/// identical summaries; different seeds do not.
#[test]
fn monte_carlo_is_seed_deterministic() {
    let params = AbcParams::co_dp();
    let n = params.canonical_size(8);
    let run = |seed| {
        let config = McConfig {
            trials: 16,
            seed,
            ..McConfig::default()
        };
        monte_carlo_ratio(params, n, &config, |rng| {
            DistSource::new(PowerOfB::new(2, 0, 8), rng)
        })
        .unwrap()
    };
    assert_eq!(run(5).ratio, run(5).ratio);
    assert_ne!(run(5).ratio.mean, run(6).ratio.mean);
}
