//! The verification layer for compiled trace replay: on the real corpus
//! algorithms — recursive matrix multiply (both layouts), Strassen, edit
//! distance, and the vEB-layout static search — the bytecode pipeline in
//! `cadapt_trace::bytecode` is a *lossless, canonical, pinned* encoding.
//!
//! Three contracts are enforced here, cross-crate, on genuine
//! cache-oblivious access patterns (the proptest suites in
//! `crates/trace/tests/props_bytecode.rs` and
//! `crates/paging/tests/props_stream_replay.rs` cover adversarial
//! generated streams):
//!
//! 1. **Lossless** — the decoder VM streams back exactly the recorded
//!    event sequence, and every replay backend returns identical results
//!    fed from either representation.
//! 2. **Canonical** — structural emission (kernel → compiler sink, no
//!    `Vec<TraceEvent>` ever built) produces byte-identical programs to
//!    recompiling the recorded trace, because encoding is a pure function
//!    of the event stream.
//! 3. **Pinned** — the corpus programs' CRC-32s and byte lengths are
//!    constants below. The bytecode format is a serialisation format:
//!    changing an opcode, a varint width, or the loop-detection window
//!    changes these bytes, and that must be a deliberate, reviewed act.
//!    If an *intentional* format change lands, re-pin from the values in
//!    the failure message.

use cadapt::core::checksum::crc32;
use cadapt::core::{MemoryProfile, SquareProfile};
use cadapt::paging::{replay_fixed, replay_memory_profile, replay_square_profile_history};
use cadapt::trace::{compile, compiled, summarized, TraceAlgo};
use std::path::Path;

const SIDE: usize = 16;
const BLOCK_WORDS: u64 = 4;

/// `(algorithm, CRC-32, byte length, accesses, event count)` of every
/// corpus program at side 16, block size 4 words. These pin the bytecode
/// *format*: any change to opcodes, delta encoding, varint layout, or the
/// encoder's loop-detection heuristics shows up here first.
const PINNED_PROGRAMS: &[(TraceAlgo, u32, usize, u64, u128)] = &[
    (TraceAlgo::MmScan, 0xDCB6_D515, 72157, 31488, 35584),
    (TraceAlgo::MmInplace, 0xB8A7_3A5C, 9980, 16384, 20480),
    (TraceAlgo::Strassen, 0x08AC_2168, 77894, 40093, 42494),
    (TraceAlgo::EditDistance, 0xFDF2_ABF7, 7842, 3712, 3968),
    (TraceAlgo::VebSearch, 0x3620_233E, 4752, 2164, 2420),
];

#[test]
fn corpus_bytecode_is_pinned() {
    for &(algo, pinned_crc, pinned_len, pinned_accesses, pinned_events) in PINNED_PROGRAMS {
        let program = compiled(algo, SIDE, BLOCK_WORDS);
        assert_eq!(
            (
                program.crc32(),
                program.byte_len(),
                program.accesses(),
                program.event_count()
            ),
            (pinned_crc, pinned_len, pinned_accesses, pinned_events),
            "{}: compiled bytecode changed — the format is pinned; re-pin as \
             ({:#010X}, {}, {}, {}) only for a deliberate format change",
            algo.label(),
            program.crc32(),
            program.byte_len(),
            program.accesses(),
            program.event_count()
        );
        // The CRC the store embeds is over exactly the program bytes.
        assert_eq!(program.crc32(), crc32(program.bytes()));
    }
}

#[test]
fn decoded_streams_equal_recorded_traces() {
    for algo in TraceAlgo::EXTENDED {
        let trace = algo.trace(SIDE, BLOCK_WORDS);
        let program = compiled(algo, SIDE, BLOCK_WORDS);
        assert!(
            program.events().eq(trace.events().iter().copied()),
            "{}: decoded stream diverged from the recorded event vector",
            algo.label()
        );
        assert_eq!(program.accesses(), trace.accesses());
        assert_eq!(program.leaves(), trace.leaves());
        assert_eq!(program.distinct_blocks(), trace.distinct_blocks());
        // The decoder advertises an exact length, so consumers can
        // preallocate without trusting the stream.
        let (lo, hi) = program.events().size_hint();
        assert_eq!(Some(lo), hi);
        assert_eq!(lo as u128, program.event_count());
    }
}

#[test]
fn structural_emission_equals_recompilation() {
    // Direct kernel → compiler emission never materialises the event
    // vector; compiling the recorded trace does. Both must produce the
    // same bytes, or the memoized corpus store would hand out programs
    // that disagree with the traces they claim to represent.
    for algo in TraceAlgo::EXTENDED {
        let recorded = algo.trace(SIDE, BLOCK_WORDS);
        assert_eq!(
            *compiled(algo, SIDE, BLOCK_WORDS),
            compile(&recorded),
            "{}: structural emission diverged from recompilation",
            algo.label()
        );
    }
}

#[test]
fn replay_backends_are_representation_blind_on_the_corpus() {
    let tooth: Vec<u64> = (1..=24).chain((1..=24).rev()).collect();
    for algo in TraceAlgo::EXTENDED {
        let trace = algo.trace(SIDE, BLOCK_WORDS);
        let program = compiled(algo, SIDE, BLOCK_WORDS);
        let rho = algo.potential();

        for m in [0u64, 1, 3, 16, 257, 1 << 20] {
            assert_eq!(
                replay_fixed(&trace, m),
                replay_fixed(&*program, m),
                "{} fixed M={m}",
                algo.label()
            );
        }
        for menu in [vec![1u64], vec![16], vec![4, 1, 64]] {
            let profile = SquareProfile::new(menu.clone()).expect("positive boxes");
            assert_eq!(
                replay_square_profile_history(&trace, &mut profile.cycle(), rho),
                replay_square_profile_history(&*program, &mut profile.cycle(), rho),
                "{} menu {menu:?}",
                algo.label()
            );
        }
        let profile = MemoryProfile::from_steps(&tooth).expect("positive steps");
        assert_eq!(
            replay_memory_profile(&trace, &profile),
            replay_memory_profile(&*program, &profile),
            "{} sawtooth m(t)",
            algo.label()
        );
    }
}

#[test]
fn summaries_built_from_bytecode_match_the_recorded_trace() {
    // The analytic backend's summaries are now built by streaming decode;
    // the corpus hands out programs, not vectors. Both constructions must
    // agree exactly — stack distances are order-sensitive, so this is a
    // strong streaming-fidelity check.
    for algo in TraceAlgo::EXTENDED {
        let trace = algo.trace(SIDE, BLOCK_WORDS);
        let st = summarized(algo, SIDE, BLOCK_WORDS);
        assert_eq!(
            *st.summary(),
            cadapt::trace::TraceSummary::new(&trace),
            "{}: summary from bytecode diverged from summary from the vector",
            algo.label()
        );
    }
}

/// `(file, CRC-32, length)` of E15's golden record. Pinned separately
/// from the pre-analytic goldens (see
/// `integration_analytic_equivalence.rs`) because this one is *expected*
/// to be regenerated when the bytecode corpus grows; re-pin with:
/// `python3 -c "import zlib; d=open(F,'rb').read();
/// print(hex(zlib.crc32(d)), len(d))"`.
const PINNED_E15_GOLDEN: (&str, u32, u64) = ("e15.json", 0x3059_79DD, 3707);

#[test]
fn e15_golden_is_pinned() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden");
    let (name, pinned_crc, pinned_len) = PINNED_E15_GOLDEN;
    let bytes =
        std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("golden {name} must exist: {e}"));
    assert_eq!(
        (crc32(&bytes), bytes.len() as u64),
        (pinned_crc, pinned_len),
        "golden {name} changed on disk — re-pin only after an intentional regeneration"
    );
}
