//! Ablation A3's model-equivalence claim, sharpened into the two exact
//! statements that actually hold of the cursor semantics.
//!
//! **Identity.** On a *steady* stream of canonical boxes — every box the
//! same power-of-b size, the square-profile shape Theorem 1 reasons
//! about — a c = 1 instance executes identically under the §4 simplified
//! caching model and the block-capacity charging model with cost factor 1.
//! With c = 1 every scan chunk under the `End`/`Start` layouts has b-adic
//! length, so a box of size b^j always lands on a b^j-aligned boundary:
//! each box either completes a fresh subproblem of exactly its own size
//! (costing b^j under either semantics) or advances an enclosing scan by
//! exactly b^j unit-cost accesses. Neither model ever sees a partially
//! executed subproblem it could finish at a discount, and the two cursors
//! stay in lock-step from the first box to the last.
//!
//! **Dominance.** On *arbitrary* canonical mixes the strict identity is
//! too strong — and this test deliberately does not claim it. When a box
//! boundary interrupts a subproblem, the capacity model later finishes
//! the remainder for its true cost and spends the leftover budget going
//! further, while the simplified model's one-action-per-box rule charges
//! the full subproblem size and stops; fractional c (non-b-adic scan
//! lengths) and the `Split` layout (scan chunks of length scan/(a+1))
//! manufacture such interruptions constantly. What survives is a
//! No-Catch-up-style pointwise bound: after every box the capacity
//! cursor's serial position is at least the simplified cursor's, and it
//! completes in no more boxes. A3's statistical agreement
//! (`cadapt_bench::experiments::ablations`) sits between the two: the
//! models agree exactly on aligned traffic and within constants on
//! everything else.
//!
//! **Third backend.** Since the analytic cache model landed there are
//! three ways to cost an execution: the simplified cursor model, the
//! capacity model driven by the LRU *simulator*, and the capacity model
//! answered *analytically* from a trace summary. The first two relate by
//! the identity/dominance statements above; the last two are **exactly
//! equal** — same per-box history, same report — which the three-way
//! tests at the bottom pin on real corpus traces, closing the triangle:
//! whatever A3 establishes about simplified-vs-capacity transfers to the
//! analytic backend verbatim.

use cadapt::core::SquareProfile;
use cadapt::paging::CacheBackend;
use cadapt::recursion::{AbcParams, ClosedForms, ExecCursor, ExecModel, ScanLayout};
use cadapt::trace::{summarized, TraceAlgo};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Drive both models over a steady stream of canonical boxes of size
/// `x`, asserting lock-step equality of outcome and cursor position
/// after every box.
fn assert_lock_step_steady(params: AbcParams, n: u64, x: u64) {
    let cf = ClosedForms::for_size(params, n).expect("canonical size");
    let mut simplified = ExecCursor::new(cf.clone());
    let mut capacity = ExecCursor::new(cf);
    let simplified_model = ExecModel::Simplified;
    let capacity_model = ExecModel::Capacity { cost_factor: 1 };

    let mut boxes = 0u64;
    while !simplified.is_done() {
        assert!(
            boxes < 4_000_000,
            "{params:?} n={n}: execution did not finish"
        );
        let out_s = simplified_model.advance(&mut simplified, x);
        let out_c = capacity_model.advance(&mut capacity, x);
        assert_eq!(
            out_s, out_c,
            "{params:?} n={n}: box {boxes} (size {x}) diverged"
        );
        assert_eq!(
            simplified.fingerprint(),
            capacity.fingerprint(),
            "{params:?} n={n}: cursors at different positions after box {boxes} (size {x})"
        );
        assert_eq!(simplified.serial_position(), capacity.serial_position());
        boxes += 1;
    }
    assert!(
        capacity.is_done(),
        "capacity cursor must finish in lock-step"
    );
}

#[test]
fn canonical_algorithms_are_lock_step_on_steady_boxes() {
    // MM-Scan and the (3, 2, 1)-regular gap algorithm are c = 1, so the
    // exact identity applies. MM-Inplace (c = 0) has unit-length scan
    // chunks — a steady box of size b^j > 1 interrupts them, which puts
    // it in the dominance regime covered below instead.
    for (params, k) in [
        (AbcParams::mm_scan(), 5),
        (AbcParams::new(3, 2, 1.0, 1).unwrap(), 8),
    ] {
        let n = params.canonical_size(k);
        for j in 0..=k {
            assert_lock_step_steady(params, n, params.canonical_size(j));
        }
    }
}

#[test]
fn randomized_c1_instances_are_lock_step_on_steady_boxes() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA3_5EED);
    for _ in 0..40 {
        let b = rng.gen_range(2u64..=4);
        let a = rng.gen_range(1u64..=b * b);
        let depth = rng.gen_range(2u32..=4);
        let layout = if rng.gen_range(0..2) == 0 {
            ScanLayout::End
        } else {
            ScanLayout::Start
        };
        let params = AbcParams::new(a, b, 1.0, 1)
            .expect("valid parameters")
            .with_layout(layout);
        let n = params.canonical_size(depth);
        for j in 0..=depth {
            assert_lock_step_steady(params, n, params.canonical_size(j));
        }
    }
}

#[test]
fn capacity_never_falls_behind_on_arbitrary_canonical_mixes() {
    // Full (a, b, c) randomization — fractional c and all three scan
    // layouts included — with a box mix biased toward tiny boxes so the
    // cursors are interrupted mid-subproblem as often as possible.
    let mut rng = ChaCha8Rng::seed_from_u64(0xA300);
    for trial in 0..60u32 {
        let b = rng.gen_range(2u64..=4);
        let a = rng.gen_range(1u64..=b * b);
        let c = f64::from(rng.gen_range(0u32..=4)) / 4.0;
        let depth = rng.gen_range(2u32..=4);
        let layout = match rng.gen_range(0..3) {
            0 => ScanLayout::End,
            1 => ScanLayout::Start,
            _ => ScanLayout::Split,
        };
        let params = AbcParams::new(a, b, c, 1)
            .expect("valid parameters")
            .with_layout(layout);
        let n = params.canonical_size(depth);
        let cf = ClosedForms::for_size(params, n).expect("canonical size");
        let mut simplified = ExecCursor::new(cf.clone());
        let mut capacity = ExecCursor::new(cf);
        let mut boxes = 0u64;
        while !simplified.is_done() {
            assert!(boxes < 4_000_000, "trial {trial}: did not finish");
            let k = if rng.gen_range(0..10u32) < 7 {
                rng.gen_range(0..=1u32).min(depth)
            } else {
                rng.gen_range(0..=depth)
            };
            let x = params.canonical_size(k);
            ExecModel::Simplified.advance(&mut simplified, x);
            ExecModel::Capacity { cost_factor: 1 }.advance(&mut capacity, x);
            boxes += 1;
            assert!(
                capacity.serial_position() >= simplified.serial_position(),
                "trial {trial} ({params:?}): capacity fell behind after box {boxes} (size {x}): \
                 {} < {}",
                capacity.serial_position(),
                simplified.serial_position()
            );
        }
        assert!(
            capacity.is_done(),
            "trial {trial} ({params:?}): capacity took more boxes than simplified"
        );
    }
}

#[test]
fn augmented_capacity_is_not_lock_step() {
    // Sanity check that the identity is really about cost factor 1: with
    // cost factor 2 a box of size b^k can no longer complete a fresh
    // subproblem of its own size, so steady-box trajectories must diverge.
    let params = AbcParams::mm_scan();
    let n = params.canonical_size(4);
    let cf = ClosedForms::for_size(params, n).unwrap();
    let mut simplified = ExecCursor::new(cf.clone());
    let mut capacity = ExecCursor::new(cf);
    let mut diverged = false;
    let x = params.canonical_size(1);
    for _ in 0..10_000 {
        if simplified.is_done() || capacity.is_done() {
            break;
        }
        let out_s = ExecModel::Simplified.advance(&mut simplified, x);
        let out_c = ExecModel::Capacity { cost_factor: 2 }.advance(&mut capacity, x);
        if out_s != out_c || simplified.fingerprint() != capacity.fingerprint() {
            diverged = true;
            break;
        }
    }
    assert!(
        diverged,
        "cost factor 2 should break the lock-step identity"
    );
}

/// The steady-box menus the identity tests above use, replayed at the
/// trace level: capacity-simulated and capacity-analytic must be in
/// strict lock-step — per-box history included — on every corpus
/// algorithm, completing the three-way equivalence chain.
#[test]
fn capacity_simulated_and_capacity_analytic_are_lock_step() {
    for algo in TraceAlgo::ALL {
        let st = summarized(algo, 16, 4);
        let rho = algo.potential();
        for x in [1u64, 4, 16, 64, 256] {
            let profile = SquareProfile::new(vec![x]).expect("positive box");
            let (sim_report, sim_boxes) =
                CacheBackend::Simulated.square_profile_history(&st, &mut profile.cycle(), rho);
            let (ana_report, ana_boxes) =
                CacheBackend::Analytic.square_profile_history(&st, &mut profile.cycle(), rho);
            assert_eq!(
                sim_boxes,
                ana_boxes,
                "{} steady x={x}: backends diverged per box",
                algo.label()
            );
            assert_eq!(sim_report, ana_report);
        }
    }
}

/// Dominance transfers to the analytic backend: on mixed menus the
/// capacity-analytic replay tracks the simulator exactly (not merely
/// pointwise-at-least, as simplified-vs-capacity does), so the weaker
/// No-Catch-up bound holds of it trivially. Randomized menus mirror the
/// arbitrary-mix test above.
#[test]
fn analytic_backend_obeys_the_three_way_ordering_on_random_menus() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA3_3BAC);
    for _ in 0..20 {
        let algo = TraceAlgo::ALL[rng.gen_range(0..TraceAlgo::ALL.len())];
        let st = summarized(algo, 16, 4);
        let rho = algo.potential();
        let len = rng.gen_range(1..=5);
        let menu: Vec<u64> = (0..len).map(|_| rng.gen_range(1..=64)).collect();
        let profile = SquareProfile::new(menu.clone()).expect("positive boxes");
        let (sim, sim_boxes) =
            CacheBackend::Simulated.square_profile_history(&st, &mut profile.cycle(), rho);
        let (ana, ana_boxes) =
            CacheBackend::Analytic.square_profile_history(&st, &mut profile.cycle(), rho);
        assert_eq!(sim_boxes, ana_boxes, "{} menu {menu:?}", algo.label());
        assert_eq!(sim, ana);
        // And the DAM lower bound: a box-cleared capacity replay can
        // never beat a fixed cache as large as its largest box.
        let fixed = CacheBackend::Analytic.fixed(&st, sim.max_box);
        assert!(sim.total_io >= fixed.io, "{} menu {menu:?}", algo.label());
    }
}
