//! The headline verification layer for the analytic cache model: on the
//! *real* algorithm traces of the corpus — not just generated streams —
//! the closed-form model in `cadapt_paging::analytic` equals the exact
//! LRU simulator box for box, capacity for capacity, profile for profile.
//!
//! Together with the proptest suite in
//! `crates/paging/tests/props_analytic_equivalence.rs` (arbitrary
//! generated traces) this pins the equivalence contract from both ends:
//! adversarial small inputs there, genuine cache-oblivious access
//! patterns (recursive matrix multiply, Strassen, edit distance) here.
//!
//! The last test guards the other half of the PR's bargain: introducing
//! the analytic backend must not perturb a single byte of the existing
//! simulator goldens. Their CRC-32s (the same IEEE checksum the
//! experiment store embeds in its artifacts) are pinned as constants; if
//! a golden legitimately changes, the failure message says how to re-pin.

use cadapt::core::checksum::crc32;
use cadapt::core::{MemoryProfile, SquareProfile};
use cadapt::paging::{
    analytic_fixed, analytic_memory_profile, analytic_square_profile_history, replay_fixed,
    replay_memory_profile, replay_square_profile_history,
};
use cadapt::trace::{summarized, TraceAlgo};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::Path;

const SIDE: usize = 16;
const BLOCK_WORDS: u64 = 4;

/// Assert full lock-step equality of the two backends on one trace and
/// one box menu: identical per-box history and identical report.
fn assert_lock_step(algo: TraceAlgo, menu: Vec<u64>) {
    let st = summarized(algo, SIDE, BLOCK_WORDS);
    let rho = algo.potential();
    let profile = SquareProfile::new(menu.clone()).expect("positive boxes");
    let (sim_report, sim_boxes) =
        replay_square_profile_history(st.program(), &mut profile.cycle(), rho);
    let (ana_report, ana_boxes) =
        analytic_square_profile_history(st.summary(), &mut profile.cycle(), rho);
    assert_eq!(
        sim_boxes,
        ana_boxes,
        "{} with menu {menu:?}: per-box history diverged",
        algo.label()
    );
    assert_eq!(
        sim_report,
        ana_report,
        "{} with menu {menu:?}: report diverged",
        algo.label()
    );
}

#[test]
fn corpus_traces_are_lock_step_on_canonical_menus() {
    for algo in TraceAlgo::ALL {
        assert_lock_step(algo, vec![1]);
        assert_lock_step(algo, vec![16]);
        assert_lock_step(algo, vec![256]);
        assert_lock_step(algo, vec![4, 1, 16]);
        assert_lock_step(algo, vec![1, 2, 4, 8, 16, 32, 64]);
    }
}

#[test]
fn corpus_traces_are_lock_step_on_random_menus() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xE14_B0CE5);
    for algo in TraceAlgo::ALL {
        for _ in 0..10 {
            let len = rng.gen_range(1..=6);
            let menu: Vec<u64> = (0..len).map(|_| rng.gen_range(1..=96)).collect();
            assert_lock_step(algo, menu);
        }
    }
}

#[test]
fn fixed_capacities_match_and_obey_the_dominance_chain() {
    for algo in TraceAlgo::ALL {
        let st = summarized(algo, SIDE, BLOCK_WORDS);
        let rho = algo.potential();
        let mut previous: Option<u128> = None;
        for capacity in (0u64..=32).chain([128, 1024, 1 << 30]) {
            let ana = analytic_fixed(st.summary(), capacity);
            let sim = replay_fixed(st.program(), capacity);
            assert_eq!(ana, sim, "{} at capacity {capacity}", algo.label());
            // Fixed faults are monotone non-increasing in capacity
            // (LRU's inclusion property), and never drop below the
            // working-set size (every distinct block faults once).
            assert!(ana.io >= u128::from(st.summary().distinct_blocks()));
            if let Some(prev) = previous {
                assert!(
                    ana.io <= prev,
                    "{}: faults rose at capacity {capacity}",
                    algo.label()
                );
            }
            previous = Some(ana.io);

            // A box-local hit implies a fixed-LRU hit at the same
            // capacity, so box-cleared replay can only cost more.
            if capacity > 0 {
                let profile = SquareProfile::new(vec![capacity]).expect("positive box");
                let (square, _) =
                    analytic_square_profile_history(st.summary(), &mut profile.cycle(), rho);
                assert!(
                    square.total_io >= ana.io,
                    "{}: square replay at x={capacity} undercut the fixed cache",
                    algo.label()
                );
            }
        }
    }
}

#[test]
fn sawtooth_memory_profiles_match_including_truncation() {
    // A sawtooth m(t) — ramp up, cliff down — exercises both the k-growth
    // and the k-shrink paths of the analytic inclusion argument.
    let tooth: Vec<u64> = (1..=32).chain((1..=32).rev()).collect();
    for algo in TraceAlgo::ALL {
        let st = summarized(algo, SIDE, BLOCK_WORDS);
        // Truncated: one tooth only — the profile runs out mid-trace.
        let short = MemoryProfile::from_steps(&tooth).expect("positive steps");
        let ana = analytic_memory_profile(st.summary(), &short);
        let sim = replay_memory_profile(st.program(), &short);
        assert_eq!(ana, sim, "{} truncated sawtooth", algo.label());
        assert!(
            !ana.completed,
            "{}: one tooth cannot complete",
            algo.label()
        );

        // Completed: repeat the tooth until the trace fits.
        let mut long = Vec::new();
        while (long.len() as u128) < 2 * u128::from(st.summary().accesses()) {
            long.extend_from_slice(&tooth);
        }
        let long = MemoryProfile::from_steps(&long).expect("positive steps");
        let ana = analytic_memory_profile(st.summary(), &long);
        let sim = replay_memory_profile(st.program(), &long);
        assert_eq!(ana, sim, "{} repeated sawtooth", algo.label());
        assert!(
            ana.completed,
            "{}: repeated sawtooth must finish",
            algo.label()
        );
        assert_eq!(ana.leaves, st.summary().leaves());
    }
}

#[test]
fn potential_accounting_matches_on_steady_boxes() {
    // The report's derived floats (potential sums, ratios) are computed by
    // the shared ProgressLedger from the recorded boxes, so box-history
    // equality implies bit-identical floats. Spot-check the bits anyway:
    // this is what the golden files serialize.
    let st = summarized(TraceAlgo::MmScan, SIDE, BLOCK_WORDS);
    let rho = TraceAlgo::MmScan.potential();
    for x in [2u64, 8, 32, 128] {
        let profile = SquareProfile::new(vec![x]).expect("positive box");
        let (sim, _) = replay_square_profile_history(st.program(), &mut profile.cycle(), rho);
        let (ana, _) = analytic_square_profile_history(st.summary(), &mut profile.cycle(), rho);
        assert_eq!(
            sim.bounded_potential_sum.to_bits(),
            ana.bounded_potential_sum.to_bits()
        );
        assert_eq!(
            sim.raw_potential_sum.to_bits(),
            ana.raw_potential_sum.to_bits()
        );
        assert_eq!(sim.total_progress, ana.total_progress);
        assert_eq!(sim.max_box, ana.max_box);
    }
}

/// `(file, CRC-32, length)` of every golden record that existed before
/// the analytic backend landed. These files are produced by the LRU
/// simulator path and MUST NOT change when the analytic model is added —
/// the new backend gets its own goldens (e14) instead of rewriting
/// history. If an *intentional* regeneration changes one of these, re-pin
/// with: `python3 -c "import zlib; d=open(F,'rb').read();
/// print(hex(zlib.crc32(d)), len(d))"`.
const PINNED_GOLDENS: &[(&str, u32, u64)] = &[
    ("ablations.json", 0x8809_9929, 7357),
    ("e1.json", 0x26C4_E681, 4132),
    ("e2.json", 0x371D_0403, 16818),
    ("e3.json", 0xF40B_D11A, 2260),
    ("e4.json", 0xAA39_7503, 1079),
    ("e5.json", 0x2190_F318, 2233),
    ("e6.json", 0x36E7_1E50, 8856),
    ("e7.json", 0xDA11_E436, 9051),
    ("e8.json", 0xE532_43C9, 3456),
    ("e9.json", 0x7485_F360, 6258),
    ("e10.json", 0xCA4C_A4BA, 1620),
    ("e11.json", 0x8D67_0397, 926),
    ("e12.json", 0x59BE_8718, 4910),
    ("e13.json", 0x3BB2_5837, 4409),
];

#[test]
fn existing_simulator_goldens_are_byte_unchanged() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden");
    for &(name, pinned_crc, pinned_len) in PINNED_GOLDENS {
        let bytes = std::fs::read(dir.join(name))
            .unwrap_or_else(|e| panic!("golden {name} must exist: {e}"));
        assert_eq!(
            (crc32(&bytes), bytes.len() as u64),
            (pinned_crc, pinned_len),
            "golden {name} changed on disk — simulator goldens must stay byte-identical \
             across the analytic-backend change (see PINNED_GOLDENS doc to re-pin \
             after an intentional regeneration)"
        );
    }
}
