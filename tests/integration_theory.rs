//! Cross-crate integration: the coded theory (recurrence, potential,
//! stopping times) against the measured simulator.

use cadapt::analysis::recurrence::{recurrence_bounds, DiscreteSigma};
use cadapt::prelude::*;
use cadapt::recursion::no_catchup::no_catchup_holds;
use cadapt::recursion::probe::{empirical_potential, probe_offsets};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The Lemma 3 recurrence brackets the measured expected box count for
/// every discrete Σ we can express, at every problem size.
#[test]
fn recurrence_brackets_measurement() {
    let params = AbcParams::mm_scan();
    let k_hi = 6u32;
    let dists: Vec<Box<dyn BoxDist>> = vec![
        Box::new(PointMass { size: 1 }),
        Box::new(PointMass { size: 64 }),
        Box::new(PowerOfB::new(4, 0, k_hi)),
        Box::new(PowerLawBoxes::new(4, 0, k_hi, 1.0)),
        Box::new(PowerLawBoxes::new(4, 0, k_hi, 2.0)),
    ];
    for dist in &dists {
        let sigma = DiscreteSigma::from_dist(dist.as_ref()).unwrap();
        let bounds = recurrence_bounds(params.a(), params.b(), &sigma, k_hi);
        for k in 2..=k_hi {
            let n = params.canonical_size(k);
            let config = McConfig {
                trials: 64,
                seed: 0x7E0,
                ..McConfig::default()
            };
            let summary = monte_carlo_ratio(params, n, &config, |rng| {
                cadapt::profiles::dist::DynDistSource::new(dist.as_ref(), rng)
            })
            .unwrap();
            let rb = &bounds[k as usize];
            let slack = summary.boxes.ci95();
            assert!(
                summary.boxes.mean + slack >= rb.f_lo && summary.boxes.mean - slack <= rb.f_hi,
                "{} n={n}: measured {} outside [{}, {}]",
                dist.label(),
                summary.boxes.mean,
                rb.f_lo,
                rb.f_hi
            );
        }
    }
}

/// Eq. 3's martingale accounting (Wald): E[Σ min(n,|□|)^e] = E[S_n] · m_n,
/// measured for a heavy-tailed Σ.
#[test]
fn wald_identity_end_to_end() {
    let params = AbcParams::strassen();
    let n = params.canonical_size(5);
    let dist = PowerLawBoxes::new(4, 0, 5, 1.0);
    let sigma = DiscreteSigma::from_dist(&dist).unwrap();
    let m_n = sigma.average_bounded_potential(&params.potential(), n);
    let config = McConfig {
        trials: 512,
        seed: 0x3A1D,
        ..McConfig::default()
    };
    let summary =
        monte_carlo_ratio(params, n, &config, |rng| DistSource::new(dist.clone(), rng)).unwrap();
    let lhs = summary.bounded_potential.mean;
    let rhs = summary.boxes.mean * m_n;
    let tolerance = 5.0 * (summary.bounded_potential.std_err() + summary.boxes.std_err() * m_n);
    assert!(
        (lhs - rhs).abs() < tolerance,
        "Wald: {lhs} vs {rhs} (tol {tolerance})"
    );
}

/// Lemma 1, measured across algorithms: the best progress of a size-x box
/// equals x^{log_b a} exactly in the simplified model.
#[test]
fn potential_lemma_exact_in_simplified_model() {
    for params in [
        AbcParams::mm_scan(),
        AbcParams::strassen(),
        AbcParams::co_dp(),
    ] {
        let n = params.canonical_size(6);
        let cf = ClosedForms::for_size(params, n).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let offsets = probe_offsets(cf.total_time(), 96, 96, &mut rng);
        for k in 0..=3u32 {
            let x = params.canonical_size(k);
            let sample =
                empirical_potential(params, n, x, ExecModel::Simplified, &offsets).unwrap();
            let rho = params.potential().eval(x);
            assert!(
                (sample.max_progress as f64 - rho).abs() < 1e-9,
                "{params} box {x}: measured {} vs rho {rho}",
                sample.max_progress
            );
        }
    }
}

/// The No-Catch-up Lemma holds across both execution models on larger
/// randomized instances than the unit proptests cover.
#[test]
fn no_catchup_at_scale() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xCA7C);
    use rand::Rng;
    for params in [AbcParams::mm_scan(), AbcParams::co_dp()] {
        let n = params.canonical_size(if params.b() == 2 { 10 } else { 5 });
        for model in [ExecModel::Simplified, ExecModel::capacity()] {
            for _ in 0..100 {
                let len = rng.gen_range(1..40);
                let boxes: Vec<u64> = (0..len).map(|_| rng.gen_range(1..=2 * n)).collect();
                let s1 = u128::from(rng.gen_range(0..3 * n));
                let s2 = u128::from(rng.gen_range(0..3 * n));
                assert!(
                    no_catchup_holds(params, n, &boxes, s1.min(s2), s1.max(s2), model).unwrap()
                );
            }
        }
    }
}

/// The taxonomy in miniature: a = b (two-way merge style) cannot escape a
/// logarithmic factor on the adversary, a < b measured by time is trivially
/// fine — footnotes 2 and 3 of the paper.
#[test]
fn boundary_cases_behave_as_footnoted() {
    // a = b = 4: leaf potential exponent is 1; the adversary still extracts
    // a log factor.
    let eq = AbcParams::a_equals_b();
    let mut ratios = Vec::new();
    for k in 2..=6u32 {
        let n = eq.canonical_size(k);
        let worst = WorstCase::for_problem(&eq, n).unwrap();
        let mut source = worst.source();
        let report = run_on_profile(eq, n, &mut source, &RunConfig::default()).unwrap();
        ratios.push(report.ratio());
    }
    for w in ratios.windows(2) {
        assert!(w[1] > w[0] + 0.5, "a=b must keep paying: {ratios:?}");
    }

    // a < b: the run needs only O(T(n)) I/Os of profile regardless.
    let lt = AbcParams::a_below_b();
    for k in 2..=6u32 {
        let n = lt.canonical_size(k);
        let total = ClosedForms::for_size(lt, n).unwrap().total_time();
        let worst = WorstCase::for_problem(&lt, n).unwrap();
        let mut source = worst.source();
        let config = RunConfig {
            model: ExecModel::capacity(),
            ..RunConfig::default()
        };
        let report = run_on_profile(lt, n, &mut source, &config).unwrap();
        let time_ratio = report.total_io as f64 / total as f64;
        assert!(time_ratio < 2.0, "k={k}: time ratio {time_ratio}");
    }
}
